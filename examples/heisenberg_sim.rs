//! Hamiltonian simulation of a Heisenberg chain: compile one Trotter step
//! with both schedulers, verify against the exact operator on a small
//! chain, and show the depth difference the paper's Table 4 reports (DO
//! crushes depth on 2-local spin models).
//!
//! ```text
//! cargo run --release --example heisenberg_sim
//! ```

use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use qsim::trotter::exp_product;
use qsim::unitary::{circuit_unitary, equal_up_to_phase};
use workloads::spin;

fn main() {
    // Small chain: verifiable exactly on the simulator.
    let small = spin::heisenberg_ir(&[6], 1.0, 0.05);
    let out = compile(
        &small,
        &CompileOptions {
            intra_threads: 1,
            scheduler: Scheduler::Depth,
            backend: Backend::FaultTolerant,
        },
    );
    let expected = exp_product(6, out.emitted.iter().map(|(s, t)| (s, *t)));
    let ok = equal_up_to_phase(&circuit_unitary(&out.circuit), &expected, 1e-8);
    println!(
        "6-site chain: compiled circuit {} the exact Trotter-step operator",
        if ok { "matches" } else { "DOES NOT match" }
    );
    assert!(ok);

    // The paper-size chain: depth-oriented vs gate-count-oriented.
    let chain = spin::heisenberg_ir(&[30], 1.0, 0.1);
    for (label, scheduler) in [("GCO", Scheduler::GateCount), ("DO ", Scheduler::Depth)] {
        let out = compile(
            &chain,
            &CompileOptions {
                intra_threads: 1,
                scheduler,
                backend: Backend::FaultTolerant,
            },
        );
        let s = out.circuit.stats();
        println!(
            "Heisen-1D (30 sites), {label}: {:4} CNOT {:4} single, depth {:4}",
            s.cnot, s.single, s.depth
        );
    }
}
