//! Compiling a VQE UCCSD ansatz for a superconducting device: Paulihedral
//! vs naive synthesis + routing, with the gate-count breakdown the paper's
//! Table 2 reports.
//!
//! ```text
//! cargo run --release --example uccsd_vqe
//! ```

use baselines::generic::{self, Mapping};
use baselines::naive;
use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use qcircuit::qasm::{to_qasm, QasmOptions};
use qdevice::devices;
use workloads::uccsd;

fn main() {
    let device = devices::manhattan_65();
    let ir = uccsd::uccsd_ir(12, 1);
    println!(
        "UCCSD-12 ansatz: {} excitation blocks, {} Pauli strings on {} qubits",
        ir.num_blocks(),
        ir.total_strings(),
        ir.num_qubits()
    );

    // Paulihedral: depth-oriented scheduling + SC block-wise synthesis.
    let ph = compile(
        &ir,
        &CompileOptions {
            intra_threads: 1,
            scheduler: Scheduler::Depth,
            backend: Backend::Superconducting {
                device: &device,
                noise: None,
            },
        },
    );
    let ph_final = generic::qiskit_l3_like(&ph.circuit, Mapping::AlreadyMapped);
    let s = ph_final.circuit.stats();
    println!(
        "Paulihedral   : {:6} CNOT {:6} single, depth {:6}",
        s.cnot, s.single, s.depth
    );

    // Baseline: naive gadget synthesis + SABRE routing + the same cleanup.
    let nv = naive::synthesize(&ir);
    let routed = generic::qiskit_l3_like(&nv.circuit, Mapping::Route(&device));
    let s = routed.circuit.stats();
    println!(
        "naive + SABRE : {:6} CNOT {:6} single, depth {:6}",
        s.cnot, s.single, s.depth
    );

    // Export the compiled kernel for an OpenQASM consumer.
    let qasm = to_qasm(&ph_final.circuit, QasmOptions::default());
    let path = std::env::temp_dir().join("uccsd12_paulihedral.qasm");
    if std::fs::write(&path, &qasm).is_ok() {
        println!(
            "wrote {} lines of OpenQASM to {}",
            qasm.lines().count(),
            path.display()
        );
    }
}
