//! QAOA MaxCut end to end: generate a random regular graph, compile its
//! cost kernel with Paulihedral and with the algorithm-specific QAOA
//! compiler, then check on the simulator that both mapped circuits
//! implement the same ansatz and estimate their success probabilities
//! under noise.
//!
//! ```text
//! cargo run --release --example qaoa_maxcut
//! ```

use baselines::{generic, qaoa_compiler};
use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use qcircuit::{Circuit, Gate};
use qdevice::{devices, NoiseModel};
use qsim::State;
use workloads::{graphs, qaoa};

fn main() {
    let n = 8;
    let graph = graphs::random_regular(n, 4, 7);
    let device = devices::melbourne_16();
    let noise = NoiseModel::synthetic(&device, 3);

    // Optimize (gamma, beta) on the ideal simulator.
    let (gamma, beta, expectation) = qsim::qaoa::optimize_p1(n, &graph.edges, 16);
    let (best_cut, optimal) = qsim::qaoa::max_cut(n, &graph.edges);
    println!("{n}-node 4-regular graph: max cut {best_cut}, QAOA p=1 expectation {expectation:.3}");

    // Our gadgets implement exp(i·theta·ZZ); the ansatz phase separator is
    // exp(-i*gamma*w*ZZ), so the block parameter is -gamma.
    let ir = qaoa::maxcut_ir(&graph, -gamma);

    // Paulihedral SC flow.
    let ph = compile(
        &ir,
        &CompileOptions {
            intra_threads: 1,
            scheduler: Scheduler::Depth,
            backend: Backend::Superconducting {
                device: &device,
                noise: Some(&noise),
            },
        },
    );
    let ph_clean = generic::qiskit_l3_like(&ph.circuit, generic::Mapping::AlreadyMapped);

    // QAOA-compiler baseline.
    let qc = qaoa_compiler::compile_qaoa(&ir, &device);
    let qc_clean = generic::qiskit_l3_like(&qc.circuit, generic::Mapping::AlreadyMapped);

    let compose = |cost: &Circuit, initial: &[usize], final_: &[usize]| -> (Circuit, Vec<usize>) {
        let mut full = Circuit::new(device.num_qubits());
        for &p in initial {
            full.push(Gate::H(p));
        }
        full.append_circuit(cost);
        for &p in final_ {
            full.push(Gate::Rx(p, 2.0 * beta));
        }
        (full, final_.to_vec())
    };
    let (ph_full, ph_meas) = compose(
        &ph_clean.circuit,
        ph.initial_l2p.as_ref().unwrap(),
        ph.final_l2p.as_ref().unwrap(),
    );
    let (qc_full, qc_meas) = compose(&qc_clean.circuit, &qc.initial_l2p, &qc.final_l2p);

    for (name, full, meas) in [
        ("Paulihedral", &ph_full, &ph_meas),
        ("QAOA compiler", &qc_full, &qc_meas),
    ] {
        let stats = full.stats();
        // Ideal success probability: mass on basis states whose measured
        // bits form an optimal cut (must match the logical ansatz).
        let mut s = State::zero(device.num_qubits());
        s.apply_circuit(full);
        let probs = s.probabilities();
        let mut success = 0.0;
        for (i, pr) in probs.iter().enumerate() {
            let mut logical = 0u64;
            for (l, &p) in meas.iter().enumerate() {
                logical |= (((i >> p) & 1) as u64) << l;
            }
            if optimal.contains(&logical) {
                success += pr;
            }
        }
        println!(
            "{name:14}: {:4} CNOT, depth {:4}, ESP {:.4}, ideal success {:.3}",
            stats.cnot,
            stats.depth,
            noise.esp(full, meas),
            success
        );
    }
}
