//! Batch compilation: push a mixed suite (Ising, QAOA, UCCSD) through the
//! `ph_engine` worker pool, print each program's per-pass report, then
//! resubmit the whole batch to show it served entirely from cache.
//!
//! ```text
//! cargo run --release --example batch_compile
//! ```

use paulihedral::Scheduler;
use ph_engine::{BatchEngine, CacheConfig, CompileJob, Pipeline, Target};
use qdevice::devices;
use workloads::suite::{self, BackendClass};

fn suite_jobs(names: &[&str], sc_target: &Target) -> Vec<CompileJob> {
    names
        .iter()
        .map(|&name| {
            let b = suite::generate(name);
            let job = CompileJob::named(name, b.ir);
            match b.class {
                // The paper's SC configuration: depth-oriented scheduling.
                BackendClass::Superconducting => job
                    .on_target(sc_target.clone())
                    .with_scheduler(Scheduler::Depth),
                // FT benchmarks use the §7 adaptive choice.
                BackendClass::FaultTolerant => job.with_scheduler(Scheduler::Auto),
            }
        })
        .collect()
}

fn main() {
    // A mixed workload: spin chains (FT), QAOA MaxCut (SC), UCCSD (SC).
    let names = ["Ising-1D", "Heisen-2D", "REG-20-4", "UCCSD-8"];
    let sc_target = Target::superconducting(devices::manhattan_65());

    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant);
    println!(
        "compiling {} programs on {} worker thread(s)\n",
        names.len(),
        engine.threads()
    );
    let results = engine.compile_all(suite_jobs(&names, &sc_target));

    for r in results {
        let out = r.outcome.expect("suite benchmarks compile");
        let stats = out.compiled.circuit.mapped_stats();
        println!(
            "== {} : {} CNOT, {} single, depth {}",
            r.name, stats.cnot, stats.single, stats.depth
        );
        print!("{}", out.report.table());
        println!();
    }

    // A second submission of the same batch — as a Trotter loop or a
    // re-run benchmark suite would issue — never recompiles.
    let again = engine.compile_all(suite_jobs(&names, &sc_target));
    let hits = again
        .iter()
        .filter(|r| r.outcome.as_ref().unwrap().report.cache_hit)
        .count();
    println!("resubmitted {} jobs: {hits} cache hits", again.len());

    let cs = engine.engine().cache_stats();
    println!(
        "cache: {} hits, {} misses, {} coalesced, {} evictions, {} entries (~{} KiB resident)",
        cs.hits,
        cs.misses,
        cs.coalesced,
        cs.evictions,
        cs.entries,
        cs.resident_bytes / 1024
    );
    assert_eq!(hits, names.len(), "second wave must be all cache hits");

    // The same batch against a persistent cache directory: a fresh engine
    // (empty memory tier) warm-starts from the files the first one wrote.
    let dir = std::env::temp_dir().join(format!("ph-batch-compile-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk_config = || CacheConfig {
        disk_dir: Some(dir.clone()),
        ..CacheConfig::default()
    };
    let cold =
        BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_cache_config(disk_config());
    cold.compile_all(suite_jobs(&names, &sc_target));
    let warm =
        BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_cache_config(disk_config());
    warm.compile_all(suite_jobs(&names, &sc_target));
    let ws = warm.engine().cache_stats();
    println!(
        "persistent tier: fresh engine served {} of {} jobs from {}",
        ws.disk_hits,
        names.len(),
        dir.display()
    );
    assert_eq!(ws.disk_hits as usize, names.len());
    let _ = std::fs::remove_dir_all(&dir);
}
