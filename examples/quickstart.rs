//! Quickstart: write a simulation kernel in the Pauli IR surface syntax,
//! compile it for both backends, and export OpenQASM.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use paulihedral::parse::parse_program;
use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use qcircuit::qasm::{to_qasm, QasmOptions};
use qdevice::devices;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy UCCSD-style kernel: two excitation blocks (strings inside a
    // block share a parameter and stay together) plus two Ising terms.
    let ir = parse_program(
        "
        # excitation blocks (Fig. 6(b) style)
        {(IIXY, 0.5), (IIYX, -0.5), theta1};
        {(XYII, -0.5), (YXII, 0.5), theta2};
        # bare Ising couplings
        {(ZZII, 0.134), 0.5};
        {(IZZI, 0.186), 0.5};
        ",
    )?;
    println!(
        "input: {} blocks, {} strings on {} qubits\n",
        ir.num_blocks(),
        ir.total_strings(),
        ir.num_qubits()
    );

    // Fault-tolerant backend: gate-count-oriented scheduling.
    let ft = compile(
        &ir,
        &CompileOptions {
            intra_threads: 1,
            scheduler: Scheduler::GateCount,
            backend: Backend::FaultTolerant,
        },
    );
    let s = ft.circuit.stats();
    println!(
        "FT backend : {} CNOT, {} single, depth {}",
        s.cnot, s.single, s.depth
    );

    // Superconducting backend: depth-oriented scheduling on a 2x3 grid.
    let device = devices::grid(2, 3);
    let sc = compile(
        &ir,
        &CompileOptions {
            intra_threads: 1,
            scheduler: Scheduler::Depth,
            backend: Backend::Superconducting {
                device: &device,
                noise: None,
            },
        },
    );
    let s = sc.circuit.mapped_stats();
    println!(
        "SC backend : {} CNOT, {} single, depth {} (layout {:?} -> {:?})",
        s.cnot,
        s.single,
        s.depth,
        sc.initial_l2p.as_ref().unwrap(),
        sc.final_l2p.as_ref().unwrap()
    );

    println!("\nOpenQASM 2.0 of the FT circuit:\n");
    print!("{}", to_qasm(&ft.circuit, QasmOptions::default()));
    Ok(())
}
