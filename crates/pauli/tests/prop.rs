//! Property tests for the Pauli algebra substrate.

use std::cmp::Ordering;

use pauli::{Pauli, PauliString, Tableau};
use proptest::prelude::*;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z),
    ]
}

fn arb_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(arb_pauli(), n).prop_map(|ops| PauliString::from_ops(&ops))
}

proptest! {
    #[test]
    fn parse_display_round_trip(s in arb_string(9)) {
        let text = s.to_string();
        let parsed: PauliString = text.parse().unwrap();
        prop_assert_eq!(parsed, s);
    }

    #[test]
    fn commutation_is_symmetric(a in arb_string(7), b in arb_string(7)) {
        prop_assert_eq!(a.commutes_with(&b), b.commutes_with(&a));
    }

    #[test]
    fn commutation_matches_anticommuting_site_parity(a in arb_string(6), b in arb_string(6)) {
        let sites = (0..6)
            .filter(|&q| !a.get(q).commutes_with(b.get(q)))
            .count();
        prop_assert_eq!(a.commutes_with(&b), sites % 2 == 0);
    }

    #[test]
    fn overlap_is_symmetric_and_bounded(a in arb_string(8), b in arb_string(8)) {
        prop_assert_eq!(a.overlap(&b), b.overlap(&a));
        prop_assert!(a.overlap(&b) <= a.weight().min(b.weight()));
        prop_assert!(a.overlap(&b) <= a.shared_support(&b));
        prop_assert_eq!(a.overlap(&a), a.weight());
    }

    #[test]
    fn lex_cmp_is_a_total_order(a in arb_string(6), b in arb_string(6), c in arb_string(6)) {
        // Antisymmetry.
        prop_assert_eq!(a.lex_cmp(&b), b.lex_cmp(&a).reverse());
        // Transitivity (on the ≤ relation).
        if a.lex_cmp(&b) != Ordering::Greater && b.lex_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.lex_cmp(&c), Ordering::Greater);
        }
        // Reflexivity / consistency with equality.
        prop_assert_eq!(a.lex_cmp(&b) == Ordering::Equal, a == b);
    }

    #[test]
    fn product_squares_to_identity_phasewise(a in arb_string(6)) {
        let (p, k) = a.mul(&a);
        prop_assert!(p.is_identity());
        prop_assert_eq!(k, 0);
    }

    #[test]
    fn product_phases_invert(a in arb_string(6), b in arb_string(6)) {
        // (a·b)·(b·a) = a·b²·a = a² = I, so the phases must cancel.
        let (_, k1) = a.mul(&b);
        let (_, k2) = b.mul(&a);
        if a.commutes_with(&b) {
            prop_assert_eq!(k1, k2);
        } else {
            prop_assert_eq!((k1 + k2) % 4, 0);
        }
    }

    #[test]
    fn support_weight_consistency(a in arb_string(10)) {
        prop_assert_eq!(a.support().len(), a.weight());
        for q in a.support() {
            prop_assert!(a.is_active(q));
            prop_assert_ne!(a.get(q), Pauli::I);
        }
    }

    #[test]
    fn tableau_conjugation_preserves_commutation(
        rows in proptest::collection::vec(arb_string(5), 2..5),
        gates in proptest::collection::vec((0u8..4, 0usize..5, 0usize..5), 0..20),
    ) {
        let mut t = Tableau::from_strings(&rows);
        for (kind, a, b) in gates {
            let b = if a == b { (b + 1) % 5 } else { b };
            match kind {
                0 => t.h(a),
                1 => t.s(a),
                2 => t.sdg(a),
                _ => t.cx(a, b),
            }
        }
        for i in 0..rows.len() {
            for j in i + 1..rows.len() {
                prop_assert_eq!(
                    rows[i].commutes_with(&rows[j]),
                    t.row(i).commutes_with(t.row(j)),
                    "conjugation changed commutation structure"
                );
            }
        }
    }

    #[test]
    fn diagonalization_succeeds_on_commuting_sets(
        zs in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 5), 1..5),
        gates in proptest::collection::vec((0u8..4, 0usize..5, 0usize..5), 0..25),
    ) {
        // Start diagonal (mutually commuting), scramble by Cliffords,
        // then diagonalize the scrambled set.
        let rows: Vec<PauliString> = zs
            .iter()
            .map(|bits| {
                let mut s = PauliString::identity(5);
                for (q, &b) in bits.iter().enumerate() {
                    if b {
                        s.set(q, Pauli::Z);
                    }
                }
                s
            })
            .collect();
        let mut t = Tableau::from_strings(&rows);
        for (kind, a, b) in gates {
            let b = if a == b { (b + 1) % 5 } else { b };
            match kind {
                0 => t.h(a),
                1 => t.s(a),
                2 => t.sdg(a),
                _ => t.cx(a, b),
            }
        }
        let scrambled: Vec<PauliString> = (0..rows.len()).map(|r| t.row(r).clone()).collect();
        let mut t2 = Tableau::from_strings(&scrambled);
        prop_assert!(t2.diagonalize().is_ok());
        prop_assert!(t2.is_diagonal());
    }
}
