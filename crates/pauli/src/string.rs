//! Bit-packed n-qubit Pauli strings.

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

use crate::Pauli;

/// An n-qubit Pauli string stored as two bit planes (`x`, `z`) of `u64`
/// words, one bit per qubit.
///
/// Word-parallel popcount queries make the Paulihedral passes scalable: the
/// scheduling and synthesis algorithms only ever ask set-style questions
/// (commutation, operator overlap, shared/disjoint support), all of which
/// are a handful of AND/XOR/popcount operations here.
///
/// # Example
///
/// ```
/// use pauli::{Pauli, PauliString};
///
/// let mut p = PauliString::identity(5);
/// p.set(4, Pauli::Y);
/// p.set(3, Pauli::Z);
/// p.set(1, Pauli::X);
/// p.set(0, Pauli::Z);
/// assert_eq!(p.to_string(), "YZIXZ");
/// assert_eq!(p.support(), vec![0, 1, 3, 4]);
/// assert_eq!(p.weight(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    n: usize,
    x: Vec<u64>,
    z: Vec<u64>,
}

/// Error returned when parsing a [`PauliString`] from text fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePauliError {
    /// The offending character, if any (`None` for an empty string).
    pub bad_char: Option<char>,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bad_char {
            Some(c) => write!(f, "invalid pauli character `{c}` (expected I, X, Y or Z)"),
            None => write!(f, "empty pauli string"),
        }
    }
}

impl std::error::Error for ParsePauliError {}

const fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

impl PauliString {
    /// The all-identity string on `n` qubits.
    pub fn identity(n: usize) -> PauliString {
        PauliString {
            n,
            x: vec![0; words_for(n)],
            z: vec![0; words_for(n)],
        }
    }

    /// Builds a string that is `p` on every qubit of `support` and identity
    /// elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if any qubit in `support` is `>= n`.
    pub fn with_ops(n: usize, support: &[usize], p: Pauli) -> PauliString {
        let mut s = PauliString::identity(n);
        for &q in support {
            s.set(q, p);
        }
        s
    }

    /// Builds a string from explicit per-qubit operators; `ops[i]` is the
    /// operator on qubit `i`.
    pub fn from_ops(ops: &[Pauli]) -> PauliString {
        let mut s = PauliString::identity(ops.len());
        for (q, &p) in ops.iter().enumerate() {
            s.set(q, p);
        }
        s
    }

    /// Reassembles a string from its raw bit planes (the inverse of
    /// [`Self::x_words`]/[`Self::z_words`] — used when deserializing
    /// persisted compilation artifacts).
    ///
    /// Returns `None` instead of panicking when the planes are not a valid
    /// encoding — wrong word count, or stray bits above qubit `n - 1` —
    /// because callers feed this untrusted bytes.
    pub fn from_bit_planes(n: usize, x: Vec<u64>, z: Vec<u64>) -> Option<PauliString> {
        let words = words_for(n);
        if x.len() != words || z.len() != words {
            return None;
        }
        if !n.is_multiple_of(64) && words > 0 {
            let tail_mask = !0u64 << (n % 64);
            if x[words - 1] & tail_mask != 0 || z[words - 1] & tail_mask != 0 {
                return None;
            }
        }
        Some(PauliString { n, x, z })
    }

    /// The number of qubits `n`.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The operator on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.num_qubits()`.
    #[inline]
    pub fn get(&self, q: usize) -> Pauli {
        assert!(
            q < self.n,
            "qubit {q} out of range for {}-qubit string",
            self.n
        );
        let (w, b) = (q / 64, q % 64);
        Pauli::from_bits((self.x[w] >> b) & 1 == 1, (self.z[w] >> b) & 1 == 1)
    }

    /// Sets the operator on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.num_qubits()`.
    #[inline]
    pub fn set(&mut self, q: usize, p: Pauli) {
        assert!(
            q < self.n,
            "qubit {q} out of range for {}-qubit string",
            self.n
        );
        let (w, b) = (q / 64, q % 64);
        let (xb, zb) = p.bits();
        self.x[w] = (self.x[w] & !(1 << b)) | ((xb as u64) << b);
        self.z[w] = (self.z[w] & !(1 << b)) | ((zb as u64) << b);
    }

    /// Whether every qubit carries the identity.
    pub fn is_identity(&self) -> bool {
        self.x.iter().all(|&w| w == 0) && self.z.iter().all(|&w| w == 0)
    }

    /// The qubits carrying a non-identity operator, ascending.
    pub fn support(&self) -> Vec<usize> {
        let mut qs = Vec::new();
        for q in 0..self.n {
            let (w, b) = (q / 64, q % 64);
            if ((self.x[w] | self.z[w]) >> b) & 1 == 1 {
                qs.push(q);
            }
        }
        qs
    }

    /// The number of non-identity operators (a.k.a. the Pauli weight).
    #[inline]
    pub fn weight(&self) -> usize {
        self.x
            .iter()
            .zip(&self.z)
            .map(|(&x, &z)| (x | z).count_ones() as usize)
            .sum()
    }

    /// Whether qubit `q` carries a non-identity operator.
    #[inline]
    pub fn is_active(&self, q: usize) -> bool {
        let (w, b) = (q / 64, q % 64);
        ((self.x[w] | self.z[w]) >> b) & 1 == 1
    }

    /// Whether `self` and `other` commute as Hermitian operators.
    ///
    /// Two Pauli strings commute iff they anticommute on an even number of
    /// qubits, i.e. the symplectic form `Σ x_a·z_b ⊕ z_a·x_b` vanishes.
    ///
    /// # Panics
    ///
    /// Panics if the strings have different qubit counts.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        self.assert_same_n(other);
        let mut parity = 0u32;
        for w in 0..self.x.len() {
            parity ^= (self.x[w] & other.z[w]).count_ones() & 1;
            parity ^= (self.z[w] & other.x[w]).count_ones() & 1;
        }
        parity == 0
    }

    /// The number of qubits where `self` and `other` carry the **same
    /// non-identity** operator.
    ///
    /// This is the paper's operator-overlap measure driving block scheduling
    /// (Alg. 1 line 5) and layer pairing (Alg. 2 line 3): gates between two
    /// adjacent simulation circuits can only cancel on qubits where the
    /// operators (and hence basis-change gates) coincide.
    pub fn overlap(&self, other: &PauliString) -> usize {
        self.assert_same_n(other);
        let mut count = 0usize;
        for w in 0..self.x.len() {
            let eq_x = !(self.x[w] ^ other.x[w]);
            let eq_z = !(self.z[w] ^ other.z[w]);
            let non_i = self.x[w] | self.z[w];
            count += (eq_x & eq_z & non_i).count_ones() as usize;
        }
        count
    }

    /// The number of qubits active (non-identity) in **both** strings,
    /// regardless of which operator they carry.
    pub fn shared_support(&self, other: &PauliString) -> usize {
        self.assert_same_n(other);
        self.x
            .iter()
            .zip(&self.z)
            .zip(other.x.iter().zip(&other.z))
            .map(|((&xa, &za), (&xb, &zb))| ((xa | za) & (xb | zb)).count_ones() as usize)
            .sum()
    }

    /// Whether the active-qubit sets of the two strings are disjoint.
    pub fn disjoint_support(&self, other: &PauliString) -> bool {
        self.shared_support(other) == 0
    }

    /// Operator product `self · other = i^k · p`; returns `(p, k)` with
    /// `k ∈ {0,1,2,3}` the exponent of the global phase `i^k`.
    pub fn mul(&self, other: &PauliString) -> (PauliString, u8) {
        self.assert_same_n(other);
        let mut out = PauliString::identity(self.n);
        let mut phase = 0u8;
        for q in 0..self.n {
            let (p, k) = self.get(q).mul(other.get(q));
            out.set(q, p);
            phase = (phase + k) % 4;
        }
        (out, phase)
    }

    /// The paper's lexicographic order: `X < Y < Z < I`, compared from qubit
    /// `n−1` down to qubit `0` (§4.1).
    ///
    /// # Panics
    ///
    /// Panics if the strings have different qubit counts.
    pub fn lex_cmp(&self, other: &PauliString) -> Ordering {
        self.assert_same_n(other);
        // Word-parallel: in the X < Y < Z < I order a qubit's rank is the
        // 2-bit value (bit1 = !x, bit0 = !(x ^ z)), so two qubits compare
        // equal iff their (x, z) bit pairs are equal. The deciding qubit is
        // therefore the top set bit of the per-word diff mask, scanned from
        // the high word down — one AND/XOR pass instead of n `get` calls.
        for w in (0..self.x.len()).rev() {
            let diff = (self.x[w] ^ other.x[w]) | (self.z[w] ^ other.z[w]);
            if diff != 0 {
                let b = 63 - diff.leading_zeros();
                let rank = |x: u64, z: u64| ((!x >> b & 1) << 1) | (!(x ^ z) >> b & 1);
                return rank(self.x[w], self.z[w]).cmp(&rank(other.x[w], other.z[w]));
            }
        }
        Ordering::Equal
    }

    /// Iterates over the per-qubit operators, qubit `0` first.
    pub fn iter(&self) -> impl Iterator<Item = Pauli> + '_ {
        (0..self.n).map(move |q| self.get(q))
    }

    /// The `x` bit plane (one bit per qubit, qubit `q` at bit `q % 64` of
    /// word `q / 64`).
    pub fn x_words(&self) -> &[u64] {
        &self.x
    }

    /// The `z` bit plane; see [`Self::x_words`].
    pub fn z_words(&self) -> &[u64] {
        &self.z
    }

    /// Merges `other` into `self` on qubits where `self` is identity.
    ///
    /// Used to build layer *signatures*: the blocks in a scheduled layer
    /// have disjoint active qubits, so merging their boundary strings gives
    /// the layer's effective front/back Pauli pattern.
    ///
    /// # Panics
    ///
    /// Panics if the strings have different qubit counts, or in debug builds
    /// if the supports overlap (signatures are only meaningful for disjoint
    /// blocks).
    pub fn merge_disjoint(&mut self, other: &PauliString) {
        self.assert_same_n(other);
        debug_assert!(
            self.disjoint_support(other),
            "merge of overlapping supports"
        );
        for w in 0..self.x.len() {
            self.x[w] |= other.x[w];
            self.z[w] |= other.z[w];
        }
    }

    /// Merges `other` into `self` on qubits where `self` is identity,
    /// keeping `self`'s operator everywhere it is already non-identity
    /// (first-written wins).
    ///
    /// This is the overlap-tolerant cousin of [`Self::merge_disjoint`]:
    /// layer signatures accumulate boundary strings in block order, and a
    /// later block must never overwrite a qubit an earlier block claimed.
    /// Word-parallel over the two bit planes — the free qubits of `self`
    /// are `!(x | z)` per word.
    ///
    /// # Panics
    ///
    /// Panics if the strings have different qubit counts.
    pub fn merge_keep_first(&mut self, other: &PauliString) {
        self.assert_same_n(other);
        for w in 0..self.x.len() {
            let free = !(self.x[w] | self.z[w]);
            self.x[w] |= other.x[w] & free;
            self.z[w] |= other.z[w] & free;
        }
    }

    fn assert_same_n(&self, other: &PauliString) {
        assert_eq!(
            self.n, other.n,
            "pauli strings on different qubit counts ({} vs {})",
            self.n, other.n
        );
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in (0..self.n).rev() {
            write!(f, "{}", self.get(q))?;
        }
        Ok(())
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PauliString(\"{self}\")")
    }
}

impl FromStr for PauliString {
    type Err = ParsePauliError;

    /// Parses a string such as `"YZIXZ"`, leftmost character = qubit `n−1`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParsePauliError { bad_char: None });
        }
        let n = s.chars().count();
        let mut out = PauliString::identity(n);
        for (i, c) in s.chars().enumerate() {
            let p = Pauli::from_char(c).ok_or(ParsePauliError { bad_char: Some(c) })?;
            out.set(n - 1 - i, p);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn bit_planes_round_trip() {
        for s in ["I", "XYZI", "YZIXZ", &"XZIY".repeat(40)] {
            let p = ps(s);
            let rebuilt = PauliString::from_bit_planes(
                p.num_qubits(),
                p.x_words().to_vec(),
                p.z_words().to_vec(),
            )
            .expect("planes from a real string are valid");
            assert_eq!(rebuilt, p);
        }
    }

    #[test]
    fn bit_planes_reject_malformed_encodings() {
        // Wrong word count.
        assert!(PauliString::from_bit_planes(5, vec![0, 0], vec![0]).is_none());
        assert!(PauliString::from_bit_planes(70, vec![0], vec![0]).is_none());
        // Stray bits above qubit n-1.
        assert!(PauliString::from_bit_planes(5, vec![1 << 5], vec![0]).is_none());
        assert!(PauliString::from_bit_planes(5, vec![0], vec![1 << 63]).is_none());
        // The same bit in range is fine.
        assert!(PauliString::from_bit_planes(6, vec![1 << 5], vec![0]).is_some());
    }

    #[test]
    fn parse_display_round_trip() {
        for s in [
            "I",
            "XYZI",
            "YZIXZ",
            "ZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZZ",
        ] {
            assert_eq!(ps(s).to_string(), s);
        }
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<PauliString>().is_err());
        assert_eq!(
            "XQZ".parse::<PauliString>(),
            Err(ParsePauliError {
                bad_char: Some('Q')
            })
        );
    }

    #[test]
    fn endianness_matches_paper() {
        // P = σ_{n-1} … σ_0: the leftmost character sits on the highest qubit.
        let p = ps("YZIXZ");
        assert_eq!(p.get(4), Pauli::Y);
        assert_eq!(p.get(3), Pauli::Z);
        assert_eq!(p.get(2), Pauli::I);
        assert_eq!(p.get(1), Pauli::X);
        assert_eq!(p.get(0), Pauli::Z);
    }

    #[test]
    fn support_and_weight() {
        let p = ps("YZIXZ");
        assert_eq!(p.support(), vec![0, 1, 3, 4]);
        assert_eq!(p.weight(), 4);
        assert!(p.is_active(0));
        assert!(!p.is_active(2));
        assert!(PauliString::identity(7).is_identity());
    }

    #[test]
    fn commutation_examples() {
        // ZZ and XX commute (anticommute on two qubits); ZI and XI do not.
        assert!(ps("ZZ").commutes_with(&ps("XX")));
        assert!(!ps("ZI").commutes_with(&ps("XI")));
        assert!(ps("ZI").commutes_with(&ps("IX")));
        // The Fig. 4(c) pair: ZZI and ZXI anticommute.
        assert!(!ps("ZZI").commutes_with(&ps("ZXI")));
    }

    #[test]
    fn commutation_across_word_boundary() {
        let mut a = PauliString::identity(130);
        let mut b = PauliString::identity(130);
        a.set(0, Pauli::X);
        b.set(0, Pauli::Z);
        a.set(129, Pauli::X);
        b.set(129, Pauli::Z);
        assert!(a.commutes_with(&b)); // two anticommuting sites → commute
        b.set(129, Pauli::I);
        assert!(!a.commutes_with(&b));
    }

    #[test]
    fn overlap_counts_equal_non_identity_ops() {
        // Fig. 4(a): ZZY and ZZI share Z on two qubits.
        assert_eq!(ps("ZZY").overlap(&ps("ZZI")), 2);
        assert_eq!(ps("ZZY").overlap(&ps("ZZY")), 3);
        assert_eq!(ps("XYZ").overlap(&ps("ZYX")), 1);
        assert_eq!(ps("III").overlap(&ps("III")), 0);
    }

    #[test]
    fn shared_and_disjoint_support() {
        assert_eq!(ps("XXI").shared_support(&ps("IZZ")), 1);
        assert!(ps("XII").disjoint_support(&ps("IIZ")));
        assert!(!ps("XII").disjoint_support(&ps("ZII")));
    }

    #[test]
    fn lex_order_matches_paper_example() {
        // §4.1: X < Y < Z < I compared from the top qubit downward.
        assert_eq!(ps("XX").lex_cmp(&ps("XY")), Ordering::Less);
        assert_eq!(ps("YI").lex_cmp(&ps("XZ")), Ordering::Greater);
        assert_eq!(ps("IX").lex_cmp(&ps("XI")), Ordering::Greater);
        assert_eq!(ps("ZZZ").lex_cmp(&ps("ZZZ")), Ordering::Equal);
    }

    #[test]
    fn string_product_tracks_phase() {
        let (p, k) = ps("XI").mul(&ps("YI"));
        assert_eq!(p, ps("ZI"));
        assert_eq!(k, 1);
        let (p, k) = ps("XY").mul(&ps("YX"));
        assert_eq!(p, ps("ZZ"));
        assert_eq!(k, 0); // i · (−i) = 1
        let (p, k) = ps("ZZ").mul(&ps("ZZ"));
        assert!(p.is_identity());
        assert_eq!(k, 0);
    }

    #[test]
    fn merge_disjoint_builds_signature() {
        let mut a = ps("XXII");
        a.merge_disjoint(&ps("IIZY"));
        assert_eq!(a, ps("XXZY"));
    }

    #[test]
    fn merge_keep_first_preserves_earlier_operators() {
        // Full overlap: nothing changes.
        let mut a = ps("ZZII");
        a.merge_keep_first(&ps("XYII"));
        assert_eq!(a, ps("ZZII"));
        // Partial overlap: only the free qubits are filled in.
        let mut a = ps("IZZI");
        a.merge_keep_first(&ps("XXYZ"));
        assert_eq!(a, ps("XZZZ"));
        // Y = (x=1, z=1) must not leak a plane bit onto a qubit where the
        // earlier string holds a single-plane operator.
        let mut a = ps("XZ");
        a.merge_keep_first(&ps("YY"));
        assert_eq!(a, ps("XZ"));
    }

    #[test]
    fn merge_keep_first_across_word_boundary() {
        let mut a = PauliString::identity(130);
        a.set(64, Pauli::Z);
        let mut b = PauliString::identity(130);
        b.set(64, Pauli::X);
        b.set(63, Pauli::Y);
        b.set(129, Pauli::Z);
        a.merge_keep_first(&b);
        assert_eq!(a.get(64), Pauli::Z);
        assert_eq!(a.get(63), Pauli::Y);
        assert_eq!(a.get(129), Pauli::Z);
        assert_eq!(a.weight(), 3);
    }

    #[test]
    fn lex_cmp_matches_per_qubit_scan() {
        // The word-parallel comparison must agree with the definitional
        // per-qubit scan, including across word boundaries and on long
        // shared prefixes.
        let per_qubit = |a: &PauliString, b: &PauliString| {
            for q in (0..a.num_qubits()).rev() {
                let ord = a.get(q).cmp(&b.get(q));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        };
        let base = "XZIY".repeat(33); // 132 qubits
        let mut cases: Vec<(PauliString, PauliString)> = Vec::new();
        for q in [0, 1, 63, 64, 65, 127, 128, 131] {
            for p in [Pauli::X, Pauli::Y, Pauli::Z, Pauli::I] {
                let a = ps(&base);
                let mut b = ps(&base);
                b.set(q, p);
                cases.push((a, b));
            }
        }
        cases.push((ps(&base), ps(&base)));
        // Differences on two qubits in different words: the higher decides.
        let mut lo = ps(&base);
        lo.set(2, Pauli::Z);
        let mut hi = ps(&base);
        hi.set(130, Pauli::X);
        cases.push((lo, hi));
        for (a, b) in &cases {
            assert_eq!(a.lex_cmp(b), per_qubit(a, b), "{a} vs {b}");
            assert_eq!(b.lex_cmp(a), per_qubit(b, a));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        ps("XX").get(2);
    }

    #[test]
    fn with_ops_constructor() {
        let p = PauliString::with_ops(5, &[0, 2], Pauli::Z);
        assert_eq!(p.to_string(), "IIZIZ");
    }
}
