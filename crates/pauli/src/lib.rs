//! Pauli algebra substrate for the Paulihedral reproduction.
//!
//! Everything in the Paulihedral compiler is defined over *Pauli strings*
//! `P = σ_{n-1} σ_{n-2} … σ_0` with `σ_i ∈ {I, X, Y, Z}` (paper §2.1). This
//! crate provides:
//!
//! * [`Pauli`] — the single-qubit operator alphabet,
//! * [`PauliString`] — a bit-packed n-qubit Pauli string with word-parallel
//!   commutation/overlap queries (the scalability workhorse of the compiler),
//! * [`PauliTerm`] — a weighted Pauli string (one `⟨pauli_str, weight⟩` of
//!   the Pauli IR grammar in Fig. 5),
//! * [`Tableau`] — a symplectic Clifford tableau used by the
//!   simultaneous-diagonalization ("TK") baseline.
//!
//! # Conventions
//!
//! Qubit `0` is the rightmost character of the textual form, matching the
//! paper's `P = σ_{n-1} … σ_0` notation: `"YZIXZ"` has `Y` on qubit 4 and
//! `Z` on qubit 0.
//!
//! The lexicographic order used by the gate-count-oriented scheduler (§4.1)
//! is `X < Y < Z < I`, compared from qubit `n−1` down to qubit `0`; it is
//! exposed as [`PauliString::lex_cmp`].
//!
//! # Example
//!
//! ```
//! use pauli::{Pauli, PauliString};
//!
//! let a: PauliString = "ZZY".parse()?;
//! let b: PauliString = "ZZI".parse()?;
//! assert_eq!(a.get(0), Pauli::Y);
//! assert_eq!(a.overlap(&b), 2);          // shared Z on qubits 1 and 2
//! assert!(a.commutes_with(&a));
//! # Ok::<(), pauli::ParsePauliError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pauli_op;
mod string;
mod tableau;
mod term;

pub use pauli_op::Pauli;
pub use string::{ParsePauliError, PauliString};
pub use tableau::{CliffordGate, DiagonalizeError, Tableau};
pub use term::PauliTerm;
