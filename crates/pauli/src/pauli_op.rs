//! The single-qubit Pauli operator alphabet.

use std::fmt;

/// A single-qubit Pauli operator.
///
/// The discriminants encode the paper's lexicographic rank (`X < Y < Z < I`,
/// §4.1), so deriving [`Ord`] yields exactly the scheduling order.
///
/// # Example
///
/// ```
/// use pauli::Pauli;
///
/// assert!(Pauli::X < Pauli::I);
/// assert_eq!(Pauli::from_bits(true, true), Pauli::Y);
/// assert_eq!(Pauli::Y.bits(), (true, true));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pauli {
    /// The Pauli-X operator.
    X = 0,
    /// The Pauli-Y operator.
    Y = 1,
    /// The Pauli-Z operator.
    Z = 2,
    /// The identity operator.
    #[default]
    I = 3,
}

impl Pauli {
    /// All four operators in lexicographic order.
    pub const ALL: [Pauli; 4] = [Pauli::X, Pauli::Y, Pauli::Z, Pauli::I];

    /// Builds a Pauli from its symplectic `(x, z)` bit pair.
    ///
    /// `(0,0) = I`, `(1,0) = X`, `(1,1) = Y`, `(0,1) = Z`.
    #[inline]
    pub fn from_bits(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Returns the symplectic `(x, z)` bit pair of this operator.
    #[inline]
    pub fn bits(self) -> (bool, bool) {
        match self {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        }
    }

    /// Whether this operator is the identity.
    #[inline]
    pub fn is_identity(self) -> bool {
        self == Pauli::I
    }

    /// Whether `self` and `other` commute as single-qubit operators.
    ///
    /// Two non-identity Paulis commute iff they are equal.
    #[inline]
    pub fn commutes_with(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }

    /// Single-qubit product `self · other = i^k · p`.
    ///
    /// Returns `(p, k)` with the phase exponent `k ∈ {0, 1, 3}` of `i`
    /// (`k = 1` for cyclic products such as `X·Y = iZ`, `k = 3` for
    /// anti-cyclic ones such as `Y·X = −iZ`).
    // Not `std::ops::Mul`: the product carries a phase exponent alongside
    // the operator, so the trait's single-value signature does not fit.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Pauli) -> (Pauli, u8) {
        use Pauli::{I, X, Y, Z};
        match (self, other) {
            (I, p) | (p, I) => (p, 0),
            (a, b) if a == b => (I, 0),
            (X, Y) => (Z, 1),
            (Y, Z) => (X, 1),
            (Z, X) => (Y, 1),
            (Y, X) => (Z, 3),
            (Z, Y) => (X, 3),
            (X, Z) => (Y, 3),
            _ => unreachable!("all pairs covered"),
        }
    }

    /// Parses a single operator character (`I`, `X`, `Y`, `Z`, case-insensitive).
    pub fn from_char(c: char) -> Option<Pauli> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }

    /// The operator's character representation.
    pub fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_rank_matches_paper() {
        // §4.1: "we assume X < Y < Z < I".
        assert!(Pauli::X < Pauli::Y);
        assert!(Pauli::Y < Pauli::Z);
        assert!(Pauli::Z < Pauli::I);
    }

    #[test]
    fn bits_round_trip() {
        for p in Pauli::ALL {
            let (x, z) = p.bits();
            assert_eq!(Pauli::from_bits(x, z), p);
        }
    }

    #[test]
    fn char_round_trip() {
        for p in Pauli::ALL {
            assert_eq!(Pauli::from_char(p.to_char()), Some(p));
        }
        assert_eq!(Pauli::from_char('x'), Some(Pauli::X));
        assert_eq!(Pauli::from_char('Q'), None);
    }

    #[test]
    fn commutation_rules() {
        assert!(Pauli::X.commutes_with(Pauli::X));
        assert!(Pauli::X.commutes_with(Pauli::I));
        assert!(!Pauli::X.commutes_with(Pauli::Y));
        assert!(!Pauli::Z.commutes_with(Pauli::Y));
    }

    #[test]
    fn products_follow_levi_civita() {
        assert_eq!(Pauli::X.mul(Pauli::Y), (Pauli::Z, 1));
        assert_eq!(Pauli::Y.mul(Pauli::X), (Pauli::Z, 3));
        assert_eq!(Pauli::Y.mul(Pauli::Z), (Pauli::X, 1));
        assert_eq!(Pauli::Z.mul(Pauli::Y), (Pauli::X, 3));
        assert_eq!(Pauli::Z.mul(Pauli::X), (Pauli::Y, 1));
        assert_eq!(Pauli::X.mul(Pauli::Z), (Pauli::Y, 3));
        for p in Pauli::ALL {
            assert_eq!(p.mul(p), (Pauli::I, 0));
            assert_eq!(p.mul(Pauli::I), (p, 0));
            assert_eq!(Pauli::I.mul(p), (p, 0));
        }
    }

    #[test]
    fn product_phase_consistency() {
        // i^k(a,b) * i^k(b,a) == 1 for anticommuting pairs (k + k' = 4).
        for a in Pauli::ALL {
            for b in Pauli::ALL {
                let (_, k1) = a.mul(b);
                let (_, k2) = b.mul(a);
                if a.commutes_with(b) {
                    assert_eq!(k1, 0);
                    assert_eq!(k2, 0);
                } else {
                    assert_eq!((k1 + k2) % 4, 0);
                }
            }
        }
    }
}
