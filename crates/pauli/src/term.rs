//! Weighted Pauli strings — the `⟨pauli_str, weight⟩` production of the
//! Pauli IR grammar (Fig. 5).

use std::fmt;

use crate::PauliString;

/// A Pauli string with a real coefficient: one summand `w·P` of a
/// Hamiltonian expanded in the Pauli basis (`H = Σ_j w_j P_j`, §2.2).
///
/// # Example
///
/// ```
/// use pauli::PauliTerm;
///
/// let t = PauliTerm::new("ZZI".parse()?, 0.134);
/// assert_eq!(t.weight, 0.134);
/// assert_eq!(t.string.support(), vec![1, 2]);
/// # Ok::<(), pauli::ParsePauliError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PauliTerm {
    /// The Pauli string `P`.
    pub string: PauliString,
    /// The real weight `w`.
    pub weight: f64,
}

impl PauliTerm {
    /// Creates a weighted Pauli term.
    pub fn new(string: PauliString, weight: f64) -> PauliTerm {
        PauliTerm { string, weight }
    }

    /// The number of qubits of the underlying string.
    pub fn num_qubits(&self) -> usize {
        self.string.num_qubits()
    }
}

impl fmt::Display for PauliTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.string, self.weight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_ir_syntax() {
        let t = PauliTerm::new("IIXY".parse().unwrap(), 0.5);
        assert_eq!(t.to_string(), "(IIXY, 0.5)");
    }

    #[test]
    fn accessors() {
        let t = PauliTerm::new("XYZ".parse().unwrap(), -0.25);
        assert_eq!(t.num_qubits(), 3);
        assert_eq!(t.weight, -0.25);
    }
}
