//! Symplectic Clifford tableau for simultaneous diagonalization.
//!
//! The t|ket⟩-style baseline ("TK" in the paper's evaluation) optimizes
//! simulation kernels by partitioning Pauli strings into mutually commuting
//! clusters and *simultaneously diagonalizing* each cluster with a Clifford
//! circuit [14–17]. This module provides the symplectic-representation
//! machinery for that: a set of Pauli strings (rows) is conjugated by
//! H/S/CNOT gates, with Aaronson–Gottesman sign tracking, until every row is
//! a (signed) Z-only string.

use std::fmt;

use crate::{Pauli, PauliString};

/// A Clifford gate recorded while transforming a [`Tableau`].
///
/// The gate sequence `g_1, …, g_k` (in emission order) defines the Clifford
/// `G = g_k ⋯ g_1`; the tableau rows hold `G P G†` for each input string
/// `P`. Consumers translate these into their own circuit gate set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CliffordGate {
    /// Hadamard on a qubit.
    H(usize),
    /// Phase gate S on a qubit.
    S(usize),
    /// Inverse phase gate S† on a qubit.
    Sdg(usize),
    /// CNOT with `(control, target)`.
    Cx(usize, usize),
}

impl CliffordGate {
    /// The inverse gate (CNOT and H are self-inverse; S ↔ S†).
    pub fn inverse(self) -> CliffordGate {
        match self {
            CliffordGate::S(q) => CliffordGate::Sdg(q),
            CliffordGate::Sdg(q) => CliffordGate::S(q),
            g => g,
        }
    }
}

/// Error returned by [`Tableau::diagonalize`] when the rows cannot be
/// simultaneously diagonalized (i.e. they do not mutually commute).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiagonalizeError {
    /// A row that still carries an X/Y operator after elimination.
    pub row: usize,
}

impl fmt::Display for DiagonalizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "row {} could not be diagonalized; the input strings do not mutually commute",
            self.row
        )
    }
}

impl std::error::Error for DiagonalizeError {}

/// A set of Pauli strings under Clifford conjugation.
///
/// # Example
///
/// ```
/// use pauli::{PauliString, Tableau};
///
/// let rows: Vec<PauliString> = ["XX", "ZZ"].iter().map(|s| s.parse().unwrap()).collect();
/// let mut t = Tableau::from_strings(&rows);
/// t.diagonalize().unwrap();
/// assert!(t.is_diagonal());
/// // The recorded gates conjugate the original strings to the final rows.
/// assert!(!t.gates().is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Tableau {
    n: usize,
    rows: Vec<PauliString>,
    /// `true` = the row carries a −1 sign.
    signs: Vec<bool>,
    gates: Vec<CliffordGate>,
}

impl Tableau {
    /// Builds a tableau whose rows are the given strings (all signs `+`).
    ///
    /// # Panics
    ///
    /// Panics if `strings` is empty or the strings disagree on qubit count.
    pub fn from_strings(strings: &[PauliString]) -> Tableau {
        assert!(!strings.is_empty(), "tableau needs at least one row");
        let n = strings[0].num_qubits();
        assert!(
            strings.iter().all(|s| s.num_qubits() == n),
            "all rows must have the same qubit count"
        );
        Tableau {
            n,
            rows: strings.to_vec(),
            signs: vec![false; strings.len()],
            gates: Vec::new(),
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The current (conjugated) form of row `r`.
    pub fn row(&self, r: usize) -> &PauliString {
        &self.rows[r]
    }

    /// Whether row `r` currently carries a −1 sign.
    pub fn sign(&self, r: usize) -> bool {
        self.signs[r]
    }

    /// The Clifford gates applied so far, in application order.
    pub fn gates(&self) -> &[CliffordGate] {
        &self.gates
    }

    /// Whether every row is a (possibly signed) Z-only string.
    pub fn is_diagonal(&self) -> bool {
        self.rows
            .iter()
            .all(|row| row.x_words().iter().all(|&w| w == 0))
    }

    /// Applies (and records) a Clifford gate, conjugating every row.
    pub fn apply(&mut self, gate: CliffordGate) {
        match gate {
            CliffordGate::H(q) => self.conj_h(q),
            CliffordGate::S(q) => self.conj_s(q),
            CliffordGate::Sdg(q) => self.conj_sdg(q),
            CliffordGate::Cx(c, t) => self.conj_cx(c, t),
        }
        self.gates.push(gate);
    }

    /// Applies H on qubit `q`.
    pub fn h(&mut self, q: usize) {
        self.apply(CliffordGate::H(q));
    }

    /// Applies S on qubit `q`.
    pub fn s(&mut self, q: usize) {
        self.apply(CliffordGate::S(q));
    }

    /// Applies S† on qubit `q`.
    pub fn sdg(&mut self, q: usize) {
        self.apply(CliffordGate::Sdg(q));
    }

    /// Applies CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) {
        self.apply(CliffordGate::Cx(c, t));
    }

    /// Applies CZ between `a` and `b` as the composite `H(b)·CX(a,b)·H(b)`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cx(a, b);
        self.h(b);
    }

    fn conj_h(&mut self, q: usize) {
        for r in 0..self.rows.len() {
            let p = self.rows[r].get(q);
            let (x, z) = p.bits();
            // H: X ↔ Z, Y → −Y.
            self.signs[r] ^= x & z;
            self.rows[r].set(q, Pauli::from_bits(z, x));
        }
    }

    fn conj_s(&mut self, q: usize) {
        for r in 0..self.rows.len() {
            let (x, z) = self.rows[r].get(q).bits();
            // S: X → Y, Y → −X, Z → Z.
            self.signs[r] ^= x & z;
            self.rows[r].set(q, Pauli::from_bits(x, z ^ x));
        }
    }

    fn conj_sdg(&mut self, q: usize) {
        for r in 0..self.rows.len() {
            let (x, z) = self.rows[r].get(q).bits();
            // S†: X → −Y, Y → X, Z → Z.
            self.signs[r] ^= x & !z;
            self.rows[r].set(q, Pauli::from_bits(x, z ^ x));
        }
    }

    fn conj_cx(&mut self, c: usize, t: usize) {
        assert_ne!(c, t, "CNOT control and target must differ");
        for r in 0..self.rows.len() {
            let (xc, zc) = self.rows[r].get(c).bits();
            let (xt, zt) = self.rows[r].get(t).bits();
            // Aaronson–Gottesman sign rule.
            self.signs[r] ^= xc & zt & !(xt ^ zc);
            self.rows[r].set(t, Pauli::from_bits(xt ^ xc, zt));
            self.rows[r].set(c, Pauli::from_bits(xc, zc ^ zt));
        }
    }

    /// Reduces every row to a signed Z-only string by applying Clifford
    /// gates, recording them in [`Self::gates`].
    ///
    /// This is the simultaneous-diagonalization step of the TK baseline:
    /// given mutually commuting rows it always succeeds, and the recorded
    /// circuit `G` satisfies `G · P_r · G† = ±Z_S(r)` for every row.
    ///
    /// # Errors
    ///
    /// Returns [`DiagonalizeError`] if the rows do not mutually commute
    /// (detected when a row cannot be cleared).
    pub fn diagonalize(&mut self) -> Result<(), DiagonalizeError> {
        for r in 0..self.rows.len() {
            self.clear_row(r);
        }
        // A non-commuting input manifests as a row that H(q) re-excited.
        for (r, row) in self.rows.iter().enumerate() {
            if row.x_words().iter().any(|&w| w != 0) {
                return Err(DiagonalizeError { row: r });
            }
        }
        Ok(())
    }

    /// Makes row `r` Z-only (best effort; see [`Self::diagonalize`]).
    fn clear_row(&mut self, r: usize) {
        let x_support = |row: &PauliString| -> Vec<usize> {
            row.support()
                .into_iter()
                .filter(|&q| matches!(row.get(q), Pauli::X | Pauli::Y))
                .collect()
        };
        let xs = x_support(&self.rows[r]);
        let Some(&q) = xs.first() else {
            return; // already diagonal
        };
        // Clear X components on all other qubits of this row: CX(q, j)
        // flips x_j by x_q, which is 1 for row r.
        for &j in &xs[1..] {
            self.cx(q, j);
        }
        // Clear a Y on the pivot into an X.
        if matches!(self.rows[r].get(q), Pauli::Y) {
            self.s(q);
        }
        // Clear remaining Z components on other qubits: CZ(q, j) maps
        // X_q Z_j → X_q (the X on the pivot absorbs the Z).
        let zs: Vec<usize> = self.rows[r]
            .support()
            .into_iter()
            .filter(|&j| j != q && matches!(self.rows[r].get(j), Pauli::Z))
            .collect();
        for j in zs {
            self.cz(q, j);
        }
        // Row r is now ±X_q; rotate it onto Z_q.
        if matches!(self.rows[r].get(q), Pauli::X) {
            self.h(q);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    fn single(s: &str) -> Tableau {
        Tableau::from_strings(&[ps(s)])
    }

    #[test]
    fn h_conjugation_table() {
        // H X H = Z, H Z H = X, H Y H = −Y.
        let mut t = single("X");
        t.h(0);
        assert_eq!((t.row(0).clone(), t.sign(0)), (ps("Z"), false));
        let mut t = single("Z");
        t.h(0);
        assert_eq!((t.row(0).clone(), t.sign(0)), (ps("X"), false));
        let mut t = single("Y");
        t.h(0);
        assert_eq!((t.row(0).clone(), t.sign(0)), (ps("Y"), true));
    }

    #[test]
    fn s_conjugation_table() {
        // S X S† = Y, S Y S† = −X, S Z S† = Z.
        let mut t = single("X");
        t.s(0);
        assert_eq!((t.row(0).clone(), t.sign(0)), (ps("Y"), false));
        let mut t = single("Y");
        t.s(0);
        assert_eq!((t.row(0).clone(), t.sign(0)), (ps("X"), true));
        let mut t = single("Z");
        t.s(0);
        assert_eq!((t.row(0).clone(), t.sign(0)), (ps("Z"), false));
    }

    #[test]
    fn sdg_is_inverse_of_s() {
        for s in ["X", "Y", "Z"] {
            let mut t = single(s);
            t.s(0);
            t.sdg(0);
            assert_eq!((t.row(0).clone(), t.sign(0)), (ps(s), false));
        }
    }

    #[test]
    fn cx_conjugation_table() {
        // Qubit 1 = control, qubit 0 = target in "ct"-style strings below
        // (remember: leftmost char is the highest qubit).
        let cases = [
            ("XI", "XX", false), // X_c → X_c X_t
            ("IZ", "ZZ", false), // Z_t → Z_c Z_t
            ("IX", "IX", false),
            ("ZI", "ZI", false),
            ("XZ", "YY", true), // X_c Z_t → −Y_c Y_t
        ];
        for (input, want, sign) in cases {
            let mut t = single(input);
            t.cx(1, 0);
            assert_eq!(
                (t.row(0).clone(), t.sign(0)),
                (ps(want), sign),
                "CX conjugation of {input}"
            );
        }
    }

    #[test]
    fn cz_preserves_diagonal_strings() {
        let mut t = Tableau::from_strings(&[ps("ZI"), ps("IZ"), ps("ZZ")]);
        t.cz(1, 0);
        for r in 0..3 {
            assert!(matches!(t.row(r).get(0), Pauli::I | Pauli::Z));
            assert!(matches!(t.row(r).get(1), Pauli::I | Pauli::Z));
            assert!(!t.sign(r));
        }
    }

    #[test]
    fn diagonalize_bell_pair_stabilizers() {
        let mut t = Tableau::from_strings(&[ps("XX"), ps("ZZ")]);
        t.diagonalize().unwrap();
        assert!(t.is_diagonal());
        assert!(!t.row(0).is_identity());
        assert!(!t.row(1).is_identity());
    }

    #[test]
    fn diagonalize_leaves_z_strings_untouched() {
        let mut t = Tableau::from_strings(&[ps("ZZI"), ps("IZZ")]);
        t.diagonalize().unwrap();
        assert!(t.gates().is_empty());
        assert_eq!(t.row(0), &ps("ZZI"));
    }

    #[test]
    fn diagonalize_rejects_anticommuting_rows() {
        let mut t = Tableau::from_strings(&[ps("X"), ps("Z")]);
        assert!(t.diagonalize().is_err());
    }

    #[test]
    fn diagonalize_random_commuting_sets() {
        // Build a commuting set by Clifford-conjugating diagonal strings,
        // then check diagonalization succeeds and commutation is preserved.
        let seeds: [(u64, usize, usize); 4] = [(1, 4, 3), (2, 6, 5), (3, 8, 8), (4, 5, 2)];
        for (seed, n, k) in seeds {
            let mut state = seed;
            let mut next = || {
                // xorshift64
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut rows = Vec::new();
            for _ in 0..k {
                let mut p = PauliString::identity(n);
                for q in 0..n {
                    if next() % 2 == 0 {
                        p.set(q, Pauli::Z);
                    }
                }
                rows.push(p);
            }
            let mut t = Tableau::from_strings(&rows);
            // Scramble with random Cliffords (conjugation preserves commutation).
            for _ in 0..40 {
                match next() % 3 {
                    0 => t.h((next() % n as u64) as usize),
                    1 => t.s((next() % n as u64) as usize),
                    _ => {
                        let c = (next() % n as u64) as usize;
                        let mut tq = (next() % n as u64) as usize;
                        if tq == c {
                            tq = (tq + 1) % n;
                        }
                        t.cx(c, tq);
                    }
                }
            }
            let scrambled: Vec<PauliString> = (0..k).map(|r| t.row(r).clone()).collect();
            for a in 0..k {
                for b in a + 1..k {
                    assert!(scrambled[a].commutes_with(&scrambled[b]));
                }
            }
            let mut t2 = Tableau::from_strings(&scrambled);
            t2.diagonalize().unwrap();
            assert!(t2.is_diagonal(), "seed {seed}");
        }
    }

    #[test]
    fn inverse_gates() {
        assert_eq!(CliffordGate::S(3).inverse(), CliffordGate::Sdg(3));
        assert_eq!(CliffordGate::Sdg(3).inverse(), CliffordGate::S(3));
        assert_eq!(CliffordGate::H(1).inverse(), CliffordGate::H(1));
        assert_eq!(CliffordGate::Cx(0, 1).inverse(), CliffordGate::Cx(0, 1));
    }
}
