//! Minimal complex and 2×2-unitary arithmetic.
//!
//! Kept in-repo (rather than pulling `num-complex`/`nalgebra`) so the whole
//! substrate stays self-contained; `qsim` reuses these types for state
//! vectors and unitaries.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use qcircuit::math::C64;
///
/// let i = C64::I;
/// assert!((i * i + C64::ONE).norm() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// A real number.
    #[inline]
    pub fn real(re: f64) -> C64 {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    #[inline]
    pub fn cis(theta: f64) -> C64 {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> C64 {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument in `(−π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by `i^k` for `k ∈ {0,1,2,3}`.
    #[inline]
    pub fn mul_i_pow(self, k: u8) -> C64 {
        match k % 4 {
            0 => self,
            1 => C64 {
                re: -self.im,
                im: self.re,
            },
            2 => -self,
            _ => C64 {
                re: self.im,
                im: -self.re,
            },
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        C64 {
            re: self.re * rhs,
            im: self.im * rhs,
        }
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: C64) -> C64 {
        let d = rhs.norm_sqr();
        C64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// A 2×2 complex matrix in row-major order: `[[a, b], [c, d]]`.
///
/// Used for single-qubit gate fusion and by the simulator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Mat2 {
    /// Entries `[a, b, c, d]` of `[[a, b], [c, d]]`.
    pub m: [C64; 4],
}

impl Mat2 {
    /// The identity matrix.
    pub const IDENTITY: Mat2 = Mat2 {
        m: [
            C64 { re: 1.0, im: 0.0 },
            C64 { re: 0.0, im: 0.0 },
            C64 { re: 0.0, im: 0.0 },
            C64 { re: 1.0, im: 0.0 },
        ],
    };

    /// Creates a matrix from rows `[[a, b], [c, d]]`.
    pub fn new(a: C64, b: C64, c: C64, d: C64) -> Mat2 {
        Mat2 { m: [a, b, c, d] }
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Mat2) -> Mat2 {
        let a = &self.m;
        let b = &rhs.m;
        Mat2 {
            m: [
                a[0] * b[0] + a[1] * b[2],
                a[0] * b[1] + a[1] * b[3],
                a[2] * b[0] + a[3] * b[2],
                a[2] * b[1] + a[3] * b[3],
            ],
        }
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Mat2 {
        Mat2 {
            m: [
                self.m[0].conj(),
                self.m[2].conj(),
                self.m[1].conj(),
                self.m[3].conj(),
            ],
        }
    }

    /// Whether `self` equals the identity up to a global phase, within `tol`.
    pub fn is_identity_up_to_phase(&self, tol: f64) -> bool {
        if self.m[1].norm() > tol || self.m[2].norm() > tol {
            return false;
        }
        (self.m[0] - self.m[3]).norm() < tol && (self.m[0].norm() - 1.0).abs() < tol
    }

    /// ZYZ Euler decomposition: returns `(a, b, c)` such that
    /// `self ∝ Rz(a)·Ry(b)·Rz(c)` (up to a global phase), with
    /// `Rz(θ) = diag(e^{−iθ/2}, e^{iθ/2})` and the usual `Ry`.
    pub fn zyz_angles(&self) -> (f64, f64, f64) {
        // Normalize to SU(2): divide by sqrt(det).
        let det = self.m[0] * self.m[3] - self.m[1] * self.m[2];
        let phase = C64::cis(det.arg() / 2.0);
        let v: Vec<C64> = self.m.iter().map(|&e| e / phase).collect();
        // v = [[cos(b/2) e^{-i(a+c)/2}, -sin(b/2) e^{i(c-a)/2}],
        //      [sin(b/2) e^{i(a-c)/2},   cos(b/2) e^{ i(a+c)/2}]]
        let b = 2.0 * v[2].norm().atan2(v[0].norm());
        let (sum, diff) = if v[0].norm() > 1e-9 && v[2].norm() > 1e-9 {
            (2.0 * v[3].arg(), 2.0 * v[2].arg())
        } else if v[0].norm() > 1e-9 {
            (2.0 * v[3].arg(), 0.0)
        } else {
            (0.0, 2.0 * v[2].arg())
        };
        let a = (sum + diff) / 2.0;
        let c = (sum - diff) / 2.0;
        (a, b, c)
    }
}

/// `Rz(θ) = diag(e^{−iθ/2}, e^{iθ/2})`.
pub fn rz_matrix(theta: f64) -> Mat2 {
    Mat2::new(
        C64::cis(-theta / 2.0),
        C64::ZERO,
        C64::ZERO,
        C64::cis(theta / 2.0),
    )
}

/// `Rx(θ) = exp(−iθX/2)`.
pub fn rx_matrix(theta: f64) -> Mat2 {
    let c = C64::real((theta / 2.0).cos());
    let s = C64::new(0.0, -(theta / 2.0).sin());
    Mat2::new(c, s, s, c)
}

/// `Ry(θ) = exp(−iθY/2)`.
pub fn ry_matrix(theta: f64) -> Mat2 {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    Mat2::new(C64::real(c), C64::real(-s), C64::real(s), C64::real(c))
}

/// The Hadamard matrix.
pub fn h_matrix() -> Mat2 {
    let s = C64::real(std::f64::consts::FRAC_1_SQRT_2);
    Mat2::new(s, s, s, -s)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    fn approx(a: &Mat2, b: &Mat2) -> bool {
        a.m.iter().zip(&b.m).all(|(x, y)| (*x - *y).norm() < TOL)
    }

    #[test]
    fn complex_field_ops() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(-0.5, 1.0);
        assert!(((a * b) / b - a).norm() < TOL);
        assert!((a - a).norm() < TOL);
        assert_eq!(a.conj().im, -2.0);
        assert!((C64::cis(std::f64::consts::PI) + C64::ONE).norm() < TOL);
    }

    #[test]
    fn mul_i_pow_cycles() {
        let a = C64::new(0.3, -0.7);
        assert_eq!(a.mul_i_pow(0), a);
        assert!((a.mul_i_pow(1) - a * C64::I).norm() < TOL);
        assert!((a.mul_i_pow(2) + a).norm() < TOL);
        assert!((a.mul_i_pow(3) - a * C64::I * C64::I * C64::I).norm() < TOL);
    }

    #[test]
    fn h_squared_is_identity() {
        let h = h_matrix();
        assert!(approx(&h.matmul(&h), &Mat2::IDENTITY));
    }

    #[test]
    fn rotations_are_unitary() {
        for theta in [0.0, 0.3, 1.2, -2.5, std::f64::consts::PI] {
            for m in [rz_matrix(theta), rx_matrix(theta), ry_matrix(theta)] {
                assert!(approx(&m.matmul(&m.dagger()), &Mat2::IDENTITY));
            }
        }
    }

    #[test]
    fn hxh_equals_z_rotation_conjugation() {
        // H · Rx(θ) · H = Rz(θ).
        let h = h_matrix();
        let lhs = h.matmul(&rx_matrix(0.7)).matmul(&h);
        assert!(approx(&lhs, &rz_matrix(0.7)));
    }

    #[test]
    fn zyz_reconstructs_random_unitaries() {
        // Build pseudo-random unitaries from rotation products and verify
        // that the ZYZ angles reconstruct them up to global phase.
        let cases = [
            (0.3, 0.7, -1.1),
            (2.0, -0.4, 0.9),
            (0.0, 1.5, 0.0),
            (-2.7, 0.01, 3.0),
        ];
        for (p, q, r) in cases {
            let u = rz_matrix(p).matmul(&ry_matrix(q)).matmul(&rx_matrix(r));
            let (a, b, c) = u.zyz_angles();
            let v = rz_matrix(a).matmul(&ry_matrix(b)).matmul(&rz_matrix(c));
            let diff = u.matmul(&v.dagger());
            assert!(
                diff.is_identity_up_to_phase(1e-8),
                "zyz failed for ({p},{q},{r}): {diff:?}"
            );
        }
    }

    #[test]
    fn identity_up_to_phase_detection() {
        let m = Mat2::new(C64::cis(0.4), C64::ZERO, C64::ZERO, C64::cis(0.4));
        assert!(m.is_identity_up_to_phase(TOL));
        assert!(!rz_matrix(0.1).is_identity_up_to_phase(TOL));
    }
}
