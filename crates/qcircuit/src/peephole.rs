//! Commutation-aware peephole cancellation.
//!
//! The Paulihedral scheduling and synthesis passes *create* cancellation
//! opportunities (matching CNOT-tree prefixes, matching basis-change gates
//! between adjacent Pauli gadgets); this pass *realizes* them. It is also
//! the core of the emulated generic compilers' `CommutativeCancellation` /
//! `CXCancellation` stages.
//!
//! The algorithm scans each gate forward along its wires: intervening gates
//! that share no qubit are skipped, gates that commute with the scanned gate
//! (by conservative structural rules) are slid past, and the first
//! non-commuting blocker stops the scan. A reachable inverse partner
//! cancels; a reachable same-axis rotation merges.

use std::f64::consts::TAU;

use crate::{Circuit, Gate};

/// Summary of what one [`optimize`] run did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeepholeReport {
    /// Gates removed by pairwise cancellation.
    pub cancelled: usize,
    /// Rotation gates merged into a predecessor.
    pub merged: usize,
    /// Rotations removed because their angle was ≡ 0 (mod 2π).
    pub zero_rotations: usize,
    /// Fixpoint iterations executed.
    pub rounds: usize,
}

/// Whether `a` and `b` commute, by conservative structural rules.
///
/// Only sound rules are used (shared-control / shared-target CNOTs,
/// Z-diagonal gates through controls, X-diagonal gates through targets,
/// same-axis single-qubit gates); `false` is always safe.
pub fn commutes(a: &Gate, b: &Gate) -> bool {
    let (a0, a1) = a.qubits();
    let (b0, b1) = b.qubits();
    let overlap = [Some(a0), a1]
        .into_iter()
        .flatten()
        .any(|q| q == b0 || Some(q) == b1);
    if !overlap {
        return true;
    }
    match (a, b) {
        (Gate::Swap(..), _) | (_, Gate::Swap(..)) => false,
        (Gate::Cx(c1, t1), Gate::Cx(c2, t2)) => {
            // Share a control or share a target: commute. A control hitting
            // the other's target (or vice versa): not in general.
            (c1 == c2 && t1 == t2) || ((c1 == c2 || t1 == t2) && t1 != c2 && c1 != t2)
        }
        (g, Gate::Cx(c, t)) | (Gate::Cx(c, t), g) => {
            let q = g.qubits().0;
            (q == *c && g.is_z_diagonal()) || (q == *t && g.is_x_diagonal())
        }
        (g1, g2) => {
            // Single-qubit gates on the same wire.
            (g1.is_z_diagonal() && g2.is_z_diagonal()) || (g1.is_x_diagonal() && g2.is_x_diagonal())
        }
    }
}

/// Whether a rotation angle is ≡ 0 (mod 2π), i.e. the gate is the identity
/// up to a global phase.
fn is_zero_angle(theta: f64) -> bool {
    let r = theta.rem_euclid(TAU);
    r < 1e-12 || TAU - r < 1e-12
}

/// One scan round. Returns `(cancelled, merged, zeroed)`.
fn round(gates: &mut [Option<Gate>]) -> (usize, usize, usize) {
    let (mut cancelled, mut merged, mut zeroed) = (0usize, 0usize, 0usize);
    for i in 0..gates.len() {
        let Some(gi) = gates[i] else { continue };
        // Drop identity rotations outright.
        if let Gate::Rz(_, t) | Gate::Rx(_, t) | Gate::Ry(_, t) = gi {
            if is_zero_angle(t) {
                gates[i] = None;
                zeroed += 1;
                continue;
            }
        }
        let (a0, a1) = gi.qubits();
        for j in i + 1..gates.len() {
            let Some(gj) = gates[j] else { continue };
            let (b0, b1) = gj.qubits();
            let overlap = [Some(a0), a1]
                .into_iter()
                .flatten()
                .any(|q| q == b0 || Some(q) == b1);
            if !overlap {
                continue;
            }
            if gi.cancels_with(&gj) {
                gates[i] = None;
                gates[j] = None;
                cancelled += 2;
                break;
            }
            let merged_gate = match (gi, gj) {
                (Gate::Rz(q1, t1), Gate::Rz(q2, t2)) if q1 == q2 => Some(Gate::Rz(q1, t1 + t2)),
                (Gate::Rx(q1, t1), Gate::Rx(q2, t2)) if q1 == q2 => Some(Gate::Rx(q1, t1 + t2)),
                (Gate::Ry(q1, t1), Gate::Ry(q2, t2)) if q1 == q2 => Some(Gate::Ry(q1, t1 + t2)),
                _ => None,
            };
            if let Some(g) = merged_gate {
                gates[i] = Some(g);
                gates[j] = None;
                merged += 1;
                break;
            }
            if !commutes(&gi, &gj) {
                break;
            }
        }
    }
    (cancelled, merged, zeroed)
}

/// Runs cancellation/merging to a fixpoint, in place.
///
/// # Example
///
/// ```
/// use qcircuit::{Circuit, Gate};
/// use qcircuit::peephole::optimize;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::Cx(0, 1));
/// c.push(Gate::Rz(0, 0.5)); // commutes through the control
/// c.push(Gate::Cx(0, 1));
/// let report = optimize(&mut c);
/// assert_eq!(report.cancelled, 2);
/// assert_eq!(c.len(), 1); // only the Rz survives
/// ```
pub fn optimize(circuit: &mut Circuit) -> PeepholeReport {
    let mut gates: Vec<Option<Gate>> = circuit.gates().iter().copied().map(Some).collect();
    let mut report = PeepholeReport::default();
    loop {
        let (c, m, z) = round(&mut gates);
        report.rounds += 1;
        report.cancelled += c;
        report.merged += m;
        report.zero_rotations += z;
        if c + m + z == 0 {
            break;
        }
    }
    circuit.set_gates(gates.into_iter().flatten().collect());
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_inverse_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(0, 1));
        let r = optimize(&mut c);
        assert_eq!(r.cancelled, 4);
        assert!(c.is_empty());
    }

    #[test]
    fn cancellation_through_commuting_gates() {
        // Rz on the control sits between two identical CNOTs: they cancel.
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Rz(0, 0.7));
        c.push(Gate::Cx(0, 1));
        optimize(&mut c);
        assert_eq!(c.gates(), &[Gate::Rz(0, 0.7)]);
    }

    #[test]
    fn rx_commutes_through_target() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Rx(1, 0.7));
        c.push(Gate::Cx(0, 1));
        optimize(&mut c);
        assert_eq!(c.gates(), &[Gate::Rx(1, 0.7)]);
    }

    #[test]
    fn h_blocks_cancellation() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        optimize(&mut c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn rz_through_shared_control_chain() {
        // CNOTs sharing a control commute, so the outer pair cancels.
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(0, 2));
        c.push(Gate::Cx(0, 1));
        optimize(&mut c);
        assert_eq!(c.gates(), &[Gate::Cx(0, 2)]);
    }

    #[test]
    fn shared_target_cnots_commute() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 2));
        c.push(Gate::Cx(1, 2));
        c.push(Gate::Cx(0, 2));
        optimize(&mut c);
        assert_eq!(c.gates(), &[Gate::Cx(1, 2)]);
    }

    #[test]
    fn control_target_collision_blocks() {
        // CX(0,1) then CX(1,2): 1 is target of the first, control of the
        // second — they do not commute, nothing cancels.
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        c.push(Gate::Cx(0, 1));
        optimize(&mut c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn rotations_merge_and_vanish() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 0.5));
        c.push(Gate::Rz(0, -0.5));
        let r = optimize(&mut c);
        assert!(c.is_empty());
        assert_eq!(r.merged, 1);
        assert_eq!(r.zero_rotations, 1);
    }

    #[test]
    fn rotations_merge_across_commuting_cnot() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(0, 0.25));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Rz(0, 0.5));
        optimize(&mut c);
        assert_eq!(c.gates(), &[Gate::Rz(0, 0.75), Gate::Cx(0, 1)]);
    }

    #[test]
    fn s_sdg_pair_cancels() {
        let mut c = Circuit::new(1);
        c.push(Gate::S(0));
        c.push(Gate::Sdg(0));
        optimize(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn swap_blocks_everything() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(0, 0.5));
        c.push(Gate::Swap(0, 1));
        c.push(Gate::Rz(0, 0.5));
        optimize(&mut c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn full_gadget_junction_cancels() {
        // Two adjacent ZZ gadgets exp(iθZZ) on the same pair collapse into
        // one gadget with merged rotation — the Fig. 4(a)-style win.
        let mut c = Circuit::new(2);
        for theta in [0.3, 0.4] {
            c.push(Gate::Cx(0, 1));
            c.push(Gate::Rz(1, theta));
            c.push(Gate::Cx(0, 1));
        }
        optimize(&mut c);
        assert_eq!(c.stats().cnot, 2);
        assert_eq!(c.stats().single, 1);
    }

    #[test]
    fn commutes_is_symmetric_on_rules() {
        let pairs = [
            (Gate::Rz(0, 0.1), Gate::Cx(0, 1)),
            (Gate::Rx(1, 0.1), Gate::Cx(0, 1)),
            (Gate::H(0), Gate::Cx(0, 1)),
            (Gate::Cx(0, 1), Gate::Cx(0, 2)),
            (Gate::Cx(0, 1), Gate::Cx(2, 1)),
            (Gate::Cx(0, 1), Gate::Cx(1, 2)),
        ];
        for (a, b) in pairs {
            assert_eq!(commutes(&a, &b), commutes(&b, &a), "{a} vs {b}");
        }
    }
}
