//! OpenQASM 2.0 emission.
//!
//! Compiled kernels can be exported for execution on any
//! OpenQASM-compatible stack (the practical hand-off point of this
//! reproduction, since the quantum ecosystem in Rust is thin).

use std::fmt::Write as _;

use crate::{Circuit, Gate};

/// Options for [`to_qasm`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QasmOptions {
    /// Append a measurement of every qubit into a classical register.
    pub measure_all: bool,
}

/// Renders the circuit as an OpenQASM 2.0 program.
///
/// All gates used by this repository (`h`, `x`, `s`, `sdg`, `rz`, `rx`,
/// `ry`, `cx`, `swap`) are part of `qelib1.inc`.
///
/// # Example
///
/// ```
/// use qcircuit::{Circuit, Gate};
/// use qcircuit::qasm::{to_qasm, QasmOptions};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// let qasm = to_qasm(&c, QasmOptions::default());
/// assert!(qasm.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit, options: QasmOptions) -> String {
    let n = circuit.num_qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{n}];");
    if options.measure_all {
        let _ = writeln!(out, "creg c[{n}];");
    }
    for g in circuit.gates() {
        let _ = match *g {
            Gate::H(q) => writeln!(out, "h q[{q}];"),
            Gate::X(q) => writeln!(out, "x q[{q}];"),
            Gate::S(q) => writeln!(out, "s q[{q}];"),
            Gate::Sdg(q) => writeln!(out, "sdg q[{q}];"),
            Gate::Rz(q, t) => writeln!(out, "rz({t}) q[{q}];"),
            Gate::Rx(q, t) => writeln!(out, "rx({t}) q[{q}];"),
            Gate::Ry(q, t) => writeln!(out, "ry({t}) q[{q}];"),
            Gate::Cx(a, b) => writeln!(out, "cx q[{a}], q[{b}];"),
            Gate::Swap(a, b) => writeln!(out, "swap q[{a}], q[{b}];"),
        };
    }
    if options.measure_all {
        for q in 0..n {
            let _ = writeln!(out, "measure q[{q}] -> c[{q}];");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_register() {
        let c = Circuit::new(3);
        let q = to_qasm(&c, QasmOptions::default());
        assert!(q.starts_with("OPENQASM 2.0;\n"));
        assert!(q.contains("qreg q[3];"));
        assert!(!q.contains("creg"));
    }

    #[test]
    fn all_gate_kinds_render() {
        let mut c = Circuit::new(2);
        for g in [
            Gate::H(0),
            Gate::X(1),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::Rz(0, 0.5),
            Gate::Rx(1, -0.5),
            Gate::Ry(1, 1.5),
            Gate::Cx(0, 1),
            Gate::Swap(0, 1),
        ] {
            c.push(g);
        }
        let q = to_qasm(&c, QasmOptions::default());
        for needle in [
            "h q[0];",
            "x q[1];",
            "s q[0];",
            "sdg q[0];",
            "rz(0.5) q[0];",
            "rx(-0.5) q[1];",
            "ry(1.5) q[1];",
            "cx q[0], q[1];",
            "swap q[0], q[1];",
        ] {
            assert!(q.contains(needle), "missing {needle} in:\n{q}");
        }
    }

    #[test]
    fn measure_all_appends_creg_and_measures() {
        let c = Circuit::new(2);
        let q = to_qasm(&c, QasmOptions { measure_all: true });
        assert!(q.contains("creg c[2];"));
        assert!(q.contains("measure q[0] -> c[0];"));
        assert!(q.contains("measure q[1] -> c[1];"));
    }
}
