//! The circuit container and its cost metrics.

use std::fmt;

use crate::Gate;

/// Gate-count and depth metrics of a circuit.
///
/// These are the four quantities every table in the paper's evaluation
/// reports: CNOT count, single-qubit gate count, total gate count, and
/// circuit depth (§6.1). SWAPs must be decomposed (see
/// [`Circuit::decompose_swaps`]) before metrics of mapped circuits are
/// compared, matching how the paper counts routed circuits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CircuitStats {
    /// Number of CNOT gates.
    pub cnot: usize,
    /// Number of single-qubit gates.
    pub single: usize,
    /// Number of SWAP gates (0 after decomposition).
    pub swap: usize,
    /// Total gate count (`cnot + single + swap`).
    pub total: usize,
    /// Circuit depth (all gates count one time step).
    pub depth: usize,
}

/// An ordered sequence of gates on `n` qubits.
///
/// # Example
///
/// ```
/// use qcircuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cx(0, 1));
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.stats().depth, 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    n: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// An empty circuit on `n` qubits.
    pub fn new(n: usize) -> Circuit {
        Circuit {
            n,
            gates: Vec::new(),
        }
    }

    /// The number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references a qubit `>= num_qubits()`.
    pub fn push(&mut self, gate: Gate) {
        let (a, b) = gate.qubits();
        assert!(a < self.n, "gate {gate} out of range for {} qubits", self.n);
        if let Some(b) = b {
            assert!(b < self.n, "gate {gate} out of range for {} qubits", self.n);
            assert_ne!(a, b, "two-qubit gate {gate} on a single qubit");
        }
        self.gates.push(gate);
    }

    /// Appends all gates of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` has more qubits than `self`.
    pub fn append_circuit(&mut self, other: &Circuit) {
        assert!(other.n <= self.n, "cannot append a wider circuit");
        for &g in &other.gates {
            self.push(g);
        }
    }

    /// The gates, in order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Iterates over the gates.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Replaces the gate list (used by optimization passes).
    pub fn set_gates(&mut self, gates: Vec<Gate>) {
        self.gates.clear();
        for g in gates {
            self.push(g);
        }
    }

    /// Returns the circuit with every `SWAP` decomposed into 3 CNOTs.
    pub fn decompose_swaps(&self) -> Circuit {
        let mut out = Circuit::new(self.n);
        for &g in &self.gates {
            match g {
                Gate::Swap(a, b) => {
                    out.push(Gate::Cx(a, b));
                    out.push(Gate::Cx(b, a));
                    out.push(Gate::Cx(a, b));
                }
                g => out.push(g),
            }
        }
        out
    }

    /// Gate-count and depth metrics of the circuit as-is (SWAPs counted as
    /// SWAPs; call [`Self::decompose_swaps`] first for mapped circuits).
    pub fn stats(&self) -> CircuitStats {
        let mut s = CircuitStats::default();
        let mut level = vec![0usize; self.n];
        for g in &self.gates {
            match g {
                Gate::Cx(..) => s.cnot += 1,
                Gate::Swap(..) => s.swap += 1,
                _ => s.single += 1,
            }
            let (a, b) = g.qubits();
            let l = match b {
                Some(b) => level[a].max(level[b]) + 1,
                None => level[a] + 1,
            };
            level[a] = l;
            if let Some(b) = b {
                level[b] = l;
            }
            s.depth = s.depth.max(l);
        }
        s.total = s.cnot + s.single + s.swap;
        s
    }

    /// Metrics after SWAP decomposition — the numbers the paper reports for
    /// mapped (SC-backend) circuits.
    pub fn mapped_stats(&self) -> CircuitStats {
        self.decompose_swaps().stats()
    }

    /// The inverse circuit (gates inverted, order reversed).
    pub fn inverse(&self) -> Circuit {
        let mut out = Circuit::new(self.n);
        for g in self.gates.iter().rev() {
            out.push(g.inverse());
        }
        out
    }

    /// Remaps all qubit indices through `f`, producing a circuit on
    /// `new_n` qubits.
    pub fn map_qubits(&self, new_n: usize, mut f: impl FnMut(usize) -> usize) -> Circuit {
        let mut out = Circuit::new(new_n);
        for g in &self.gates {
            out.push(g.map_qubits(&mut f));
        }
        out
    }

    /// Checks that every two-qubit gate acts on a pair allowed by
    /// `allowed(a, b)` (symmetric check left to the caller's closure).
    pub fn respects_connectivity(&self, mut allowed: impl FnMut(usize, usize) -> bool) -> bool {
        self.gates.iter().all(|g| {
            let (a, b) = g.qubits();
            match b {
                Some(b) => allowed(a, b),
                None => true,
            }
        })
    }
}

impl Extend<Gate> for Circuit {
    fn extend<T: IntoIterator<Item = Gate>>(&mut self, iter: T) {
        for g in iter {
            self.push(g);
        }
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;
    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.n)?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_gate_families() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Rz(1, 0.3));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Swap(1, 2));
        let s = c.stats();
        assert_eq!((s.cnot, s.single, s.swap, s.total), (2, 2, 1, 5));
    }

    #[test]
    fn depth_tracks_parallelism() {
        let mut c = Circuit::new(4);
        // Two disjoint CNOTs run in parallel: depth 1.
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(2, 3));
        assert_eq!(c.stats().depth, 1);
        // A gate bridging the halves serializes: depth 2.
        c.push(Gate::Cx(1, 2));
        assert_eq!(c.stats().depth, 2);
    }

    #[test]
    fn swap_decomposition() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(0, 1));
        let d = c.decompose_swaps();
        assert_eq!(d.len(), 3);
        assert_eq!(d.stats().cnot, 3);
        assert_eq!(c.mapped_stats().cnot, 3);
        assert_eq!(c.mapped_stats().swap, 0);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.push(Gate::S(0));
        c.push(Gate::Cx(0, 1));
        let inv = c.inverse();
        assert_eq!(inv.gates(), &[Gate::Cx(0, 1), Gate::Sdg(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_validates_qubits() {
        Circuit::new(2).push(Gate::H(2));
    }

    #[test]
    #[should_panic(expected = "single qubit")]
    fn push_rejects_degenerate_two_qubit_gate() {
        Circuit::new(2).push(Gate::Cx(1, 1));
    }

    #[test]
    fn connectivity_check() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        assert!(c.respects_connectivity(|a, b| a.abs_diff(b) == 1));
        c.push(Gate::Cx(0, 2));
        assert!(!c.respects_connectivity(|a, b| a.abs_diff(b) == 1));
    }

    #[test]
    fn map_qubits_embeds() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        let m = c.map_qubits(5, |q| q + 3);
        assert_eq!(m.gates(), &[Gate::Cx(3, 4)]);
        assert_eq!(m.num_qubits(), 5);
    }
}
