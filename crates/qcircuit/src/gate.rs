//! The gate alphabet.

use std::fmt;

use crate::math::{h_matrix, rx_matrix, ry_matrix, rz_matrix, Mat2, C64};

/// A quantum gate on named qubit wires.
///
/// The alphabet covers everything the Paulihedral flows emit: `H` and
/// `Rx(±π/2)` basis changes, the central `Rz` of every Pauli-rotation
/// gadget, `CNOT` trees, routing `SWAP`s, and the `S/S†` Cliffords used by
/// the simultaneous-diagonalization baseline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Pauli-X.
    X(usize),
    /// Phase gate S.
    S(usize),
    /// Inverse phase gate S†.
    Sdg(usize),
    /// Z-rotation `Rz(θ) = exp(−iθZ/2)`.
    Rz(usize, f64),
    /// X-rotation `Rx(θ) = exp(−iθX/2)`.
    Rx(usize, f64),
    /// Y-rotation `Ry(θ) = exp(−iθY/2)`.
    Ry(usize, f64),
    /// CNOT with `(control, target)`.
    Cx(usize, usize),
    /// SWAP of two qubits.
    Swap(usize, usize),
}

impl Gate {
    /// The qubits the gate acts on: `(first, second)` where `second` is
    /// `None` for single-qubit gates.
    #[inline]
    pub fn qubits(&self) -> (usize, Option<usize>) {
        match *self {
            Gate::H(q) | Gate::X(q) | Gate::S(q) | Gate::Sdg(q) => (q, None),
            Gate::Rz(q, _) | Gate::Rx(q, _) | Gate::Ry(q, _) => (q, None),
            Gate::Cx(a, b) | Gate::Swap(a, b) => (a, Some(b)),
        }
    }

    /// Whether the gate acts on two qubits.
    #[inline]
    pub fn is_two_qubit(&self) -> bool {
        matches!(self, Gate::Cx(..) | Gate::Swap(..))
    }

    /// Whether the gate touches qubit `q`.
    #[inline]
    pub fn acts_on(&self, q: usize) -> bool {
        let (a, b) = self.qubits();
        a == q || b == Some(q)
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S(q) => Gate::Sdg(q),
            Gate::Sdg(q) => Gate::S(q),
            Gate::Rz(q, t) => Gate::Rz(q, -t),
            Gate::Rx(q, t) => Gate::Rx(q, -t),
            Gate::Ry(q, t) => Gate::Ry(q, -t),
            g => g,
        }
    }

    /// Whether `self · other = I` exactly (self-inverse pairs and `S·S†`);
    /// rotation pairs are handled by angle merging instead.
    pub fn cancels_with(&self, other: &Gate) -> bool {
        match (*self, *other) {
            (Gate::H(a), Gate::H(b)) | (Gate::X(a), Gate::X(b)) => a == b,
            (Gate::S(a), Gate::Sdg(b)) | (Gate::Sdg(a), Gate::S(b)) => a == b,
            (Gate::Cx(a, b), Gate::Cx(c, d)) => a == c && b == d,
            (Gate::Swap(a, b), Gate::Swap(c, d)) => (a, b) == (c, d) || (a, b) == (d, c),
            _ => false,
        }
    }

    /// The 2×2 matrix of a single-qubit gate, or `None` for two-qubit gates.
    pub fn matrix(&self) -> Option<Mat2> {
        Some(match *self {
            Gate::H(_) => h_matrix(),
            Gate::X(_) => Mat2::new(C64::ZERO, C64::ONE, C64::ONE, C64::ZERO),
            Gate::S(_) => Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, C64::I),
            Gate::Sdg(_) => Mat2::new(C64::ONE, C64::ZERO, C64::ZERO, -C64::I),
            Gate::Rz(_, t) => rz_matrix(t),
            Gate::Rx(_, t) => rx_matrix(t),
            Gate::Ry(_, t) => ry_matrix(t),
            Gate::Cx(..) | Gate::Swap(..) => return None,
        })
    }

    /// Whether the gate is diagonal in the computational (Z) basis.
    #[inline]
    pub fn is_z_diagonal(&self) -> bool {
        matches!(self, Gate::S(_) | Gate::Sdg(_) | Gate::Rz(..))
    }

    /// Whether the gate is diagonal in the X basis.
    #[inline]
    pub fn is_x_diagonal(&self) -> bool {
        matches!(self, Gate::X(_) | Gate::Rx(..))
    }

    /// Remaps qubit indices through `f` (used when embedding circuits into
    /// devices or permuting layouts).
    pub fn map_qubits(&self, mut f: impl FnMut(usize) -> usize) -> Gate {
        match *self {
            Gate::H(q) => Gate::H(f(q)),
            Gate::X(q) => Gate::X(f(q)),
            Gate::S(q) => Gate::S(f(q)),
            Gate::Sdg(q) => Gate::Sdg(f(q)),
            Gate::Rz(q, t) => Gate::Rz(f(q), t),
            Gate::Rx(q, t) => Gate::Rx(f(q), t),
            Gate::Ry(q, t) => Gate::Ry(f(q), t),
            Gate::Cx(a, b) => Gate::Cx(f(a), f(b)),
            Gate::Swap(a, b) => Gate::Swap(f(a), f(b)),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Gate::H(q) => write!(f, "h q{q}"),
            Gate::X(q) => write!(f, "x q{q}"),
            Gate::S(q) => write!(f, "s q{q}"),
            Gate::Sdg(q) => write!(f, "sdg q{q}"),
            Gate::Rz(q, t) => write!(f, "rz({t}) q{q}"),
            Gate::Rx(q, t) => write!(f, "rx({t}) q{q}"),
            Gate::Ry(q, t) => write!(f, "ry({t}) q{q}"),
            Gate::Cx(a, b) => write!(f, "cx q{a}, q{b}"),
            Gate::Swap(a, b) => write!(f, "swap q{a}, q{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_accessors() {
        assert_eq!(Gate::H(3).qubits(), (3, None));
        assert_eq!(Gate::Cx(1, 2).qubits(), (1, Some(2)));
        assert!(Gate::Swap(0, 4).is_two_qubit());
        assert!(!Gate::Rz(0, 1.0).is_two_qubit());
        assert!(Gate::Cx(1, 2).acts_on(2));
        assert!(!Gate::Cx(1, 2).acts_on(0));
    }

    #[test]
    fn inverse_pairs() {
        assert_eq!(Gate::S(0).inverse(), Gate::Sdg(0));
        assert_eq!(Gate::Rz(1, 0.5).inverse(), Gate::Rz(1, -0.5));
        assert_eq!(Gate::Cx(0, 1).inverse(), Gate::Cx(0, 1));
    }

    #[test]
    fn cancellation_pairs() {
        assert!(Gate::H(2).cancels_with(&Gate::H(2)));
        assert!(!Gate::H(2).cancels_with(&Gate::H(1)));
        assert!(Gate::Cx(0, 1).cancels_with(&Gate::Cx(0, 1)));
        assert!(!Gate::Cx(0, 1).cancels_with(&Gate::Cx(1, 0)));
        assert!(Gate::Swap(0, 1).cancels_with(&Gate::Swap(1, 0)));
        assert!(Gate::S(0).cancels_with(&Gate::Sdg(0)));
        assert!(!Gate::Rz(0, 0.5).cancels_with(&Gate::Rz(0, -0.5)));
    }

    #[test]
    fn single_qubit_matrices_are_unitary() {
        for g in [
            Gate::H(0),
            Gate::X(0),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::Rz(0, 0.7),
            Gate::Rx(0, -1.3),
            Gate::Ry(0, 2.2),
        ] {
            let m = g.matrix().unwrap();
            let prod = m.matmul(&m.dagger());
            assert!(prod.is_identity_up_to_phase(1e-10), "{g}");
        }
        assert!(Gate::Cx(0, 1).matrix().is_none());
    }

    #[test]
    fn diagonality_families() {
        assert!(Gate::Rz(0, 1.0).is_z_diagonal());
        assert!(Gate::S(0).is_z_diagonal());
        assert!(!Gate::H(0).is_z_diagonal());
        assert!(Gate::Rx(0, 1.0).is_x_diagonal());
        assert!(Gate::X(0).is_x_diagonal());
        assert!(!Gate::Rz(0, 1.0).is_x_diagonal());
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::Cx(0, 1).map_qubits(|q| q + 10);
        assert_eq!(g, Gate::Cx(10, 11));
    }
}
