//! Single-qubit gate-run fusion.
//!
//! Emulates the `Optimize1qGates`-style stage of generic compilers: maximal
//! runs of single-qubit gates on a wire are multiplied into one 2×2 unitary
//! and re-synthesized as at most three rotations (`Rz·Ry·Rz`). A run is
//! replaced only when that makes it shorter, so fusion never inflates the
//! single-qubit count.

use crate::math::Mat2;
use crate::{Circuit, Gate};

/// Re-synthesizes a fused unitary as up to three rotations in circuit order.
fn resynthesize(q: usize, u: &Mat2) -> Vec<Gate> {
    if u.is_identity_up_to_phase(1e-10) {
        return Vec::new();
    }
    let (a, b, c) = u.zyz_angles();
    // Operator product Rz(a)·Ry(b)·Rz(c) applies Rz(c) first.
    let mut out = Vec::new();
    for gate in [Gate::Rz(q, c), Gate::Ry(q, b), Gate::Rz(q, a)] {
        let theta = match gate {
            Gate::Rz(_, t) | Gate::Ry(_, t) => t,
            _ => unreachable!(),
        };
        let r = theta.rem_euclid(std::f64::consts::TAU);
        if r > 1e-10 && std::f64::consts::TAU - r > 1e-10 {
            out.push(gate);
        }
    }
    out
}

/// Fuses maximal single-qubit runs on every wire, in place.
///
/// Returns the number of gates eliminated.
///
/// # Example
///
/// ```
/// use qcircuit::{Circuit, Gate};
/// use qcircuit::fusion::fuse_single_qubit_runs;
///
/// let mut c = Circuit::new(1);
/// c.push(Gate::H(0));
/// c.push(Gate::S(0));
/// c.push(Gate::Sdg(0));
/// c.push(Gate::H(0));
/// let removed = fuse_single_qubit_runs(&mut c);
/// assert_eq!(removed, 4); // the run multiplies to the identity
/// assert!(c.is_empty());
/// ```
pub fn fuse_single_qubit_runs(circuit: &mut Circuit) -> usize {
    let n = circuit.num_qubits();
    let before = circuit.len();
    let mut out: Vec<Gate> = Vec::with_capacity(before);
    // Pending run per wire: accumulated unitary + original gates.
    let mut pending: Vec<Option<(Mat2, Vec<Gate>)>> = vec![None; n];

    let flush = |q: usize, pending: &mut Vec<Option<(Mat2, Vec<Gate>)>>, out: &mut Vec<Gate>| {
        if let Some((u, originals)) = pending[q].take() {
            let fused = resynthesize(q, &u);
            if fused.len() < originals.len() {
                out.extend(fused);
            } else {
                out.extend(originals);
            }
        }
    };

    for &g in circuit.gates() {
        match g.qubits() {
            (q, None) => {
                let m = g.matrix().expect("single-qubit gate has a matrix");
                match &mut pending[q] {
                    Some((u, originals)) => {
                        *u = m.matmul(u); // later gate acts after: left-multiply
                        originals.push(g);
                    }
                    slot @ None => *slot = Some((m, vec![g])),
                }
            }
            (a, Some(b)) => {
                flush(a, &mut pending, &mut out);
                flush(b, &mut pending, &mut out);
                out.push(g);
            }
        }
    }
    for q in 0..n {
        flush(q, &mut pending, &mut out);
    }
    circuit.set_gates(out);
    before - circuit.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_run_disappears() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        c.push(Gate::H(0));
        assert_eq!(fuse_single_qubit_runs(&mut c), 2);
        assert!(c.is_empty());
    }

    #[test]
    fn long_run_compresses_to_at_most_three() {
        let mut c = Circuit::new(1);
        for g in [
            Gate::H(0),
            Gate::S(0),
            Gate::Rz(0, 0.3),
            Gate::H(0),
            Gate::Rx(0, -0.8),
            Gate::Sdg(0),
        ] {
            c.push(g);
        }
        fuse_single_qubit_runs(&mut c);
        assert!(c.len() <= 3, "got {}", c.len());
    }

    #[test]
    fn short_runs_are_kept_when_fusion_does_not_help() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        c.push(Gate::S(0));
        // H·S needs 3 rotations; the 2-gate original is kept.
        assert_eq!(fuse_single_qubit_runs(&mut c), 0);
        assert_eq!(c.gates(), &[Gate::H(0), Gate::S(0)]);
    }

    #[test]
    fn two_qubit_gates_break_runs() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::H(0));
        assert_eq!(fuse_single_qubit_runs(&mut c), 0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn runs_on_different_wires_are_independent() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        assert_eq!(fuse_single_qubit_runs(&mut c), 4);
        assert!(c.is_empty());
    }

    #[test]
    fn fused_unitary_is_equivalent() {
        // Verify H·S·H fusion preserves the operator (up to global phase).
        let gates = [Gate::H(0), Gate::S(0), Gate::H(0)];
        let mut reference = Mat2::IDENTITY;
        for g in gates {
            reference = g.matrix().unwrap().matmul(&reference);
        }
        let mut c = Circuit::new(1);
        for g in gates {
            c.push(g);
        }
        fuse_single_qubit_runs(&mut c);
        let mut fused = Mat2::IDENTITY;
        for g in c.gates() {
            fused = g.matrix().unwrap().matmul(&fused);
        }
        let diff = reference.matmul(&fused.dagger());
        assert!(diff.is_identity_up_to_phase(1e-9));
    }
}
