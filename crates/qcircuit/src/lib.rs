//! Gate-level circuit substrate for the Paulihedral reproduction.
//!
//! Paulihedral lowers Pauli IR programs to gate sequences and evaluates them
//! by CNOT count, single-qubit gate count, total gate count and circuit
//! depth (paper §6.1). This crate provides:
//!
//! * [`Gate`] / [`Circuit`] — the circuit IR with those metrics,
//! * [`math`] — minimal complex/2×2-unitary arithmetic (shared with `qsim`),
//! * [`peephole`] — the wire-DAG cancellation pass (adjacent-inverse
//!   cancellation, rotation merging, commutation-aware lookahead) that
//!   realizes the gate cancellation the scheduling passes set up,
//! * [`fusion`] — single-qubit run fusion into ZYZ Euler triples (the
//!   `Optimize1qGates`-style stage of the emulated generic compilers),
//! * [`qasm`] — an OpenQASM 2.0 emitter.
//!
//! # Example
//!
//! ```
//! use qcircuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::H(0));
//! c.push(Gate::Cx(0, 1));
//! c.push(Gate::Rz(1, 0.5));
//! c.push(Gate::Cx(0, 1));
//! assert_eq!(c.stats().cnot, 2);
//! assert_eq!(c.stats().single, 2);
//! assert_eq!(c.stats().depth, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
pub mod fusion;
mod gate;
pub mod math;
pub mod peephole;
pub mod qasm;

pub use circuit::{Circuit, CircuitStats};
pub use gate::Gate;
