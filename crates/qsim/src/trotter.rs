//! Exact `exp(iθP)` operators — the ground truth for compiled kernels.
//!
//! A Pauli string squares to the identity, so
//! `exp(iθP) = cos(θ)·I + i·sin(θ)·P`, which lets us build the exact
//! operator of a (scheduled) Trotter step and compare compiled circuits
//! against it.

use pauli::{Pauli, PauliString};
use qcircuit::math::C64;

use crate::unitary::{identity, matmul, Columns};

/// The dense matrix of a Pauli string (as columns).
///
/// # Panics
///
/// Panics if the string has more than 12 qubits.
pub fn pauli_matrix(p: &PauliString) -> Columns {
    let n = p.num_qubits();
    assert!(n <= 12, "dense pauli matrix limited to 12 qubits");
    let dim = 1usize << n;
    let mut flip = 0usize; // X or Y: bit flip
    for q in 0..n {
        if matches!(p.get(q), Pauli::X | Pauli::Y) {
            flip |= 1 << q;
        }
    }
    let mut cols = vec![vec![C64::ZERO; dim]; dim];
    for j in 0..dim {
        // P |j⟩ = phase · |j ^ flip⟩
        let mut phase = C64::ONE;
        for q in 0..n {
            let bit = (j >> q) & 1;
            match p.get(q) {
                Pauli::I | Pauli::X => {}
                Pauli::Z => {
                    if bit == 1 {
                        phase = -phase;
                    }
                }
                Pauli::Y => {
                    // Y|0⟩ = i|1⟩, Y|1⟩ = −i|0⟩.
                    phase = if bit == 0 {
                        phase * C64::I
                    } else {
                        phase * (-C64::I)
                    };
                }
            }
        }
        cols[j][j ^ flip] = phase;
    }
    cols
}

/// The operator `exp(iθP) = cos(θ)·I + i·sin(θ)·P` (as columns).
pub fn exp_pauli(p: &PauliString, theta: f64) -> Columns {
    let dim = 1usize << p.num_qubits();
    let pm = pauli_matrix(p);
    let (c, s) = (theta.cos(), theta.sin());
    let mut out = vec![vec![C64::ZERO; dim]; dim];
    for j in 0..dim {
        for i in 0..dim {
            let mut v = pm[j][i].mul_i_pow(1) * s;
            if i == j {
                v += C64::real(c);
            }
            out[j][i] = v;
        }
    }
    out
}

/// The operator of a sequence of exponentials applied in circuit order:
/// the first `(P, θ)` acts first, so the matrix product is
/// `exp(iθ_k P_k) ⋯ exp(iθ_1 P_1)`.
pub fn exp_product<'a>(
    n: usize,
    terms: impl IntoIterator<Item = (&'a PauliString, f64)>,
) -> Columns {
    let mut acc = identity(1 << n);
    for (p, theta) in terms {
        assert_eq!(p.num_qubits(), n, "term qubit count mismatch");
        acc = matmul(&exp_pauli(p, theta), &acc);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::{circuit_unitary, equal_up_to_phase};
    use qcircuit::{Circuit, Gate};

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn pauli_matrices_are_hermitian_and_square_to_identity() {
        for s in ["X", "Y", "Z", "XY", "ZZY", "IXI"] {
            let p = ps(s);
            let m = pauli_matrix(&p);
            let m2 = matmul(&m, &m);
            assert!(
                equal_up_to_phase(&m2, &identity(m.len()), 1e-12),
                "{s}² ≠ I"
            );
            for (j, row) in m.iter().enumerate() {
                for (i, &a) in row.iter().enumerate() {
                    let b = m[i][j].conj();
                    assert!((a - b).norm() < 1e-12, "{s} not hermitian");
                }
            }
        }
    }

    #[test]
    fn exp_z_matches_rz_gate() {
        // exp(iθZ) = Rz(−2θ) up to global phase.
        let theta = 0.37;
        let e = exp_pauli(&ps("Z"), theta);
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, -2.0 * theta));
        assert!(equal_up_to_phase(&e, &circuit_unitary(&c), 1e-12));
    }

    #[test]
    fn exp_x_matches_rx_gate() {
        let theta = -0.81;
        let e = exp_pauli(&ps("X"), theta);
        let mut c = Circuit::new(1);
        c.push(Gate::Rx(0, -2.0 * theta));
        assert!(equal_up_to_phase(&e, &circuit_unitary(&c), 1e-12));
    }

    #[test]
    fn exp_zz_matches_cnot_rz_cnot_gadget() {
        let theta = 0.59;
        let e = exp_pauli(&ps("ZZ"), theta);
        let mut c = Circuit::new(2);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Rz(1, -2.0 * theta));
        c.push(Gate::Cx(0, 1));
        assert!(equal_up_to_phase(&e, &circuit_unitary(&c), 1e-12));
    }

    #[test]
    fn exp_product_order_matters_for_noncommuting_terms() {
        let a = ps("ZZ");
        let b = ps("XI");
        let ab = exp_product(2, [(&a, 0.5), (&b, 0.3)]);
        let ba = exp_product(2, [(&b, 0.3), (&a, 0.5)]);
        assert!(!equal_up_to_phase(&ab, &ba, 1e-9));
    }

    #[test]
    fn exp_product_of_commuting_terms_is_order_free() {
        let a = ps("ZZI");
        let b = ps("IZZ");
        let ab = exp_product(3, [(&a, 0.5), (&b, 0.3)]);
        let ba = exp_product(3, [(&b, 0.3), (&a, 0.5)]);
        assert!(equal_up_to_phase(&ab, &ba, 1e-12));
    }

    #[test]
    fn exp_identity_string_is_global_phase() {
        let e = exp_pauli(&PauliString::identity(2), 0.9);
        assert!(equal_up_to_phase(&e, &identity(4), 1e-12));
    }
}
