//! Dense state-vector simulation.

use qcircuit::math::{Mat2, C64};
use qcircuit::{Circuit, Gate};
use rand::Rng;

/// A dense `2^n` state vector.
///
/// Basis-state index bit `q` corresponds to qubit `q` (little-endian), so
/// the index of the classical string `|q_{n-1} … q_0⟩` is the usual binary
/// value.
///
/// # Example
///
/// ```
/// use qsim::State;
/// use qcircuit::{Circuit, Gate};
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H(0));
/// bell.push(Gate::Cx(0, 1));
/// let mut s = State::zero(2);
/// s.apply_circuit(&bell);
/// let p = s.probabilities();
/// assert!((p[0b00] - 0.5).abs() < 1e-12);
/// assert!((p[0b11] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct State {
    n: usize,
    amps: Vec<C64>,
}

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 26` (the dense representation would exceed memory).
    pub fn zero(n: usize) -> State {
        State::basis(n, 0)
    }

    /// The computational basis state with index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 26` or `idx >= 2^n`.
    pub fn basis(n: usize, idx: u64) -> State {
        assert!(n <= 26, "dense simulation limited to 26 qubits, got {n}");
        let dim = 1usize << n;
        assert!((idx as usize) < dim, "basis index {idx} out of range");
        let mut amps = vec![C64::ZERO; dim];
        amps[idx as usize] = C64::ONE;
        State { n, amps }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The amplitudes (length `2^n`).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies a 2×2 unitary to qubit `q`.
    pub fn apply_mat2(&mut self, q: usize, m: &Mat2) {
        assert!(q < self.n, "qubit {q} out of range");
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let a0 = self.amps[i];
                let a1 = self.amps[i | bit];
                self.amps[i] = m.m[0] * a0 + m.m[1] * a1;
                self.amps[i | bit] = m.m[2] * a0 + m.m[3] * a1;
            }
        }
    }

    /// Applies one gate.
    pub fn apply_gate(&mut self, gate: &Gate) {
        match *gate {
            Gate::Cx(c, t) => {
                let (cb, tb) = (1usize << c, 1usize << t);
                for i in 0..self.amps.len() {
                    if i & cb != 0 && i & tb == 0 {
                        self.amps.swap(i, i | tb);
                    }
                }
            }
            Gate::Swap(a, b) => {
                let (ab, bb) = (1usize << a, 1usize << b);
                for i in 0..self.amps.len() {
                    if i & ab != 0 && i & bb == 0 {
                        self.amps.swap(i, (i & !ab) | bb);
                    }
                }
            }
            g => {
                let (q, _) = g.qubits();
                let m = g.matrix().expect("single-qubit gate");
                self.apply_mat2(q, &m);
            }
        }
    }

    /// Applies every gate of a circuit in order.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert!(circuit.num_qubits() <= self.n, "circuit wider than state");
        for g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    /// Applies the Pauli error `which ∈ {1=X, 2=Y, 3=Z}` to qubit `q`
    /// (global phase of Y is dropped — irrelevant for sampling).
    pub fn apply_pauli_error(&mut self, q: usize, which: u8) {
        let bit = 1usize << q;
        match which {
            1 => {
                for i in 0..self.amps.len() {
                    if i & bit == 0 {
                        self.amps.swap(i, i | bit);
                    }
                }
            }
            3 => {
                for (i, a) in self.amps.iter_mut().enumerate() {
                    if i & bit != 0 {
                        *a = -*a;
                    }
                }
            }
            2 => {
                self.apply_pauli_error(q, 3);
                self.apply_pauli_error(q, 1);
            }
            other => panic!("invalid pauli error code {other}"),
        }
    }

    /// The measurement probability of every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Samples one measurement outcome.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let mut r: f64 = rng.gen::<f64>();
        for (i, a) in self.amps.iter().enumerate() {
            r -= a.norm_sqr();
            if r <= 0.0 {
                return i as u64;
            }
        }
        (self.amps.len() - 1) as u64
    }

    /// The state's norm (should stay ≈ 1 under unitary evolution).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const TOL: f64 = 1e-12;

    #[test]
    fn x_flips_a_bit() {
        let mut s = State::zero(2);
        s.apply_gate(&Gate::X(1));
        let p = s.probabilities();
        assert!((p[0b10] - 1.0).abs() < TOL);
    }

    #[test]
    fn cx_acts_on_control_and_target() {
        let mut s = State::basis(2, 0b01); // qubit 0 set
        s.apply_gate(&Gate::Cx(0, 1));
        assert!((s.probabilities()[0b11] - 1.0).abs() < TOL);
        let mut s = State::basis(2, 0b10); // control clear
        s.apply_gate(&Gate::Cx(0, 1));
        assert!((s.probabilities()[0b10] - 1.0).abs() < TOL);
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut s = State::basis(3, 0b001);
        s.apply_gate(&Gate::Swap(0, 2));
        assert!((s.probabilities()[0b100] - 1.0).abs() < TOL);
    }

    #[test]
    fn ghz_state_probabilities() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        let mut s = State::zero(3);
        s.apply_circuit(&c);
        let p = s.probabilities();
        assert!((p[0b000] - 0.5).abs() < TOL);
        assert!((p[0b111] - 0.5).abs() < TOL);
        assert!((s.norm() - 1.0).abs() < TOL);
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let mut s = State::basis(1, 1);
        s.apply_gate(&Gate::Rz(0, std::f64::consts::PI));
        // |1⟩ picks up e^{iπ/2} = i; probability unchanged.
        assert!((s.amplitudes()[1].im - 1.0).abs() < 1e-12);
        assert!((s.probabilities()[1] - 1.0).abs() < TOL);
    }

    #[test]
    fn pauli_errors_act_correctly() {
        let mut s = State::zero(1);
        s.apply_pauli_error(0, 1); // X
        assert!((s.probabilities()[1] - 1.0).abs() < TOL);
        s.apply_pauli_error(0, 3); // Z on |1⟩ = sign flip
        assert!((s.amplitudes()[1].re + 1.0).abs() < TOL);
        s.apply_pauli_error(0, 2); // Y (up to phase) flips back to |0⟩
        assert!((s.probabilities()[0] - 1.0).abs() < TOL);
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        let mut s = State::zero(1);
        s.apply_circuit(&c);
        let mut rng = StdRng::seed_from_u64(11);
        let ones: usize = (0..4000).filter(|_| s.sample(&mut rng) == 1).count();
        assert!((ones as f64 / 4000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn unitarity_preserves_norm() {
        let mut c = Circuit::new(3);
        for g in [
            Gate::H(0),
            Gate::Ry(1, 0.7),
            Gate::Cx(0, 2),
            Gate::S(2),
            Gate::Rx(1, -1.1),
            Gate::Swap(0, 1),
        ] {
            c.push(g);
        }
        let mut s = State::basis(3, 0b101);
        s.apply_circuit(&c);
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "26 qubits")]
    fn rejects_oversized_states() {
        State::zero(30);
    }
}
