//! Circuit unitaries and equivalence checking.
//!
//! The Pauli IR semantics (paper Fig. 7) licenses reordering blocks and
//! strings; a compiled circuit is *correct* when it implements the product
//! of `exp(iθP)` operators **in the scheduled order**. These helpers verify
//! exactly that, up to a global phase — and, for routed (SC-backend)
//! circuits, up to the tracked initial/final layout embedding.

use qcircuit::math::C64;
use qcircuit::Circuit;

use crate::State;

/// A dense complex matrix stored as columns (each a `2^n` vector).
pub type Columns = Vec<Vec<C64>>;

/// Builds the full unitary of `circuit` as columns.
///
/// # Panics
///
/// Panics if the circuit has more than 12 qubits (4096² entries) — this is
/// a verification tool, not a simulator for large systems.
pub fn circuit_unitary(circuit: &Circuit) -> Columns {
    let n = circuit.num_qubits();
    assert!(n <= 12, "unitary construction limited to 12 qubits");
    let dim = 1usize << n;
    (0..dim)
        .map(|j| {
            let mut s = State::basis(n, j as u64);
            s.apply_circuit(circuit);
            s.amplitudes().to_vec()
        })
        .collect()
}

/// Dense matrix product `a · b` (both as columns).
pub fn matmul(a: &Columns, b: &Columns) -> Columns {
    let dim = a.len();
    assert_eq!(b.len(), dim, "dimension mismatch");
    let mut out = vec![vec![C64::ZERO; dim]; dim];
    for (j, bcol) in b.iter().enumerate() {
        for (k, &bkj) in bcol.iter().enumerate() {
            if bkj.norm_sqr() < 1e-30 {
                continue;
            }
            let acol = &a[k];
            for i in 0..dim {
                let v = acol[i] * bkj;
                out[j][i] += v;
            }
        }
    }
    out
}

/// The identity matrix of dimension `dim`.
pub fn identity(dim: usize) -> Columns {
    (0..dim)
        .map(|j| {
            let mut col = vec![C64::ZERO; dim];
            col[j] = C64::ONE;
            col
        })
        .collect()
}

/// Whether `a == e^{iφ} · b` for some global phase `φ`, within `tol`.
pub fn equal_up_to_phase(a: &Columns, b: &Columns, tol: f64) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut phase: Option<C64> = None;
    for (ca, cb) in a.iter().zip(b) {
        for (&ea, &eb) in ca.iter().zip(cb) {
            match phase {
                None => {
                    if ea.norm() > tol.max(1e-6) || eb.norm() > tol.max(1e-6) {
                        if ea.norm() < 1e-12 || eb.norm() < 1e-12 {
                            return false;
                        }
                        phase = Some(ea / eb);
                    }
                }
                Some(ph) => {
                    if (ea - eb * ph).norm() > tol {
                        return false;
                    }
                }
            }
        }
    }
    match phase {
        Some(ph) => (ph.norm() - 1.0).abs() < tol,
        None => true, // both ≈ zero matrices
    }
}

/// Verifies that a routed physical circuit implements a logical operator.
///
/// `u_logical` is the expected operator on the `k` logical qubits (as
/// columns, dimension `2^k`). `initial[l]` / `final_[l]` give the physical
/// position of logical `l` before/after the circuit. The check asserts
///
/// ```text
///   C · embed_initial(|x⟩) = e^{iφ} · embed_final(U|x⟩)   for all basis x
/// ```
///
/// with one consistent phase `φ`, where `embed` places logical bits at
/// their physical positions and `|0⟩` elsewhere.
pub fn routed_circuit_implements(
    circuit: &Circuit,
    u_logical: &Columns,
    initial: &[usize],
    final_: &[usize],
    tol: f64,
) -> bool {
    let k = initial.len();
    assert_eq!(final_.len(), k, "layout size mismatch");
    assert_eq!(
        u_logical.len(),
        1 << k,
        "logical operator dimension mismatch"
    );
    let n = circuit.num_qubits();
    let embed = |x: usize, l2p: &[usize]| -> u64 {
        let mut p = 0u64;
        for (l, &pos) in l2p.iter().enumerate() {
            if (x >> l) & 1 == 1 {
                p |= 1 << pos;
            }
        }
        p
    };
    let mut phase: Option<C64> = None;
    for (x, u_row) in u_logical.iter().enumerate().take(1usize << k) {
        let mut s = State::basis(n, embed(x, initial));
        s.apply_circuit(circuit);
        let got = s.amplitudes();
        // Expected: Σ_y u[x][y] |embed(y, final)⟩.
        let mut expected = vec![C64::ZERO; 1 << n];
        for (y, &amp) in u_row.iter().enumerate() {
            expected[embed(y, final_) as usize] += amp;
        }
        for (i, &e) in expected.iter().enumerate() {
            let g = got[i];
            match phase {
                None => {
                    if e.norm() > 1e-6 || g.norm() > 1e-6 {
                        if e.norm() < 1e-12 || g.norm() < 1e-12 {
                            return false;
                        }
                        phase = Some(g / e);
                    }
                }
                Some(ph) => {
                    if (g - e * ph).norm() > tol {
                        return false;
                    }
                }
            }
        }
    }
    phase.is_none_or(|ph| (ph.norm() - 1.0).abs() < tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Gate;

    #[test]
    fn identity_circuit_gives_identity() {
        let c = Circuit::new(2);
        let u = circuit_unitary(&c);
        assert!(equal_up_to_phase(&u, &identity(4), 1e-12));
    }

    #[test]
    fn hh_equals_identity() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        c.push(Gate::H(0));
        assert!(equal_up_to_phase(&circuit_unitary(&c), &identity(2), 1e-12));
    }

    #[test]
    fn global_phase_is_ignored() {
        let mut a = Circuit::new(1);
        a.push(Gate::Rz(0, 1.0));
        let mut b = Circuit::new(1);
        b.push(Gate::Rz(0, 1.0 + 2.0 * std::f64::consts::PI)); // −1 global phase
        assert!(equal_up_to_phase(
            &circuit_unitary(&a),
            &circuit_unitary(&b),
            1e-10
        ));
    }

    #[test]
    fn different_operators_are_distinguished() {
        let mut a = Circuit::new(1);
        a.push(Gate::H(0));
        let mut b = Circuit::new(1);
        b.push(Gate::X(0));
        assert!(!equal_up_to_phase(
            &circuit_unitary(&a),
            &circuit_unitary(&b),
            1e-10
        ));
    }

    #[test]
    fn matmul_against_composition() {
        let mut ab = Circuit::new(2);
        ab.push(Gate::H(0));
        ab.push(Gate::Cx(0, 1));
        let mut a = Circuit::new(2);
        a.push(Gate::H(0));
        let mut b = Circuit::new(2);
        b.push(Gate::Cx(0, 1));
        // Circuit order a-then-b means operator product U_b · U_a.
        let prod = matmul(&circuit_unitary(&b), &circuit_unitary(&a));
        assert!(equal_up_to_phase(&prod, &circuit_unitary(&ab), 1e-12));
    }

    #[test]
    fn routed_identity_with_swap_permutation() {
        // A bare SWAP implements the logical identity with a moved layout.
        let mut c = Circuit::new(3);
        c.push(Gate::Swap(0, 2));
        let u = identity(2); // one logical qubit
        assert!(routed_circuit_implements(&c, &u, &[0], &[2], 1e-12));
        assert!(!routed_circuit_implements(&c, &u, &[0], &[0], 1e-12));
    }

    #[test]
    fn routed_cx_through_swap() {
        // Logical CX(0,1) executed as SWAP then physical CX(1,2).
        let mut c = Circuit::new(3);
        c.push(Gate::Swap(0, 1));
        c.push(Gate::Cx(1, 2));
        // Logical unitary of CX(control=0, target=1), 2 logical qubits.
        let mut logical = Circuit::new(2);
        logical.push(Gate::Cx(0, 1));
        let u = circuit_unitary(&logical);
        assert!(routed_circuit_implements(&c, &u, &[0, 2], &[1, 2], 1e-12));
    }
}
