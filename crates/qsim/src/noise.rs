//! Monte-Carlo Pauli-noise simulation.
//!
//! Substitute for the paper's real-system study (§6.4): instead of IBM's
//! 16-qubit Melbourne chip we run noisy trajectories on its coupling-map
//! model. After every gate a depolarizing-style Pauli error is injected
//! with the gate's calibrated error probability; readout flips each
//! measured bit with its readout error. The *Real-System Success
//! Probability* (RSP) of the paper becomes the fraction of trajectories
//! whose measured bitstring is a correct answer.

use qcircuit::Circuit;
use qdevice::NoiseModel;
use rand::Rng;

use crate::State;

/// Samples `shots` noisy trajectories of a physical circuit.
///
/// Returns one measured value per shot; bit `j` of each value is the
/// outcome of physical qubit `measured[j]` (readout error applied).
///
/// # Panics
///
/// Panics if the circuit is wider than 26 qubits.
pub fn sample_noisy(
    circuit: &Circuit,
    noise: &NoiseModel,
    measured: &[usize],
    shots: usize,
    rng: &mut impl Rng,
) -> Vec<u64> {
    let gate_errors: Vec<f64> = circuit
        .gates()
        .iter()
        .map(|g| noise.gate_error(g))
        .collect();
    let readout: Vec<f64> = measured.iter().map(|&q| noise.readout_error(q)).collect();
    sample_noisy_rates(circuit, &gate_errors, &readout, measured, shots, rng)
}

/// Like [`sample_noisy`] but with explicit per-gate error rates and
/// per-measured-qubit readout rates — used to simulate a *compacted*
/// circuit (indices remapped to a smaller register) while keeping the
/// original device's calibration.
///
/// # Panics
///
/// Panics if `gate_errors` does not match the gate count or `readout`
/// the measured count.
pub fn sample_noisy_rates(
    circuit: &Circuit,
    gate_errors: &[f64],
    readout: &[f64],
    measured: &[usize],
    shots: usize,
    rng: &mut impl Rng,
) -> Vec<u64> {
    assert_eq!(gate_errors.len(), circuit.len(), "one error rate per gate");
    assert_eq!(
        readout.len(),
        measured.len(),
        "one readout rate per measured qubit"
    );
    let n = circuit.num_qubits();
    let mut out = Vec::with_capacity(shots);
    for _ in 0..shots {
        let mut s = State::zero(n);
        for (g, &err) in circuit.gates().iter().zip(gate_errors) {
            s.apply_gate(g);
            if err > 0.0 && rng.gen::<f64>() < err {
                inject_pauli_error(&mut s, g.qubits(), rng);
            }
        }
        let raw = s.sample(rng);
        let mut val = 0u64;
        for (j, &q) in measured.iter().enumerate() {
            let mut bit = (raw >> q) & 1;
            if rng.gen::<f64>() < readout[j] {
                bit ^= 1;
            }
            val |= bit << j;
        }
        out.push(val);
    }
    out
}

/// Injects a uniformly random non-identity Pauli on the gate's qubit(s).
fn inject_pauli_error(state: &mut State, qubits: (usize, Option<usize>), rng: &mut impl Rng) {
    match qubits {
        (q, None) => {
            let which = rng.gen_range(1..=3u8);
            state.apply_pauli_error(q, which);
        }
        (a, Some(b)) => {
            // One of the 15 non-identity two-qubit Paulis.
            let code = rng.gen_range(1..16u8);
            let (pa, pb) = (code / 4, code % 4);
            if pa != 0 {
                state.apply_pauli_error(a, pa);
            }
            if pb != 0 {
                state.apply_pauli_error(b, pb);
            }
        }
    }
}

/// The fraction of sampled values contained in `accepted` (sorted or not).
pub fn success_fraction(samples: &[u64], accepted: &[u64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let hits = samples.iter().filter(|v| accepted.contains(v)).count();
    hits as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Gate;
    use qdevice::devices;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_model_reproduces_ideal_sampling() {
        let map = devices::linear(2);
        let nm = NoiseModel::uniform(&map, 0.0, 0.0, 0.0);
        let mut c = Circuit::new(2);
        c.push(Gate::X(0));
        c.push(Gate::Cx(0, 1));
        let mut rng = StdRng::seed_from_u64(3);
        let samples = sample_noisy(&c, &nm, &[0, 1], 50, &mut rng);
        assert!(samples.iter().all(|&v| v == 0b11));
    }

    #[test]
    fn heavy_noise_degrades_success() {
        let map = devices::linear(2);
        let noisy = NoiseModel::uniform(&map, 0.3, 0.1, 0.0);
        let mut c = Circuit::new(2);
        c.push(Gate::X(0));
        c.push(Gate::Cx(0, 1));
        let mut rng = StdRng::seed_from_u64(5);
        let samples = sample_noisy(&c, &noisy, &[0, 1], 400, &mut rng);
        let ok = success_fraction(&samples, &[0b11]);
        assert!(ok < 0.95, "noise should reduce success, got {ok}");
        assert!(ok > 0.2, "sanity: not everything fails, got {ok}");
    }

    #[test]
    fn readout_error_flips_bits() {
        let map = devices::linear(1);
        let nm = NoiseModel::uniform(&map, 0.0, 0.0, 0.5);
        let c = Circuit::new(1);
        let mut rng = StdRng::seed_from_u64(7);
        let samples = sample_noisy(&c, &nm, &[0], 2000, &mut rng);
        let ones = samples.iter().filter(|&&v| v == 1).count() as f64 / 2000.0;
        assert!((ones - 0.5).abs() < 0.05);
    }

    #[test]
    fn measured_subset_and_bit_order() {
        let map = devices::linear(3);
        let nm = NoiseModel::uniform(&map, 0.0, 0.0, 0.0);
        let mut c = Circuit::new(3);
        c.push(Gate::X(2));
        let mut rng = StdRng::seed_from_u64(9);
        // Measure [2, 0]: bit 0 of the result is qubit 2 (set), bit 1 is qubit 0.
        let samples = sample_noisy(&c, &nm, &[2, 0], 10, &mut rng);
        assert!(samples.iter().all(|&v| v == 0b01));
    }

    #[test]
    fn success_fraction_counts_hits() {
        assert_eq!(success_fraction(&[1, 2, 3, 2], &[2]), 0.5);
        assert_eq!(success_fraction(&[], &[2]), 0.0);
        assert_eq!(success_fraction(&[5, 5], &[5, 7]), 1.0);
    }
}
