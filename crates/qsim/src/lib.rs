//! Dense quantum simulation substrate.
//!
//! This crate is the reproduction's *verification oracle* and its
//! substitute for real quantum hardware:
//!
//! * [`State`] — a dense state vector (practical to ~20 qubits) applying
//!   every [`qcircuit::Gate`],
//! * [`unitary`] — circuit→unitary construction and equivalence checks up
//!   to global phase and (for routed circuits) up to the final layout
//!   permutation; used to prove every compiler pass semantics-preserving,
//! * [`trotter`] — exact `exp(iθP)` operators and ordered products, the
//!   ground truth a compiled simulation kernel must match,
//! * [`noise`] — Monte-Carlo Pauli-error injection reproducing the paper's
//!   real-system study (Fig. 11) on the Melbourne model,
//! * [`qaoa`] — MaxCut utilities (cut values, optimal bitstrings,
//!   expectation values, parameter grid search).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod noise;
pub mod qaoa;
mod state;
pub mod trotter;
pub mod unitary;

pub use state::State;
