//! QAOA MaxCut utilities for the real-system study (Fig. 11).
//!
//! The paper prepares 1-level QAOA circuits, optimizes `(γ, β)` in a
//! simulator, and measures the probability of sampling an optimal cut.
//! These helpers provide the logical-level pieces: the ansatz, brute-force
//! optimal cuts, expectation values, and a parameter grid search.

use qcircuit::{Circuit, Gate};

use crate::State;

/// A weighted edge `(u, v, w)`.
pub type WeightedEdge = (usize, usize, f64);

/// The cut value of bitstring `x` on a weighted graph.
pub fn cut_value(edges: &[WeightedEdge], x: u64) -> f64 {
    edges
        .iter()
        .map(|&(u, v, w)| {
            if ((x >> u) ^ (x >> v)) & 1 == 1 {
                w
            } else {
                0.0
            }
        })
        .sum()
}

/// Brute-force MaxCut: the optimal value and every optimal bitstring.
///
/// # Panics
///
/// Panics if `n > 22` (exhaustive enumeration).
pub fn max_cut(n: usize, edges: &[WeightedEdge]) -> (f64, Vec<u64>) {
    assert!(n <= 22, "brute-force maxcut limited to 22 nodes");
    let mut best = f64::NEG_INFINITY;
    let mut argmax = Vec::new();
    for x in 0..(1u64 << n) {
        let v = cut_value(edges, x);
        if v > best + 1e-12 {
            best = v;
            argmax = vec![x];
        } else if (v - best).abs() <= 1e-12 {
            argmax.push(x);
        }
    }
    (best, argmax)
}

/// The logical 1-level QAOA ansatz: `H⊗n`, then `exp(−iγ·w·Z_uZ_v)` per
/// edge, then the mixer `Rx(2β)⊗n`.
pub fn ansatz_p1(n: usize, edges: &[WeightedEdge], gamma: f64, beta: f64) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H(q));
    }
    for &(u, v, w) in edges {
        c.push(Gate::Cx(u, v));
        c.push(Gate::Rz(v, 2.0 * gamma * w));
        c.push(Gate::Cx(u, v));
    }
    for q in 0..n {
        c.push(Gate::Rx(q, 2.0 * beta));
    }
    c
}

/// The expected cut value of a state.
pub fn expected_cut(state: &State, edges: &[WeightedEdge]) -> f64 {
    state
        .probabilities()
        .iter()
        .enumerate()
        .map(|(x, p)| p * cut_value(edges, x as u64))
        .sum()
}

/// Grid search over `(γ, β) ∈ [0, π) × [0, π)` maximizing the expected cut
/// of the 1-level ansatz; returns `(γ*, β*, expectation)`.
///
/// # Panics
///
/// Panics if `grid == 0`.
pub fn optimize_p1(n: usize, edges: &[WeightedEdge], grid: usize) -> (f64, f64, f64) {
    assert!(grid > 0, "grid must be positive");
    let mut best = (0.0, 0.0, f64::NEG_INFINITY);
    for gi in 0..grid {
        let gamma = std::f64::consts::PI * gi as f64 / grid as f64;
        for bi in 0..grid {
            let beta = std::f64::consts::PI * bi as f64 / grid as f64;
            let mut s = State::zero(n);
            s.apply_circuit(&ansatz_p1(n, edges, gamma, beta));
            let e = expected_cut(&s, edges);
            if e > best.2 {
                best = (gamma, beta, e);
            }
        }
    }
    best
}

/// The probability mass a state assigns to a set of accepted bitstrings.
pub fn success_probability(state: &State, accepted: &[u64]) -> f64 {
    let probs = state.probabilities();
    accepted.iter().map(|&x| probs[x as usize]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Vec<WeightedEdge> {
        vec![(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]
    }

    #[test]
    fn cut_values_on_triangle() {
        let e = triangle();
        assert_eq!(cut_value(&e, 0b000), 0.0);
        assert_eq!(cut_value(&e, 0b001), 2.0);
        assert_eq!(cut_value(&e, 0b011), 2.0);
    }

    #[test]
    fn max_cut_of_triangle_is_two() {
        let (best, opts) = max_cut(3, &triangle());
        assert_eq!(best, 2.0);
        assert_eq!(opts.len(), 6); // all non-trivial bipartitions
    }

    #[test]
    fn max_cut_respects_weights() {
        let (best, opts) = max_cut(2, &[(0, 1, 2.5)]);
        assert_eq!(best, 2.5);
        assert_eq!(opts, vec![0b01, 0b10]);
    }

    #[test]
    fn qaoa_beats_random_guessing_on_path() {
        // Path graph 0-1-2: max cut 2; uniform guessing averages 1.
        let edges = vec![(0, 1, 1.0), (1, 2, 1.0)];
        let (_, _, e) = optimize_p1(3, &edges, 12);
        assert!(e > 1.3, "QAOA expectation too low: {e}");
    }

    #[test]
    fn ansatz_structure() {
        let edges = vec![(0, 1, 1.0)];
        let c = ansatz_p1(2, &edges, 0.3, 0.7);
        let s = c.stats();
        assert_eq!(s.cnot, 2);
        assert_eq!(s.single, 2 + 1 + 2); // H×2, Rz×1, Rx×2
    }

    #[test]
    fn success_probability_sums_mass() {
        let mut s = State::zero(2);
        s.apply_circuit(&ansatz_p1(2, &[(0, 1, 1.0)], 0.5, 0.4));
        let (_, opts) = max_cut(2, &[(0, 1, 1.0)]);
        let p = success_probability(&s, &opts);
        assert!(p > 0.0 && p <= 1.0);
    }

    #[test]
    fn gamma_zero_beta_zero_is_uniform() {
        let edges = triangle();
        let mut s = State::zero(3);
        s.apply_circuit(&ansatz_p1(3, &edges, 0.0, 0.0));
        let e = expected_cut(&s, &edges);
        assert!((e - 1.5).abs() < 1e-9); // average cut of K3 is 1.5
    }
}
