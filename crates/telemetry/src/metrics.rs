//! The metrics registry: named counters, gauges, and log-bucketed
//! histograms with percentile summaries.
//!
//! Values are unit-agnostic `u64`s; by convention names carry their unit
//! as a suffix (`pass.schedule_ns`, `cache.entry_bytes`). Histograms
//! bucket by power of two, so percentiles are exact to within a factor of
//! two and the whole histogram is a fixed 65-slot array — recording is a
//! couple of arithmetic ops plus one lock, never an allocation.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket `i` holds values whose bit length is `i` (bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2–3, bucket 3 holds 4–7, …).
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold.
fn bucket_high(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The value at quantile `q` in `[0, 1]`, exact to within the 2×
    /// bucket resolution (clamped to the observed min/max so p0/p100 are
    /// exact). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// The summary exported into reports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            mean: if self.count == 0 {
                0
            } else {
                (self.sum / u128::from(self.count)) as u64
            },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// A histogram reduced to the numbers a report prints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (exact).
    pub min: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Arithmetic mean (exact, integer-truncated).
    pub mean: u64,
    /// Median (within 2× bucket resolution).
    pub p50: u64,
    /// 90th percentile (within 2× bucket resolution).
    pub p90: u64,
    /// 99th percentile (within 2× bucket resolution).
    pub p99: u64,
}

/// The mutable registry inside a [`crate::Collector`].
#[derive(Debug, Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    pub(crate) fn add(&self, name: &str, delta: u64) {
        let mut counters = crate::relock(&self.counters);
        match counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                counters.insert(name.to_string(), delta);
            }
        }
    }

    pub(crate) fn set_gauge(&self, name: &str, value: f64) {
        crate::relock(&self.gauges).insert(name.to_string(), value);
    }

    pub(crate) fn record(&self, name: &str, value: u64) {
        let mut histograms = crate::relock(&self.histograms);
        match histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                histograms.insert(name.to_string(), h);
            }
        }
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: crate::relock(&self.counters).clone(),
            gauges: crate::relock(&self.gauges).clone(),
            histograms: crate::relock(&self.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

/// A point-in-time copy of every metric in a collector, ordered by name.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Monotonic event counts (`cache.hit`, …).
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins values (`cache.resident_bytes`, …).
    pub gauges: BTreeMap<String, f64>,
    /// Latency/size distributions (`pass.schedule_ns`, …).
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Convenience: a counter's value, 0 when never bumped.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Convenience: a histogram's summary, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_summarizes_to_zero() {
        let h = Histogram::default();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Histogram::default();
        h.record(1000);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!((s.min, s.max, s.mean), (1000, 1000, 1000));
        // Percentiles clamp to the observed range, so one sample is exact.
        assert_eq!((s.p50, s.p90, s.p99), (1000, 1000, 1000));
    }

    #[test]
    fn quantiles_respect_bucket_resolution() {
        let mut h = Histogram::default();
        // 90 fast samples (~1µs) and 10 slow ones (~1ms).
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        // p50/p90 land in the fast bucket, p99 in the slow one; log
        // buckets guarantee 2×-accurate answers.
        assert!(s.p50 >= 1_000 && s.p50 < 2_048, "p50 = {}", s.p50);
        assert!(s.p90 >= 1_000 && s.p90 < 2_048, "p90 = {}", s.p90);
        assert!(s.p99 >= 524_288 && s.p99 <= 1_048_575, "p99 = {}", s.p99);
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn registry_snapshot_is_ordered_and_complete() {
        let r = Registry::default();
        r.add("b.count", 2);
        r.add("a.count", 1);
        r.add("b.count", 3);
        r.set_gauge("g", 1.5);
        r.record("h_ns", 100);
        r.record("h_ns", 200);
        let snap = r.snapshot();
        assert_eq!(snap.counter("b.count"), 5);
        assert_eq!(snap.counter("a.count"), 1);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauges["g"], 1.5);
        assert_eq!(snap.histogram("h_ns").unwrap().count, 2);
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.count", "b.count"]);
    }
}
