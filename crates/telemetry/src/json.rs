//! A minimal JSON writer and parser — the single place in the workspace
//! that knows how to escape strings and format values.
//!
//! Both telemetry exporters ([`crate::export`]) and the `phc` batch report
//! build [`Json`] trees and render them with [`Json::to_compact`] (one
//! line, for JSONL streams) or [`Json::to_pretty`] (indented, for report
//! files). The compile-service wire protocol additionally *reads* JSON
//! ([`Json::parse`]): a small recursive-descent parser with bounded
//! nesting depth, suitable for untrusted newline-delimited request lines.
//! There is deliberately no derive machinery — values are built and
//! inspected by hand.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON value tree. Object fields keep insertion order, so reports render
/// stably across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (`NaN`/`±∞` render as `null` — JSON has no spelling for them).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A float rounded to `digits` decimal places (report-friendly
    /// `wall_ms`-style numbers without 17-digit float noise).
    pub fn f64_rounded(v: f64, digits: u32) -> Json {
        let scale = 10f64.powi(digits as i32);
        Json::F64((v * scale).round() / scale)
    }

    /// An object from ordered `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    fn write_scalar(out: &mut String, v: &Json) -> bool {
        match v {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                // Rust's `Display` for finite floats is always a valid JSON
                // number (no exponent, round-trip shortest form).
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(_) | Json::Obj(_) => return false,
        }
        true
    }

    fn write_compact(&self, out: &mut String) {
        if Self::write_scalar(out, self) {
            return;
        }
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": ", escape(k));
                    v.write_compact(out);
                }
                out.push('}');
            }
            _ => unreachable!("scalars already written"),
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        if Self::write_scalar(out, self) {
            return;
        }
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}\"{}\": ", escape(k));
                    v.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
            _ => unreachable!("scalars already written"),
        }
    }

    /// Renders on one line (`{"k": v, ...}`) — the JSONL form.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders with two-space indentation — the report-file form.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Parses one JSON document (exactly one value; trailing non-whitespace
    /// is an error). Integers without fraction/exponent parse as
    /// [`Json::U64`]/[`Json::I64`], everything else numeric as
    /// [`Json::F64`]. Nesting is bounded, so adversarial input cannot
    /// overflow the stack.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonParseError`] with the byte offset of the first
    /// malformed construct.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::I64(n) => Some(n as f64),
            Json::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why [`Json::parse`] rejected a document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

/// Deep enough for every report/request shape the workspace emits, small
/// enough that hostile `[[[[…` input cannot exhaust the parser's stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonParseError> {
        if self.peek() != Some(byte) {
            return Err(self.err(message));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &'static str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            let nibble = match d {
                b'0'..=b'9' => u32::from(d - b'0'),
                b'a'..=b'f' => u32::from(d - b'a') + 10,
                b'A'..=b'F' => u32::from(d - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + nibble;
            self.pos += 1;
        }
        Ok(v)
    }

    fn unicode_escape(&mut self, out: &mut String) -> Result<(), JsonParseError> {
        let first = self.hex4()?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: must be followed by `\uDC00`–`\uDFFF`.
            if self.peek() != Some(b'\\') || self.bytes.get(self.pos + 1) != Some(&b'u') {
                return Err(self.err("unpaired surrogate in \\u escape"));
            }
            self.pos += 2;
            let second = self.hex4()?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("unpaired surrogate in \\u escape"));
            }
            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
        } else {
            first
        };
        match char::from_u32(code) {
            Some(c) => {
                out.push(c);
                Ok(())
            }
            None => Err(self.err("invalid \\u escape")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated string"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => self.unicode_escape(&mut out)?,
                        _ => {
                            self.pos -= 1;
                            return Err(self.err("invalid escape"));
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy a maximal run of plain bytes in one push. Input
                    // is a &str, so multi-byte UTF-8 runs stay valid.
                    let run_start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|c| c != b'"' && c != b'\\' && c >= 0x20)
                    {
                        self.pos += 1;
                    }
                    let run = &self.bytes[run_start..self.pos];
                    out.push_str(std::str::from_utf8(run).map_err(|_| JsonParseError {
                        offset: start,
                        message: "invalid UTF-8 in string",
                    })?);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number run");
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::F64(f)),
            _ => Err(JsonParseError {
                offset: start,
                message: "invalid number",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_every_special_class() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\r\ty"), "x\\n\\r\\ty");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("é✓"), "é✓");
    }

    #[test]
    fn compact_rendering_is_stable_and_valid() {
        let v = Json::obj([
            ("n", Json::U64(3)),
            ("neg", Json::I64(-7)),
            ("f", Json::F64(1.5)),
            ("nan", Json::F64(f64::NAN)),
            ("s", Json::str("a\"b")),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("o", Json::obj([("k", Json::str("v"))])),
        ]);
        assert_eq!(
            v.to_compact(),
            "{\"n\": 3, \"neg\": -7, \"f\": 1.5, \"nan\": null, \"s\": \"a\\\"b\", \
             \"a\": [true, null], \"o\": {\"k\": \"v\"}}"
        );
    }

    #[test]
    fn pretty_rendering_indents_and_terminates() {
        let v = Json::obj([
            (
                "jobs",
                Json::Arr(vec![Json::obj([("ok", Json::Bool(true))])]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.to_pretty();
        assert!(s.starts_with("{\n  \"jobs\": [\n    {\n      \"ok\": true\n"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn rounded_floats_render_short() {
        assert_eq!(Json::f64_rounded(0.123456, 3).to_compact(), "0.123");
        assert_eq!(Json::f64_rounded(2.0, 3).to_compact(), "2");
    }

    #[test]
    fn parser_round_trips_the_writer() {
        let v = Json::obj([
            ("n", Json::U64(3)),
            ("neg", Json::I64(-7)),
            ("f", Json::F64(1.5)),
            ("s", Json::str("a\"b\\c\né✓")),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("o", Json::obj([("k", Json::str("v"))])),
            ("empty_a", Json::Arr(vec![])),
            ("empty_o", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.to_compact()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn parser_accepts_all_scalar_forms() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(Json::parse("1.25").unwrap(), Json::F64(1.25));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(Json::parse("-2.5e-1").unwrap(), Json::F64(-0.25));
        // u64::MAX fits U64; one past it falls back to F64.
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
        assert!(matches!(
            Json::parse("18446744073709551616").unwrap(),
            Json::F64(_)
        ));
        assert_eq!(
            Json::parse("-9223372036854775808").unwrap(),
            Json::I64(i64::MIN)
        );
    }

    #[test]
    fn parser_decodes_escapes_and_surrogate_pairs() {
        assert_eq!(
            Json::parse(r#""\" \\ \/ \b \f \n \r \t""#).unwrap(),
            Json::str("\" \\ / \u{8} \u{c} \n \r \t")
        );
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::str("é"));
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("😀"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for (text, message) in [
            ("", "unexpected end of input"),
            ("tru", "invalid literal"),
            ("1 2", "trailing characters after the JSON value"),
            ("{\"k\" 1}", "expected `:` after object key"),
            ("[1 2]", "expected `,` or `]` in array"),
            ("\"abc", "unterminated string"),
            (r#""\x""#, "invalid escape"),
            (r#""\ud83d""#, "unpaired surrogate in \\u escape"),
            (r#""\uZZZZ""#, "invalid \\u escape"),
            ("\"a\nb\"", "control character in string"),
            ("1.2.3", "invalid number"),
            ("@", "unexpected character"),
        ] {
            let err = Json::parse(text).unwrap_err();
            assert_eq!(err.message, message, "input: {text:?}");
        }
    }

    #[test]
    fn parser_reports_the_error_offset() {
        let err = Json::parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert_eq!(format!("{err}"), "unexpected character at byte 4");
    }

    #[test]
    fn parser_bounds_nesting_depth() {
        let deep_ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = "[".repeat(100_000);
        assert_eq!(
            Json::parse(&too_deep).unwrap_err().message,
            "nesting too deep"
        );
    }

    #[test]
    fn accessors_read_back_typed_fields() {
        let v = Json::parse(r#"{"id": 7, "ok": true, "name": "bh_10", "wall": 1.5, "a": [1]}"#)
            .unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("bh_10"));
        assert_eq!(v.get("wall").and_then(Json::as_f64), Some(1.5));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("id"), None);
        assert_eq!(Json::I64(-1).as_u64(), None);
        assert_eq!(Json::I64(5).as_u64(), Some(5));
    }
}
