//! A minimal JSON writer — the single place in the workspace that knows
//! how to escape strings and format values.
//!
//! Both telemetry exporters ([`crate::export`]) and the `phc` batch report
//! build [`Json`] trees and render them with [`Json::to_compact`] (one
//! line, for JSONL streams) or [`Json::to_pretty`] (indented, for report
//! files). There is deliberately no parser and no derive machinery: the
//! workspace only ever *emits* JSON, and it emits it offline.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal (quotes,
/// backslashes, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON value tree. Object fields keep insertion order, so reports render
/// stably across runs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (`NaN`/`±∞` render as `null` — JSON has no spelling for them).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered fields.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A float rounded to `digits` decimal places (report-friendly
    /// `wall_ms`-style numbers without 17-digit float noise).
    pub fn f64_rounded(v: f64, digits: u32) -> Json {
        let scale = 10f64.powi(digits as i32);
        Json::F64((v * scale).round() / scale)
    }

    /// An object from ordered `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    fn write_scalar(out: &mut String, v: &Json) -> bool {
        match v {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(f) => {
                // Rust's `Display` for finite floats is always a valid JSON
                // number (no exponent, round-trip shortest form).
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(_) | Json::Obj(_) => return false,
        }
        true
    }

    fn write_compact(&self, out: &mut String) {
        if Self::write_scalar(out, self) {
            return;
        }
        match self {
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "\"{}\": ", escape(k));
                    v.write_compact(out);
                }
                out.push('}');
            }
            _ => unreachable!("scalars already written"),
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        if Self::write_scalar(out, self) {
            return;
        }
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}\"{}\": ", escape(k));
                    v.write_pretty(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                out.push_str(&close);
                out.push('}');
            }
            _ => unreachable!("scalars already written"),
        }
    }

    /// Renders on one line (`{"k": v, ...}`) — the JSONL form.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Renders with two-space indentation — the report-file form.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_every_special_class() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\n\r\ty"), "x\\n\\r\\ty");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("é✓"), "é✓");
    }

    #[test]
    fn compact_rendering_is_stable_and_valid() {
        let v = Json::obj([
            ("n", Json::U64(3)),
            ("neg", Json::I64(-7)),
            ("f", Json::F64(1.5)),
            ("nan", Json::F64(f64::NAN)),
            ("s", Json::str("a\"b")),
            ("a", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("o", Json::obj([("k", Json::str("v"))])),
        ]);
        assert_eq!(
            v.to_compact(),
            "{\"n\": 3, \"neg\": -7, \"f\": 1.5, \"nan\": null, \"s\": \"a\\\"b\", \
             \"a\": [true, null], \"o\": {\"k\": \"v\"}}"
        );
    }

    #[test]
    fn pretty_rendering_indents_and_terminates() {
        let v = Json::obj([
            (
                "jobs",
                Json::Arr(vec![Json::obj([("ok", Json::Bool(true))])]),
            ),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.to_pretty();
        assert!(s.starts_with("{\n  \"jobs\": [\n    {\n      \"ok\": true\n"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn rounded_floats_render_short() {
        assert_eq!(Json::f64_rounded(0.123456, 3).to_compact(), "0.123");
        assert_eq!(Json::f64_rounded(2.0, 3).to_compact(), "2");
    }
}
