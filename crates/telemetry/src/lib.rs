//! `ph_telemetry` — dependency-free tracing and metrics for the
//! Paulihedral compile path.
//!
//! Three pieces:
//!
//! 1. **Spans** ([`Telemetry::span`]): RAII begin/end event pairs with a
//!    monotonic timestamp (relative to the collector's epoch), a small
//!    integer thread id, and a parent link maintained by a thread-local
//!    span stack — so pass spans nest under job spans automatically.
//! 2. **Metrics** ([`metrics`]): named counters, gauges, and log-bucketed
//!    histograms with p50/p90/p99 summaries ([`MetricsSnapshot`]).
//! 3. **Exporters** ([`export`]): a JSONL event stream and Chrome
//!    `trace_event` JSON loadable in `chrome://tracing` / Perfetto, both
//!    built on the shared [`json`] writer.
//!
//! # Cost model
//!
//! A [`Telemetry`] handle is either *attached* to a [`Collector`] or
//! *disabled* (the default, and the global no-op sink). Every recording
//! method starts with an `Option` check, so the disabled hot path does no
//! locking, no allocation, and no timestamping beyond the one
//! `Instant::now` a span needs anyway to return its duration — verified
//! at effectively zero cost by the `telemetry` criterion bench.
//!
//! ```
//! use ph_telemetry::{Collector, Telemetry};
//! use std::sync::Arc;
//!
//! let collector = Arc::new(Collector::new());
//! let tel = Telemetry::attached(Arc::clone(&collector));
//! {
//!     let _job = tel.span("job:demo");
//!     let pass = tel.span("schedule"); // nests under job:demo
//!     tel.mark("cache.hit", &[("bytes", 128u64.into())]);
//!     let wall = pass.finish();
//!     tel.record_duration("pass.schedule_ns", wall);
//! }
//! let events = collector.events();
//! assert_eq!(events.len(), 5); // 2 begins, 1 instant, 2 ends
//! let trace = ph_telemetry::export::chrome_trace(&collector);
//! assert!(trace.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod metrics;

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

pub use metrics::{Histogram, HistogramSummary, MetricsSnapshot};

/// Recovers a poisoned lock: telemetry critical sections only append
/// complete values, so a panicking instrumented thread must never disable
/// observability for everyone else.
pub(crate) fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A span/instant attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (counts, byte sizes, microseconds).
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> ArgValue {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> ArgValue {
        ArgValue::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// What kind of event a record is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Begin,
    /// A span closed.
    End,
    /// A point-in-time event (cache hits, evictions, …).
    Instant,
}

/// One telemetry record.
#[derive(Clone, Debug)]
pub struct Event {
    /// Span or event name (`schedule`, `job:UCCSD-8`, `cache.hit`, …).
    pub name: Cow<'static, str>,
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Monotonic time since the collector's epoch.
    pub ts: Duration,
    /// Small integer thread id (process-wide, first-use order).
    pub tid: u64,
    /// Span id (`Begin`/`End` pairs share it; 0 for instants).
    pub id: u64,
    /// Enclosing span on the same thread at record time, if any.
    pub parent: Option<u64>,
    /// Attributes (`bytes`, `queue_wait_us`, …).
    pub args: Vec<(&'static str, ArgValue)>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// The stack of open span ids on this thread (parent links).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// This thread's small integer id (assigned on first use).
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

fn current_parent() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// An in-memory event buffer plus a metrics registry. Shared behind an
/// `Arc`: every [`Telemetry`] handle attached to it appends to the same
/// stream, and the exporters read it back out.
#[derive(Debug)]
pub struct Collector {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
    next_span: AtomicU64,
    registry: metrics::Registry,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// An empty collector; its epoch (timestamp zero) is now.
    pub fn new() -> Collector {
        Collector {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            next_span: AtomicU64::new(1),
            registry: metrics::Registry::default(),
        }
    }

    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn push(&self, event: Event) {
        relock(&self.events).push(event);
    }

    /// A copy of every event recorded so far, in record order.
    pub fn events(&self) -> Vec<Event> {
        relock(&self.events).clone()
    }

    /// Number of events recorded so far.
    pub fn event_count(&self) -> usize {
        relock(&self.events).len()
    }

    /// A point-in-time copy of every metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// A cheap, cloneable recording handle: either attached to a
/// [`Collector`] or disabled (a no-op sink).
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    collector: Option<Arc<Collector>>,
}

impl Telemetry {
    /// The no-op handle — every recording method returns immediately.
    pub fn disabled() -> Telemetry {
        Telemetry { collector: None }
    }

    /// A handle that records into `collector`.
    pub fn attached(collector: Arc<Collector>) -> Telemetry {
        Telemetry {
            collector: Some(collector),
        }
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.collector.is_some()
    }

    /// The attached collector, if any.
    pub fn collector(&self) -> Option<&Arc<Collector>> {
        self.collector.as_ref()
    }

    /// Opens a span. The returned guard records the end event when dropped
    /// (or via [`Span::finish`], which also returns the duration). Close
    /// spans on the thread that opened them — parent links come from a
    /// thread-local stack.
    pub fn span(&self, name: impl Into<Cow<'static, str>>) -> Span {
        self.span_with(name, Vec::new())
    }

    /// Opens a span with attributes on its begin event.
    pub fn span_with(
        &self,
        name: impl Into<Cow<'static, str>>,
        args: Vec<(&'static str, ArgValue)>,
    ) -> Span {
        let start = Instant::now();
        let Some(collector) = &self.collector else {
            return Span { inner: None, start };
        };
        let name = name.into();
        let id = collector.next_span.fetch_add(1, Ordering::Relaxed);
        collector.push(Event {
            name: name.clone(),
            kind: EventKind::Begin,
            ts: collector.now(),
            tid: thread_id(),
            id,
            parent: current_parent(),
            args,
        });
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Span {
            inner: Some(SpanInner {
                collector: Arc::clone(collector),
                name,
                id,
            }),
            start,
        }
    }

    /// Records a point-in-time event.
    pub fn instant(&self, name: &'static str, args: &[(&'static str, ArgValue)]) {
        let Some(collector) = &self.collector else {
            return;
        };
        collector.push(Event {
            name: Cow::Borrowed(name),
            kind: EventKind::Instant,
            ts: collector.now(),
            tid: thread_id(),
            id: 0,
            parent: current_parent(),
            args: args.to_vec(),
        });
    }

    /// Records an instant event *and* bumps the same-named counter by one
    /// — the shape cache events use, so trace event counts and metric
    /// counters agree by construction.
    pub fn mark(&self, name: &'static str, args: &[(&'static str, ArgValue)]) {
        if self.collector.is_none() {
            return;
        }
        self.instant(name, args);
        self.counter(name, 1);
    }

    /// Adds `delta` to a named counter.
    pub fn counter(&self, name: &str, delta: u64) {
        if let Some(collector) = &self.collector {
            collector.registry.add(name, delta);
        }
    }

    /// Sets a named gauge.
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(collector) = &self.collector {
            collector.registry.set_gauge(name, value);
        }
    }

    /// Records a sample into a named histogram.
    pub fn record(&self, name: &str, value: u64) {
        if let Some(collector) = &self.collector {
            collector.registry.record(name, value);
        }
    }

    /// Records a duration (as nanoseconds, saturating) into a histogram.
    pub fn record_duration(&self, name: &str, d: Duration) {
        if self.collector.is_some() {
            self.record(name, u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

#[derive(Debug)]
struct SpanInner {
    collector: Arc<Collector>,
    name: Cow<'static, str>,
    id: u64,
}

/// An open span. Ends (recording the end event) on drop; [`Span::finish`]
/// ends it explicitly and returns the measured wall time — so callers that
/// already needed an `Instant` pair get it from the span instead.
#[derive(Debug)]
pub struct Span {
    inner: Option<SpanInner>,
    start: Instant,
}

impl Span {
    /// Time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span and returns its wall time. (Dropping the span ends it
    /// too; `finish` just hands the duration back.)
    pub fn finish(mut self) -> Duration {
        let wall = self.start.elapsed();
        self.end();
        wall
    }

    fn end(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        // Pop by id, not blindly: a span moved across threads (or dropped
        // out of order) must not corrupt another span's parent links.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == inner.id) {
                stack.remove(pos);
            }
        });
        inner.collector.push(Event {
            name: inner.name,
            kind: EventKind::End,
            ts: inner.collector.now(),
            tid: thread_id(),
            id: inner.id,
            parent: None,
            args: Vec::new(),
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.end();
    }
}

static GLOBAL: OnceLock<Mutex<Telemetry>> = OnceLock::new();

fn global_slot() -> &'static Mutex<Telemetry> {
    GLOBAL.get_or_init(|| Mutex::new(Telemetry::disabled()))
}

/// Installs a process-global handle (returned by [`global`]). The default
/// global sink is the no-op [`Telemetry::disabled`]; nothing in the engine
/// reads the global implicitly — it exists for binaries that want one
/// ambient collector without threading handles through their own plumbing.
pub fn install_global(telemetry: Telemetry) {
    *relock(global_slot()) = telemetry;
}

/// The current global handle (disabled unless [`install_global`] ran).
pub fn global() -> Telemetry {
    relock(global_slot()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_but_still_times() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        let span = tel.span("x");
        std::thread::sleep(Duration::from_millis(1));
        let wall = span.finish();
        assert!(wall >= Duration::from_millis(1));
        tel.mark("cache.hit", &[]);
        tel.record_duration("h_ns", Duration::from_micros(5));
        // Nothing observable: no collector exists to hold anything.
        assert!(tel.collector().is_none());
    }

    #[test]
    fn spans_nest_via_the_thread_local_stack() {
        let collector = Arc::new(Collector::new());
        let tel = Telemetry::attached(Arc::clone(&collector));
        let outer = tel.span("outer");
        let inner = tel.span("inner");
        tel.instant("point", &[]);
        drop(inner);
        drop(outer);
        let events = collector.events();
        assert_eq!(events.len(), 5);
        let begin = |name: &str| {
            events
                .iter()
                .find(|e| e.name == name && e.kind == EventKind::Begin)
                .unwrap()
        };
        assert_eq!(begin("outer").parent, None);
        assert_eq!(begin("inner").parent, Some(begin("outer").id));
        let point = events
            .iter()
            .find(|e| e.kind == EventKind::Instant)
            .unwrap();
        assert_eq!(point.parent, Some(begin("inner").id));
        // Ends arrive innermost-first, timestamps monotone.
        let ends: Vec<&Event> = events.iter().filter(|e| e.kind == EventKind::End).collect();
        assert_eq!(ends[0].name, "inner");
        assert_eq!(ends[1].name, "outer");
        assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn finish_returns_wall_time_and_ends_once() {
        let collector = Arc::new(Collector::new());
        let tel = Telemetry::attached(Arc::clone(&collector));
        let span = tel.span("s");
        let wall = span.finish();
        assert!(wall < Duration::from_secs(1));
        // finish() consumed the span; exactly one end event exists.
        let ends = collector
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::End)
            .count();
        assert_eq!(ends, 1);
    }

    #[test]
    fn mark_keeps_events_and_counters_in_lockstep() {
        let collector = Arc::new(Collector::new());
        let tel = Telemetry::attached(Arc::clone(&collector));
        for _ in 0..3 {
            tel.mark("cache.hit", &[("bytes", 64u64.into())]);
        }
        tel.mark("cache.miss", &[]);
        let events = collector.events();
        let hits = events.iter().filter(|e| e.name == "cache.hit").count();
        let snap = collector.metrics();
        assert_eq!(hits as u64, snap.counter("cache.hit"));
        assert_eq!(snap.counter("cache.miss"), 1);
    }

    #[test]
    fn threads_get_distinct_small_ids() {
        let a = thread_id();
        let b = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, b);
        assert_eq!(a, thread_id(), "id is stable within a thread");
    }

    #[test]
    fn spans_on_different_threads_do_not_share_parents() {
        let collector = Arc::new(Collector::new());
        let tel = Telemetry::attached(Arc::clone(&collector));
        let _outer = tel.span("outer");
        let tel2 = tel.clone();
        std::thread::spawn(move || {
            let s = tel2.span("worker");
            drop(s);
        })
        .join()
        .unwrap();
        let events = collector.events();
        let worker = events
            .iter()
            .find(|e| e.name == "worker" && e.kind == EventKind::Begin)
            .unwrap();
        assert_eq!(worker.parent, None, "other thread's stack must be empty");
    }

    #[test]
    fn global_defaults_to_disabled_and_accepts_installs() {
        // Note: the global is process-wide; this test only ever installs a
        // disabled handle so parallel tests cannot observe a difference.
        assert!(!global().is_enabled() || global().is_enabled());
        install_global(Telemetry::disabled());
        assert!(!global().is_enabled());
    }
}
