//! Exporters: Chrome `trace_event` JSON and a JSONL event/metric stream.
//!
//! * [`chrome_trace`] produces a JSON object with a `traceEvents` array in
//!   the Chrome trace-event format — open it at `chrome://tracing` or
//!   <https://ui.perfetto.dev>. Spans become `B`/`E` pairs on their thread
//!   track (so pass spans nest under job spans), instants become `i`
//!   events.
//! * [`jsonl`] produces one self-describing JSON object per line: every
//!   event (`span_begin`/`span_end`/`instant`) followed by the final
//!   metric values (`counter`/`gauge`/`histogram`). Each line parses
//!   independently — `python3 -m json.tool` per line, `jq`, or a log
//!   shipper all work.

use crate::json::Json;
use crate::{ArgValue, Collector, Event, EventKind, MetricsSnapshot};

fn arg_json(v: &ArgValue) -> Json {
    match v {
        ArgValue::U64(n) => Json::U64(*n),
        ArgValue::F64(f) => Json::F64(*f),
        ArgValue::Str(s) => Json::str(s.clone()),
    }
}

fn args_obj(args: &[(&'static str, ArgValue)]) -> Json {
    Json::obj(args.iter().map(|(k, v)| (*k, arg_json(v))))
}

/// Microsecond timestamp with sub-µs fraction, as the trace format wants.
fn ts_us(e: &Event) -> Json {
    Json::f64_rounded(e.ts.as_nanos() as f64 / 1e3, 3)
}

/// Renders all events of `collector` as Chrome trace-event JSON.
pub fn chrome_trace(collector: &Collector) -> String {
    let pid = u64::from(std::process::id());
    let mut trace_events: Vec<Json> = Vec::new();
    for e in collector.events() {
        let ph = match e.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        let mut fields = vec![
            ("name".to_string(), Json::str(e.name.as_ref())),
            ("cat".to_string(), Json::str("compile")),
            ("ph".to_string(), Json::str(ph)),
            ("ts".to_string(), ts_us(&e)),
            ("pid".to_string(), Json::U64(pid)),
            ("tid".to_string(), Json::U64(e.tid)),
        ];
        if e.kind == EventKind::Instant {
            // Thread-scoped instant marker.
            fields.push(("s".to_string(), Json::str("t")));
        }
        if !e.args.is_empty() {
            fields.push(("args".to_string(), args_obj(&e.args)));
        }
        trace_events.push(Json::Obj(fields));
    }
    let mut out = Json::obj([
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
    .to_pretty();
    out.push('\n');
    out
}

fn event_line(e: &Event) -> Json {
    let kind = match e.kind {
        EventKind::Begin => "span_begin",
        EventKind::End => "span_end",
        EventKind::Instant => "instant",
    };
    let mut fields = vec![
        ("type".to_string(), Json::str(kind)),
        ("name".to_string(), Json::str(e.name.as_ref())),
        ("ts_us".to_string(), ts_us(e)),
        ("tid".to_string(), Json::U64(e.tid)),
    ];
    if e.id != 0 {
        fields.push(("id".to_string(), Json::U64(e.id)));
    }
    if let Some(parent) = e.parent {
        fields.push(("parent".to_string(), Json::U64(parent)));
    }
    if !e.args.is_empty() {
        fields.push(("args".to_string(), args_obj(&e.args)));
    }
    Json::Obj(fields)
}

/// The metric lines of [`jsonl`] (also usable on their own when only the
/// final aggregates matter).
pub fn metrics_jsonl(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        out.push_str(
            &Json::obj([
                ("type", Json::str("counter")),
                ("name", Json::str(name.clone())),
                ("value", Json::U64(*value)),
            ])
            .to_compact(),
        );
        out.push('\n');
    }
    for (name, value) in &snapshot.gauges {
        out.push_str(
            &Json::obj([
                ("type", Json::str("gauge")),
                ("name", Json::str(name.clone())),
                ("value", Json::F64(*value)),
            ])
            .to_compact(),
        );
        out.push('\n');
    }
    for (name, h) in &snapshot.histograms {
        out.push_str(
            &Json::obj([
                ("type", Json::str("histogram")),
                ("name", Json::str(name.clone())),
                ("count", Json::U64(h.count)),
                ("min", Json::U64(h.min)),
                ("max", Json::U64(h.max)),
                ("mean", Json::U64(h.mean)),
                ("p50", Json::U64(h.p50)),
                ("p90", Json::U64(h.p90)),
                ("p99", Json::U64(h.p99)),
            ])
            .to_compact(),
        );
        out.push('\n');
    }
    out
}

/// Renders the full event stream plus the final metrics as JSONL (one
/// JSON object per line).
pub fn jsonl(collector: &Collector) -> String {
    let mut out = String::new();
    for e in collector.events() {
        out.push_str(&event_line(&e).to_compact());
        out.push('\n');
    }
    out.push_str(&metrics_jsonl(&collector.metrics()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;
    use std::sync::Arc;

    fn sample_collector() -> Arc<Collector> {
        let collector = Arc::new(Collector::new());
        let tel = Telemetry::attached(Arc::clone(&collector));
        let job = tel.span_with("job:demo", vec![("queue_wait_us", 12u64.into())]);
        let pass = tel.span("schedule");
        tel.mark("cache.miss", &[]);
        tel.record_duration("pass.schedule_ns", pass.finish());
        tel.mark("cache.hit", &[("bytes", 640u64.into())]);
        drop(job);
        tel.gauge("cache.resident_bytes", 640.0);
        collector
    }

    #[test]
    fn chrome_trace_has_matched_begin_end_pairs() {
        let collector = sample_collector();
        let trace = chrome_trace(&collector);
        assert!(trace.starts_with('{'));
        assert!(trace.contains("\"traceEvents\""));
        assert_eq!(trace.matches("\"ph\": \"B\"").count(), 2);
        assert_eq!(trace.matches("\"ph\": \"E\"").count(), 2);
        assert_eq!(trace.matches("\"ph\": \"i\"").count(), 2);
        assert!(trace.contains("\"name\": \"job:demo\""));
        assert!(trace.contains("\"queue_wait_us\": 12"));
    }

    #[test]
    fn jsonl_lines_are_independent_objects() {
        let collector = sample_collector();
        let stream = jsonl(&collector);
        let lines: Vec<&str> = stream.lines().collect();
        // 2 begins + 2 ends + 2 instants + counters/gauge/histogram lines.
        assert!(lines.len() >= 9, "got {} lines", lines.len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(stream.contains("\"type\": \"span_begin\""));
        assert!(stream.contains("\"type\": \"histogram\""));
        assert!(stream.contains("\"type\": \"gauge\""));
        let hit_events = lines
            .iter()
            .filter(|l| l.contains("\"type\": \"instant\"") && l.contains("\"cache.hit\""))
            .count();
        let counter_line = lines
            .iter()
            .find(|l| l.contains("\"type\": \"counter\"") && l.contains("\"cache.hit\""))
            .unwrap();
        assert!(counter_line.contains(&format!("\"value\": {hit_events}")));
    }
}
