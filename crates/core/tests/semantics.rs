//! Semantics preservation: every compiled circuit must implement the exact
//! operator `Π exp(iθ_j P_j)` in its emission order (up to a global phase,
//! and up to the tracked layout permutation on the SC backend).
//!
//! This is the formal guarantee the Pauli IR gives (paper §3.2): all
//! reorderings the compiler performs are justified by commutative matrix
//! addition, so correctness reduces to "the circuit matches the product in
//! the order the compiler chose".

use pauli::{Pauli, PauliString, PauliTerm};
use paulihedral::ir::{Parameter, PauliBlock, PauliIR};
use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use qdevice::devices;
use qsim::trotter::exp_product;
use qsim::unitary::{circuit_unitary, equal_up_to_phase, routed_circuit_implements};

fn random_program(seed: u64, n: usize, blocks: usize, max_strings: usize) -> PauliIR {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ir = PauliIR::new(n);
    for b in 0..blocks {
        let k = 1 + (next() as usize) % max_strings;
        let mut terms = Vec::new();
        for _ in 0..k {
            let mut s = PauliString::identity(n);
            let mut any = false;
            for q in 0..n {
                match next() % 5 {
                    0 => {}
                    1 => {}
                    2 => {
                        s.set(q, Pauli::X);
                        any = true;
                    }
                    3 => {
                        s.set(q, Pauli::Y);
                        any = true;
                    }
                    _ => {
                        s.set(q, Pauli::Z);
                        any = true;
                    }
                }
            }
            if !any {
                s.set((next() as usize) % n, Pauli::Z);
            }
            let w = ((next() % 200) as f64 - 100.0) / 100.0;
            terms.push(PauliTerm::new(s, if w == 0.0 { 0.5 } else { w }));
        }
        let param = if b % 2 == 0 {
            Parameter::time(0.3)
        } else {
            Parameter::named(format!("t{b}"), 0.17 + 0.1 * b as f64)
        };
        ir.push_block(PauliBlock::new(terms, param));
    }
    ir
}

fn expected_unitary(ir: &PauliIR, emitted: &[(PauliString, f64)]) -> qsim::unitary::Columns {
    // Check the emission covers exactly the program's non-identity strings.
    let want: usize = ir
        .blocks()
        .iter()
        .flat_map(|b| &b.terms)
        .filter(|t| !t.string.is_identity())
        .count();
    assert_eq!(emitted.len(), want, "emission must cover all strings");
    exp_product(ir.num_qubits(), emitted.iter().map(|(s, t)| (s, *t)))
}

#[test]
fn ft_backend_preserves_semantics_gco() {
    for seed in 0..12 {
        let ir = random_program(seed, 4, 4, 3);
        let out = compile(
            &ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::GateCount,
                backend: Backend::FaultTolerant,
            },
        );
        let expected = expected_unitary(&ir, &out.emitted);
        let got = circuit_unitary(&out.circuit);
        assert!(
            equal_up_to_phase(&got, &expected, 1e-8),
            "seed {seed}: FT/GCO circuit deviates from exp-product"
        );
    }
}

#[test]
fn ft_backend_preserves_semantics_depth() {
    for seed in 100..112 {
        let ir = random_program(seed, 5, 5, 2);
        let out = compile(
            &ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::FaultTolerant,
            },
        );
        let expected = expected_unitary(&ir, &out.emitted);
        let got = circuit_unitary(&out.circuit);
        assert!(
            equal_up_to_phase(&got, &expected, 1e-8),
            "seed {seed}: FT/DO circuit deviates from exp-product"
        );
    }
}

#[test]
fn sc_backend_preserves_semantics_on_linear_device() {
    let device = devices::linear(6);
    for seed in 200..210 {
        let ir = random_program(seed, 4, 3, 2);
        let out = compile(
            &ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting {
                    device: &device,
                    noise: None,
                },
            },
        );
        assert!(out
            .circuit
            .respects_connectivity(|a, b| device.has_edge(a, b)));
        let expected = expected_unitary(&ir, &out.emitted);
        assert!(
            routed_circuit_implements(
                &out.circuit,
                &expected,
                out.initial_l2p.as_ref().unwrap(),
                out.final_l2p.as_ref().unwrap(),
                1e-8,
            ),
            "seed {seed}: SC circuit deviates from exp-product"
        );
    }
}

#[test]
fn sc_backend_preserves_semantics_on_grid_device() {
    let device = devices::grid(2, 3);
    for seed in 300..308 {
        let ir = random_program(seed, 5, 4, 2);
        let out = compile(
            &ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::GateCount,
                backend: Backend::Superconducting {
                    device: &device,
                    noise: None,
                },
            },
        );
        assert!(out
            .circuit
            .respects_connectivity(|a, b| device.has_edge(a, b)));
        let expected = expected_unitary(&ir, &out.emitted);
        assert!(
            routed_circuit_implements(
                &out.circuit,
                &expected,
                out.initial_l2p.as_ref().unwrap(),
                out.final_l2p.as_ref().unwrap(),
                1e-8,
            ),
            "seed {seed}: SC circuit deviates from exp-product"
        );
    }
}

#[test]
fn balanced_gadget_matches_exponential() {
    use paulihedral::synth::chain::emit_gadget_balanced;
    for s in ["ZZZZ", "XYZX", "ZIYX", "YYYY"] {
        let p: PauliString = s.parse().unwrap();
        let mut c = qcircuit::Circuit::new(4);
        emit_gadget_balanced(&mut c, &p, 0.37, &p.support());
        let expected = exp_product(4, [(&p, 0.37)]);
        assert!(
            equal_up_to_phase(&circuit_unitary(&c), &expected, 1e-10),
            "balanced gadget for {s} deviates"
        );
    }
}

#[test]
fn single_gadget_matches_exponential_for_all_operators() {
    // Exhaustive 2-qubit check over all 15 non-identity strings.
    for a in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
        for b in [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z] {
            if a == Pauli::I && b == Pauli::I {
                continue;
            }
            let mut s = PauliString::identity(2);
            s.set(0, a);
            s.set(1, b);
            let mut ir = PauliIR::new(2);
            ir.push_block(PauliBlock::single(s.clone(), 0.7, Parameter::time(0.9)));
            let out = compile(
                &ir,
                &CompileOptions {
                    intra_threads: 1,
                    scheduler: Scheduler::GateCount,
                    backend: Backend::FaultTolerant,
                },
            );
            let expected = exp_product(2, [(&s, 0.7 * 0.9)]);
            assert!(
                equal_up_to_phase(&circuit_unitary(&out.circuit), &expected, 1e-10),
                "gadget for {s} deviates"
            );
        }
    }
}
