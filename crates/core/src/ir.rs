//! The Pauli IR: blocks, programs, and their structural queries.
//!
//! Syntax (paper Fig. 5): a *program* is a list of *pauli_blocks*; each
//! block is a list of weighted Pauli strings sharing one real parameter.
//! Semantics (Fig. 7) is the Hermitian operator
//! `Σ_blocks parameter · Σ_strings weight · P` — commutative matrix
//! addition, which licenses every reordering the scheduler performs while
//! keeping strings of one block together.

use std::fmt;

use pauli::{PauliString, PauliTerm};

/// The real-valued parameter shared by all strings of a block: a Trotter
/// step `Δt` or a variational parameter (`θ`, `γ`, …).
#[derive(Clone, Debug, PartialEq)]
pub struct Parameter {
    /// Display name (`None` for anonymous time steps).
    pub name: Option<String>,
    /// The numeric value used when lowering to rotation angles.
    pub value: f64,
}

impl Parameter {
    /// An anonymous numeric parameter (e.g. a Trotter `Δt`).
    pub fn time(value: f64) -> Parameter {
        Parameter { name: None, value }
    }

    /// A named variational parameter with its current value.
    pub fn named(name: impl Into<String>, value: f64) -> Parameter {
        Parameter {
            name: Some(name.into()),
            value,
        }
    }
}

impl fmt::Display for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}"),
            None => write!(f, "{}", self.value),
        }
    }
}

/// One `pauli_block`: weighted Pauli strings that must stay together
/// (parameter sharing, symmetry preservation, error suppression — §3.2),
/// plus the shared parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct PauliBlock {
    /// The weighted strings of the block.
    pub terms: Vec<PauliTerm>,
    /// The shared parameter.
    pub parameter: Parameter,
}

impl PauliBlock {
    /// Creates a block.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty or the strings disagree on qubit count.
    pub fn new(terms: Vec<PauliTerm>, parameter: Parameter) -> PauliBlock {
        assert!(!terms.is_empty(), "a pauli_block needs at least one string");
        let n = terms[0].num_qubits();
        assert!(
            terms.iter().all(|t| t.num_qubits() == n),
            "all strings in a block must have the same qubit count"
        );
        PauliBlock { terms, parameter }
    }

    /// A block holding a single weighted string.
    pub fn single(string: PauliString, weight: f64, parameter: Parameter) -> PauliBlock {
        PauliBlock::new(vec![PauliTerm::new(string, weight)], parameter)
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.terms[0].num_qubits()
    }

    /// Qubits with a non-identity operator in **at least one** string
    /// ("active qubits", §5.2), ascending.
    pub fn active_qubits(&self) -> Vec<usize> {
        let n = self.num_qubits();
        (0..n)
            .filter(|&q| self.terms.iter().any(|t| t.string.is_active(q)))
            .collect()
    }

    /// The *active length*: the number of active qubits (Alg. 1's block
    /// size measure). Word-parallel — a popcount over the active mask
    /// rather than a per-qubit scan.
    pub fn active_len(&self) -> usize {
        self.active_mask()
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Qubits with a non-identity operator in **every** string (the "core
    /// qubit list" of Alg. 3).
    pub fn core_qubits(&self) -> Vec<usize> {
        let n = self.num_qubits();
        (0..n)
            .filter(|&q| self.terms.iter().all(|t| t.string.is_active(q)))
            .collect()
    }

    /// Whether this block's active qubits are disjoint from another's.
    pub fn disjoint_with(&self, other: &PauliBlock) -> bool {
        let mine = self.active_mask();
        let theirs = other.active_mask();
        mine.iter().zip(&theirs).all(|(a, b)| a & b == 0)
    }

    /// Word-packed mask of active qubits.
    pub fn active_mask(&self) -> Vec<u64> {
        let words = self.num_qubits().div_ceil(64);
        let mut mask = vec![0u64; words];
        for t in &self.terms {
            for (w, m) in mask.iter_mut().enumerate() {
                *m |= t.string.x_words()[w] | t.string.z_words()[w];
            }
        }
        mask
    }

    /// Sorts the strings of the block into the paper's lexicographic order
    /// (`X < Y < Z < I` from the top qubit down, §4.1).
    pub fn sort_terms_lex(&mut self) {
        self.terms.sort_by(|a, b| a.string.lex_cmp(&b.string));
    }

    /// The representative string (the first one; callers sort first when
    /// the representative must be the lexicographic minimum).
    pub fn representative(&self) -> &PauliString {
        &self.terms[0].string
    }

    /// Chain-synthesis depth estimate: `Σ_strings (2·(support−1) + 1)`,
    /// skipping identity strings. Used by the padding budget of Alg. 1.
    pub fn depth_estimate(&self) -> usize {
        self.terms
            .iter()
            .map(|t| {
                let w = t.string.weight();
                if w == 0 {
                    0
                } else {
                    2 * (w - 1) + 1
                }
            })
            .sum()
    }

    /// The rotation exponent `θ = weight · parameter` of term `i`: the
    /// compiled gadget implements `exp(iθP)`.
    pub fn theta(&self, i: usize) -> f64 {
        self.terms[i].weight * self.parameter.value
    }
}

impl fmt::Display for PauliBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for t in &self.terms {
            write!(f, "{t}, ")?;
        }
        write!(f, "{}}}", self.parameter)
    }
}

/// A Pauli IR *program*: an ordered list of blocks on `n` qubits.
///
/// # Example
///
/// ```
/// use paulihedral::ir::{Parameter, PauliBlock, PauliIR};
/// use pauli::PauliTerm;
///
/// let mut prog = PauliIR::new(3);
/// prog.push_block(PauliBlock::new(
///     vec![PauliTerm::new("IZZ".parse()?, 1.0)],
///     Parameter::named("gamma", 0.4),
/// ));
/// assert_eq!(prog.num_blocks(), 1);
/// assert_eq!(prog.total_strings(), 1);
/// # Ok::<(), pauli::ParsePauliError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct PauliIR {
    n: usize,
    blocks: Vec<PauliBlock>,
}

impl PauliIR {
    /// An empty program on `n` qubits.
    pub fn new(n: usize) -> PauliIR {
        PauliIR {
            n,
            blocks: Vec::new(),
        }
    }

    /// Builds the Hamiltonian-simulation form: every term becomes its own
    /// single-string block sharing the Trotter step `dt` (Fig. 6(a)).
    pub fn from_hamiltonian(n: usize, terms: Vec<PauliTerm>, dt: f64) -> PauliIR {
        let mut ir = PauliIR::new(n);
        for t in terms {
            ir.push_block(PauliBlock::new(vec![t], Parameter::time(dt)));
        }
        ir
    }

    /// Builds the one-block form used by QAOA cost Hamiltonians: all terms
    /// share a single parameter (Fig. 6(c)).
    pub fn single_block(n: usize, terms: Vec<PauliTerm>, parameter: Parameter) -> PauliIR {
        let mut ir = PauliIR::new(n);
        ir.push_block(PauliBlock::new(terms, parameter));
        ir
    }

    /// Appends a block.
    ///
    /// # Panics
    ///
    /// Panics if the block's qubit count differs from the program's.
    pub fn push_block(&mut self, block: PauliBlock) {
        assert_eq!(block.num_qubits(), self.n, "block qubit count mismatch");
        self.blocks.push(block);
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The blocks, in program order.
    pub fn blocks(&self) -> &[PauliBlock] {
        &self.blocks
    }

    /// The number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The total number of Pauli strings across blocks (the paper's
    /// "Pauli #").
    pub fn total_strings(&self) -> usize {
        self.blocks.iter().map(|b| b.terms.len()).sum()
    }
}

impl fmt::Display for PauliIR {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.blocks {
            writeln!(f, "{b};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(s: &str, w: f64) -> PauliTerm {
        PauliTerm::new(s.parse().unwrap(), w)
    }

    #[test]
    fn active_and_core_qubits() {
        let b = PauliBlock::new(
            vec![term("IIXY", 0.5), term("IXYI", -0.5)],
            Parameter::named("t1", 1.0),
        );
        assert_eq!(b.active_qubits(), vec![0, 1, 2]);
        assert_eq!(b.active_len(), 3);
        assert_eq!(b.core_qubits(), vec![1]);
    }

    #[test]
    fn disjointness() {
        let a = PauliBlock::single("XXII".parse().unwrap(), 1.0, Parameter::time(1.0));
        let b = PauliBlock::single("IIZZ".parse().unwrap(), 1.0, Parameter::time(1.0));
        let c = PauliBlock::single("IZZI".parse().unwrap(), 1.0, Parameter::time(1.0));
        assert!(a.disjoint_with(&b));
        assert!(!b.disjoint_with(&c));
    }

    #[test]
    fn lex_sort_within_block() {
        let mut b = PauliBlock::new(
            vec![term("ZZII", 1.0), term("XYII", 1.0), term("YXII", 1.0)],
            Parameter::time(1.0),
        );
        b.sort_terms_lex();
        let order: Vec<String> = b.terms.iter().map(|t| t.string.to_string()).collect();
        assert_eq!(order, vec!["XYII", "YXII", "ZZII"]);
        assert_eq!(b.representative().to_string(), "XYII");
    }

    #[test]
    fn depth_estimate_matches_chain_synthesis() {
        // support 3 → 2·2+1 = 5; support 1 → 1.
        let b = PauliBlock::new(
            vec![term("ZZZ", 1.0), term("IIX", 1.0)],
            Parameter::time(1.0),
        );
        assert_eq!(b.depth_estimate(), 6);
    }

    #[test]
    fn theta_combines_weight_and_parameter() {
        let b = PauliBlock::new(vec![term("ZZ", 0.25)], Parameter::named("g", 2.0));
        assert_eq!(b.theta(0), 0.5);
    }

    #[test]
    fn program_construction_forms() {
        let h = PauliIR::from_hamiltonian(2, vec![term("ZZ", 1.0), term("XI", 0.5)], 0.1);
        assert_eq!(h.num_blocks(), 2);
        let q = PauliIR::single_block(
            2,
            vec![term("ZZ", 1.0), term("XI", 0.5)],
            Parameter::named("gamma", 0.3),
        );
        assert_eq!(q.num_blocks(), 1);
        assert_eq!(q.total_strings(), 2);
    }

    #[test]
    #[should_panic(expected = "qubit count mismatch")]
    fn rejects_mismatched_blocks() {
        let mut ir = PauliIR::new(3);
        ir.push_block(PauliBlock::single(
            "ZZ".parse().unwrap(),
            1.0,
            Parameter::time(1.0),
        ));
    }

    #[test]
    #[should_panic(expected = "at least one string")]
    fn rejects_empty_blocks() {
        PauliBlock::new(vec![], Parameter::time(1.0));
    }
}
