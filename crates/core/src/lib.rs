//! Paulihedral: a block-wise compiler optimization framework for quantum
//! simulation kernels (reproduction of Li et al., ASPLOS 2022).
//!
//! A *quantum simulation kernel* implements `exp(iHt)` for a Hamiltonian
//! expanded in the Pauli basis. Paulihedral keeps such kernels in a
//! dedicated [Pauli IR](ir) — lists of [`ir::PauliBlock`]s whose semantics
//! is commutative matrix addition — and optimizes them *before* lowering to
//! gates:
//!
//! 1. **Instruction scheduling** (technology-independent, [`schedule`]):
//!    gate-count-oriented lexicographic ordering or depth-oriented layer
//!    packing (Alg. 1).
//! 2. **Block-wise synthesis** (technology-dependent, [`synth`]): the
//!    fault-tolerant backend maximizes gate cancellation via adaptive CNOT
//!    chains (Alg. 2); the superconducting backend embeds CNOT trees into
//!    the device coupling map to co-optimize synthesis and qubit routing
//!    (Alg. 3).
//!
//! The one-call entry point is [`compile`]:
//!
//! ```
//! use paulihedral::{compile, Backend, CompileOptions, Scheduler};
//! use paulihedral::parse::parse_program;
//!
//! let ir = parse_program("{(ZZY, 0.5), 1.0}; {(ZZI, 0.3), 1.0};")?;
//! let out = compile(&ir, &CompileOptions::new(Scheduler::GateCount, Backend::FaultTolerant));
//! assert!(out.circuit.stats().cnot <= 8);
//! # Ok::<(), paulihedral::parse::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod ir;
pub mod parse;
pub mod schedule;
pub mod synth;
pub mod trotter;

use pauli::PauliString;
use qcircuit::Circuit;
use qdevice::{CouplingMap, NoiseModel};

use ir::PauliIR;
use schedule::Layer;

/// Which technology-independent scheduling pass to run (paper §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Gate-count-oriented lexicographic scheduling (§4.1, "GCO").
    GateCount,
    /// Depth-oriented layer packing (Alg. 1, "DO").
    Depth,
    /// Adaptive pass management (§7): pick GCO or DO per program via
    /// [`choose_scheduler`].
    Auto,
}

impl Scheduler {
    /// Resolves [`Scheduler::Auto`] against a concrete program; the two
    /// concrete variants return themselves.
    pub fn resolve(self, ir: &PauliIR) -> Scheduler {
        match self {
            Scheduler::Auto => choose_scheduler(ir),
            concrete => concrete,
        }
    }
}

/// Which technology-dependent backend pass to run (paper §5).
#[derive(Clone, Copy, Debug)]
pub enum Backend<'a> {
    /// Fault-tolerant backend: mapping is free, maximize cancellation.
    FaultTolerant,
    /// Near-term superconducting backend: coupling-constrained synthesis.
    Superconducting {
        /// The device coupling map.
        device: &'a CouplingMap,
        /// Optional calibration for error-aware routing decisions.
        noise: Option<&'a NoiseModel>,
    },
}

/// Options for [`compile`].
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions<'a> {
    /// Scheduling pass.
    pub scheduler: Scheduler,
    /// Backend pass.
    pub backend: Backend<'a>,
    /// Intra-compile worker budget for the synthesis passes: `1` (the
    /// default) keeps synthesis sequential, `0` uses one worker per
    /// available CPU, any other value is taken literally. The compiled
    /// artifact is bit-identical for every setting — parallel shards
    /// replicate the sequential tie-breaking exactly — so this is purely
    /// a wall-clock knob and is excluded from compilation cache keys.
    pub intra_threads: usize,
}

impl<'a> CompileOptions<'a> {
    /// Options with the given passes and sequential synthesis
    /// (`intra_threads = 1`).
    pub fn new(scheduler: Scheduler, backend: Backend<'a>) -> CompileOptions<'a> {
        CompileOptions {
            scheduler,
            backend,
            intra_threads: 1,
        }
    }

    /// Sets the intra-compile worker budget (builder-style).
    #[must_use]
    pub fn with_intra_threads(mut self, intra_threads: usize) -> CompileOptions<'a> {
        self.intra_threads = intra_threads;
        self
    }
}

/// Why a compilation request was rejected up front.
///
/// Produced by [`try_compile`] (and the `ph_engine` pass manager built on
/// top of it) instead of the panics [`compile`] raises.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The program has no blocks — there is nothing to schedule.
    EmptyProgram,
    /// The SC device has fewer physical qubits than the program needs.
    DeviceTooSmall {
        /// Physical qubits on the device.
        device: usize,
        /// Logical qubits the program needs.
        program: usize,
    },
    /// The SC device coupling map is disconnected, so qubits cannot be
    /// routed together.
    DeviceDisconnected,
    /// The compilation panicked. Produced by callers that isolate
    /// panics (the batch driver, the compile service) so one bad job
    /// cannot tear down its worker; carries the panic payload text.
    Panicked(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyProgram => write!(f, "program has no pauli blocks"),
            CompileError::DeviceTooSmall { device, program } => write!(
                f,
                "program needs {program} qubits, device has only {device}"
            ),
            CompileError::DeviceDisconnected => {
                write!(f, "device coupling map is disconnected")
            }
            CompileError::Panicked(msg) => write!(f, "compilation panicked: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// A compiled simulation kernel.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The output circuit: logical for the FT backend, physical (device
    /// width, connectivity-conformant) for the SC backend.
    pub circuit: Circuit,
    /// The `(string, θ)` sequence in emission order; the circuit implements
    /// `Π exp(iθP)` in exactly this order (the Pauli IR semantics licenses
    /// the reordering).
    pub emitted: Vec<(PauliString, f64)>,
    /// Initial logical→physical layout (SC backend only).
    pub initial_l2p: Option<Vec<usize>>,
    /// Final logical→physical layout (SC backend only).
    pub final_l2p: Option<Vec<usize>>,
}

/// Runs the selected scheduling pass ([`Scheduler::Auto`] resolves through
/// [`choose_scheduler`] first).
pub fn run_scheduler(ir: &PauliIR, scheduler: Scheduler) -> Vec<Layer> {
    match scheduler.resolve(ir) {
        Scheduler::GateCount => schedule::schedule_gco(ir),
        Scheduler::Depth => schedule::schedule_depth(ir),
        Scheduler::Auto => unreachable!("resolve() returns a concrete scheduler"),
    }
}

/// Picks a scheduler from the program's Pauli-string pattern — the
/// adaptive pass management the paper sketches in §7, based on its own
/// §6.3 analysis:
///
/// * *second-category* kernels (every string at most 2-local — Ising,
///   Heisenberg, QAOA) benefit hugely from depth-oriented layer packing
///   and lose nothing on gate count → [`Scheduler::Depth`];
/// * *first-category* kernels (molecules, UCCSD, random Hamiltonians with
///   long strings) cancel more gates under lexicographic ordering →
///   [`Scheduler::GateCount`].
pub fn choose_scheduler(ir: &PauliIR) -> Scheduler {
    let two_local = ir
        .blocks()
        .iter()
        .flat_map(|b| &b.terms)
        .all(|t| t.string.weight() <= 2);
    if two_local {
        Scheduler::Depth
    } else {
        Scheduler::GateCount
    }
}

/// Checks a compilation request without running it: non-empty program,
/// and (for the SC backend) a connected device at least as wide as the
/// program.
///
/// # Errors
///
/// Returns the [`CompileError`] that [`try_compile`] would return.
pub fn validate(ir: &PauliIR, backend: &Backend<'_>) -> Result<(), CompileError> {
    if ir.num_blocks() == 0 {
        return Err(CompileError::EmptyProgram);
    }
    if let Backend::Superconducting { device, .. } = backend {
        if device.num_qubits() < ir.num_qubits() {
            return Err(CompileError::DeviceTooSmall {
                device: device.num_qubits(),
                program: ir.num_qubits(),
            });
        }
        if !device.is_connected() {
            return Err(CompileError::DeviceDisconnected);
        }
    }
    Ok(())
}

/// Compiles a Pauli IR program: scheduling followed by block-wise
/// backend synthesis and a peephole clean-up.
///
/// # Errors
///
/// Returns a [`CompileError`] for an empty program or for an SC device
/// that is disconnected or smaller than the program.
pub fn try_compile(ir: &PauliIR, options: &CompileOptions<'_>) -> Result<Compiled, CompileError> {
    validate(ir, &options.backend)?;
    let layers = run_scheduler(ir, options.scheduler);
    let intra = synth::par::Intra::new(options.intra_threads);
    Ok(match options.backend {
        Backend::FaultTolerant => {
            let r = synth::ft::synthesize_with(ir.num_qubits(), &layers, intra);
            Compiled {
                circuit: r.circuit,
                emitted: r.emitted,
                initial_l2p: None,
                final_l2p: None,
            }
        }
        Backend::Superconducting { device, noise } => {
            let r = synth::sc::synthesize_with(ir.num_qubits(), &layers, device, noise, intra);
            Compiled {
                circuit: r.circuit,
                emitted: r.emitted,
                initial_l2p: Some(r.initial_l2p),
                final_l2p: Some(r.final_l2p),
            }
        }
    })
}

/// Compiles a Pauli IR program, panicking on invalid input. Thin wrapper
/// over [`try_compile`] for callers that treat bad input as a bug.
///
/// # Panics
///
/// Panics on an empty program or if the SC device is disconnected or
/// smaller than the program.
pub fn compile(ir: &PauliIR, options: &CompileOptions<'_>) -> Compiled {
    match try_compile(ir, options) {
        Ok(compiled) => compiled,
        Err(e) => panic!("compile: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Parameter, PauliBlock};
    use pauli::PauliTerm;
    use qdevice::devices;

    fn small_ir() -> PauliIR {
        let mut prog = PauliIR::new(3);
        for (s, w) in [("ZZI", 0.5), ("IZZ", 0.25), ("XXI", -0.5)] {
            prog.push_block(PauliBlock::new(
                vec![PauliTerm::new(s.parse().unwrap(), w)],
                Parameter::time(0.2),
            ));
        }
        prog
    }

    #[test]
    fn ft_compile_produces_logical_circuit() {
        let out = compile(
            &small_ir(),
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::GateCount,
                backend: Backend::FaultTolerant,
            },
        );
        assert_eq!(out.circuit.num_qubits(), 3);
        assert!(out.initial_l2p.is_none());
        assert_eq!(out.emitted.len(), 3);
    }

    #[test]
    fn sc_compile_produces_conformant_physical_circuit() {
        let device = devices::linear(5);
        let out = compile(
            &small_ir(),
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting {
                    device: &device,
                    noise: None,
                },
            },
        );
        assert_eq!(out.circuit.num_qubits(), 5);
        assert!(out
            .circuit
            .respects_connectivity(|a, b| device.has_edge(a, b)));
        assert_eq!(out.initial_l2p.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn both_schedulers_emit_every_string() {
        for s in [Scheduler::GateCount, Scheduler::Depth] {
            let out = compile(
                &small_ir(),
                &CompileOptions {
                    intra_threads: 1,
                    scheduler: s,
                    backend: Backend::FaultTolerant,
                },
            );
            assert_eq!(out.emitted.len(), 3);
        }
    }

    #[test]
    fn try_compile_rejects_empty_programs() {
        let empty = PauliIR::new(3);
        let err = try_compile(
            &empty,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Auto,
                backend: Backend::FaultTolerant,
            },
        )
        .unwrap_err();
        assert_eq!(err, CompileError::EmptyProgram);
    }

    #[test]
    fn try_compile_rejects_undersized_devices() {
        let device = devices::linear(2);
        let err = try_compile(
            &small_ir(),
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting {
                    device: &device,
                    noise: None,
                },
            },
        )
        .unwrap_err();
        assert_eq!(
            err,
            CompileError::DeviceTooSmall {
                device: 2,
                program: 3
            }
        );
    }

    #[test]
    fn try_compile_rejects_disconnected_devices() {
        let device = qdevice::CouplingMap::new(4, &[(0, 1), (2, 3)]);
        let err = try_compile(
            &small_ir(),
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting {
                    device: &device,
                    noise: None,
                },
            },
        )
        .unwrap_err();
        assert_eq!(err, CompileError::DeviceDisconnected);
    }

    #[test]
    #[should_panic(expected = "program has no pauli blocks")]
    fn compile_panics_where_try_compile_errors() {
        compile(
            &PauliIR::new(2),
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::GateCount,
                backend: Backend::FaultTolerant,
            },
        );
    }

    #[test]
    fn auto_scheduler_matches_the_resolved_choice() {
        // small_ir is 2-local → Auto resolves to Depth.
        assert_eq!(Scheduler::Auto.resolve(&small_ir()), Scheduler::Depth);
        let auto = compile(
            &small_ir(),
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Auto,
                backend: Backend::FaultTolerant,
            },
        );
        let manual = compile(
            &small_ir(),
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::FaultTolerant,
            },
        );
        assert_eq!(auto.circuit, manual.circuit);
        assert_eq!(auto.emitted, manual.emitted);
    }

    #[test]
    fn scheduler_choice_follows_string_pattern() {
        // 2-local program → Depth.
        assert_eq!(choose_scheduler(&small_ir()), Scheduler::Depth);
        // One long string flips it to GateCount.
        let mut ir = small_ir();
        ir.push_block(PauliBlock::single(
            "ZZZ".parse().unwrap(),
            1.0,
            Parameter::time(0.1),
        ));
        assert_eq!(choose_scheduler(&ir), Scheduler::GateCount);
    }
}
