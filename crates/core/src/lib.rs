//! Paulihedral: a block-wise compiler optimization framework for quantum
//! simulation kernels (reproduction of Li et al., ASPLOS 2022).
//!
//! A *quantum simulation kernel* implements `exp(iHt)` for a Hamiltonian
//! expanded in the Pauli basis. Paulihedral keeps such kernels in a
//! dedicated [Pauli IR](ir) — lists of [`ir::PauliBlock`]s whose semantics
//! is commutative matrix addition — and optimizes them *before* lowering to
//! gates:
//!
//! 1. **Instruction scheduling** (technology-independent, [`schedule`]):
//!    gate-count-oriented lexicographic ordering or depth-oriented layer
//!    packing (Alg. 1).
//! 2. **Block-wise synthesis** (technology-dependent, [`synth`]): the
//!    fault-tolerant backend maximizes gate cancellation via adaptive CNOT
//!    chains (Alg. 2); the superconducting backend embeds CNOT trees into
//!    the device coupling map to co-optimize synthesis and qubit routing
//!    (Alg. 3).
//!
//! The one-call entry point is [`compile`]:
//!
//! ```
//! use paulihedral::{compile, Backend, CompileOptions, Scheduler};
//! use paulihedral::parse::parse_program;
//!
//! let ir = parse_program("{(ZZY, 0.5), 1.0}; {(ZZI, 0.3), 1.0};")?;
//! let out = compile(&ir, &CompileOptions {
//!     scheduler: Scheduler::GateCount,
//!     backend: Backend::FaultTolerant,
//! });
//! assert!(out.circuit.stats().cnot <= 8);
//! # Ok::<(), paulihedral::parse::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ir;
pub mod parse;
pub mod schedule;
pub mod synth;
pub mod trotter;

use pauli::PauliString;
use qcircuit::Circuit;
use qdevice::{CouplingMap, NoiseModel};

use ir::PauliIR;
use schedule::Layer;

/// Which technology-independent scheduling pass to run (paper §4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduler {
    /// Gate-count-oriented lexicographic scheduling (§4.1, "GCO").
    GateCount,
    /// Depth-oriented layer packing (Alg. 1, "DO").
    Depth,
}

/// Which technology-dependent backend pass to run (paper §5).
#[derive(Clone, Copy, Debug)]
pub enum Backend<'a> {
    /// Fault-tolerant backend: mapping is free, maximize cancellation.
    FaultTolerant,
    /// Near-term superconducting backend: coupling-constrained synthesis.
    Superconducting {
        /// The device coupling map.
        device: &'a CouplingMap,
        /// Optional calibration for error-aware routing decisions.
        noise: Option<&'a NoiseModel>,
    },
}

/// Options for [`compile`].
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions<'a> {
    /// Scheduling pass.
    pub scheduler: Scheduler,
    /// Backend pass.
    pub backend: Backend<'a>,
}

/// A compiled simulation kernel.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// The output circuit: logical for the FT backend, physical (device
    /// width, connectivity-conformant) for the SC backend.
    pub circuit: Circuit,
    /// The `(string, θ)` sequence in emission order; the circuit implements
    /// `Π exp(iθP)` in exactly this order (the Pauli IR semantics licenses
    /// the reordering).
    pub emitted: Vec<(PauliString, f64)>,
    /// Initial logical→physical layout (SC backend only).
    pub initial_l2p: Option<Vec<usize>>,
    /// Final logical→physical layout (SC backend only).
    pub final_l2p: Option<Vec<usize>>,
}

/// Runs the selected scheduling pass.
pub fn run_scheduler(ir: &PauliIR, scheduler: Scheduler) -> Vec<Layer> {
    match scheduler {
        Scheduler::GateCount => schedule::schedule_gco(ir),
        Scheduler::Depth => schedule::schedule_depth(ir),
    }
}

/// Picks a scheduler from the program's Pauli-string pattern — the
/// adaptive pass management the paper sketches in §7, based on its own
/// §6.3 analysis:
///
/// * *second-category* kernels (every string at most 2-local — Ising,
///   Heisenberg, QAOA) benefit hugely from depth-oriented layer packing
///   and lose nothing on gate count → [`Scheduler::Depth`];
/// * *first-category* kernels (molecules, UCCSD, random Hamiltonians with
///   long strings) cancel more gates under lexicographic ordering →
///   [`Scheduler::GateCount`].
pub fn choose_scheduler(ir: &PauliIR) -> Scheduler {
    let two_local = ir
        .blocks()
        .iter()
        .flat_map(|b| &b.terms)
        .all(|t| t.string.weight() <= 2);
    if two_local {
        Scheduler::Depth
    } else {
        Scheduler::GateCount
    }
}

/// Compiles a Pauli IR program: scheduling followed by block-wise
/// backend synthesis and a peephole clean-up.
///
/// # Panics
///
/// Panics if the SC device is disconnected or smaller than the program.
pub fn compile(ir: &PauliIR, options: &CompileOptions<'_>) -> Compiled {
    let layers = run_scheduler(ir, options.scheduler);
    match options.backend {
        Backend::FaultTolerant => {
            let r = synth::ft::synthesize(ir.num_qubits(), &layers);
            Compiled {
                circuit: r.circuit,
                emitted: r.emitted,
                initial_l2p: None,
                final_l2p: None,
            }
        }
        Backend::Superconducting { device, noise } => {
            let r = synth::sc::synthesize(ir.num_qubits(), &layers, device, noise);
            Compiled {
                circuit: r.circuit,
                emitted: r.emitted,
                initial_l2p: Some(r.initial_l2p),
                final_l2p: Some(r.final_l2p),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir::{Parameter, PauliBlock};
    use pauli::PauliTerm;
    use qdevice::devices;

    fn small_ir() -> PauliIR {
        let mut prog = PauliIR::new(3);
        for (s, w) in [("ZZI", 0.5), ("IZZ", 0.25), ("XXI", -0.5)] {
            prog.push_block(PauliBlock::new(
                vec![PauliTerm::new(s.parse().unwrap(), w)],
                Parameter::time(0.2),
            ));
        }
        prog
    }

    #[test]
    fn ft_compile_produces_logical_circuit() {
        let out = compile(
            &small_ir(),
            &CompileOptions {
                scheduler: Scheduler::GateCount,
                backend: Backend::FaultTolerant,
            },
        );
        assert_eq!(out.circuit.num_qubits(), 3);
        assert!(out.initial_l2p.is_none());
        assert_eq!(out.emitted.len(), 3);
    }

    #[test]
    fn sc_compile_produces_conformant_physical_circuit() {
        let device = devices::linear(5);
        let out = compile(
            &small_ir(),
            &CompileOptions {
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting {
                    device: &device,
                    noise: None,
                },
            },
        );
        assert_eq!(out.circuit.num_qubits(), 5);
        assert!(out
            .circuit
            .respects_connectivity(|a, b| device.has_edge(a, b)));
        assert_eq!(out.initial_l2p.as_ref().unwrap().len(), 3);
    }

    #[test]
    fn both_schedulers_emit_every_string() {
        for s in [Scheduler::GateCount, Scheduler::Depth] {
            let out = compile(
                &small_ir(),
                &CompileOptions {
                    scheduler: s,
                    backend: Backend::FaultTolerant,
                },
            );
            assert_eq!(out.emitted.len(), 3);
        }
    }

    #[test]
    fn scheduler_choice_follows_string_pattern() {
        // 2-local program → Depth.
        assert_eq!(choose_scheduler(&small_ir()), Scheduler::Depth);
        // One long string flips it to GateCount.
        let mut ir = small_ir();
        ir.push_block(PauliBlock::single(
            "ZZZ".parse().unwrap(),
            1.0,
            Parameter::time(0.1),
        ));
        assert_eq!(choose_scheduler(&ir), Scheduler::GateCount);
    }
}
