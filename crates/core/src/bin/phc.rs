//! `phc` — the Paulihedral command-line compiler.
//!
//! Reads a Pauli IR program in the Fig. 5 surface syntax, compiles it with
//! the selected scheduler and backend, prints the cost metrics, and
//! optionally writes OpenQASM 2.0.
//!
//! ```text
//! phc INPUT.pauli [--backend ft|manhattan|melbourne|linear:N|grid:RxC]
//!                 [--scheduler auto|gco|do] [--qasm OUT.qasm] [--stats-only]
//! ```
//!
//! Example input file:
//!
//! ```text
//! {(IIXY, 0.5), (IIYX, -0.5), theta1};
//! {(ZZII, 0.134), 0.5};
//! ```

use std::process::ExitCode;

use paulihedral::parse::parse_program;
use paulihedral::{choose_scheduler, compile, Backend, CompileOptions, Scheduler};
use qcircuit::qasm::{to_qasm, QasmOptions};
use qdevice::{devices, CouplingMap};

fn value_of(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_device(spec: &str, n_program: usize) -> Result<Option<CouplingMap>, String> {
    match spec {
        "ft" => Ok(None),
        "manhattan" => Ok(Some(devices::manhattan_65())),
        "melbourne" => Ok(Some(devices::melbourne_16())),
        other => {
            if let Some(n) = other.strip_prefix("linear:") {
                let n: usize = n.parse().map_err(|_| format!("bad linear size `{n}`"))?;
                return Ok(Some(devices::linear(n.max(n_program))));
            }
            if let Some(dims) = other.strip_prefix("grid:") {
                let (r, c) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("bad grid spec `{dims}`, expected RxC"))?;
                let r: usize = r.parse().map_err(|_| format!("bad grid rows `{r}`"))?;
                let c: usize = c.parse().map_err(|_| format!("bad grid cols `{c}`"))?;
                return Ok(Some(devices::grid(r, c)));
            }
            Err(format!(
                "unknown backend `{other}` (ft|manhattan|melbourne|linear:N|grid:RxC)"
            ))
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let input = args
        .iter()
        .find(|a| !a.starts_with("--") && value_of(&args, "--backend").as_deref() != Some(a.as_str()))
        .cloned()
        .filter(|a| {
            // Exclude values of other flags.
            for flag in ["--scheduler", "--qasm", "--backend"] {
                if value_of(&args, flag).as_deref() == Some(a.as_str()) {
                    return false;
                }
            }
            true
        })
        .ok_or("usage: phc INPUT.pauli [--backend ft|manhattan|melbourne|linear:N|grid:RxC] [--scheduler auto|gco|do] [--qasm OUT.qasm]")?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let ir = parse_program(&text).map_err(|e| format!("{input}: {e}"))?;
    eprintln!(
        "parsed {}: {} blocks, {} strings, {} qubits",
        input,
        ir.num_blocks(),
        ir.total_strings(),
        ir.num_qubits()
    );

    let scheduler = match value_of(&args, "--scheduler").as_deref() {
        None | Some("auto") => choose_scheduler(&ir),
        Some("gco") => Scheduler::GateCount,
        Some("do") => Scheduler::Depth,
        Some(other) => return Err(format!("unknown scheduler `{other}` (auto|gco|do)")),
    };
    let device = parse_device(
        value_of(&args, "--backend").as_deref().unwrap_or("ft"),
        ir.num_qubits(),
    )?;

    let backend = match &device {
        None => Backend::FaultTolerant,
        Some(map) => Backend::Superconducting {
            device: map,
            noise: None,
        },
    };
    let out = compile(&ir, &CompileOptions { scheduler, backend });
    let stats = out.circuit.mapped_stats();
    println!(
        "scheduler={scheduler:?} backend={} : CNOT {}, single {}, total {}, depth {}",
        value_of(&args, "--backend").unwrap_or_else(|| "ft".into()),
        stats.cnot,
        stats.single,
        stats.total,
        stats.depth
    );
    if let (Some(init), Some(fin)) = (&out.initial_l2p, &out.final_l2p) {
        println!("initial layout: {init:?}");
        println!("final   layout: {fin:?}");
    }
    if let Some(path) = value_of(&args, "--qasm") {
        let qasm = to_qasm(&out.circuit.decompose_swaps(), QasmOptions::default());
        std::fs::write(&path, qasm).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("phc: {msg}");
            ExitCode::FAILURE
        }
    }
}
