//! Trotter expansion of `exp(iHt)` into Pauli IR programs (paper §2.2,
//! Fig. 3(a)).
//!
//! `exp(iHt) ≈ [Π_j exp(i·w_j·P_j·Δt)]^{t/Δt}`: the kernel for one step is
//! repeated `r = t/Δt` times. Because every repetition is the same program,
//! the compiler schedules one step and replays it — and the junction
//! between consecutive steps is itself a cancellation opportunity the
//! chain-aligned synthesis exploits.

use pauli::PauliTerm;

use crate::ir::{Parameter, PauliBlock, PauliIR};

/// Expands a Hamiltonian `H = Σ w_j P_j` into the first-order Trotter
/// program for `exp(iHt)` with `steps` repetitions (`Δt = t / steps`).
///
/// # Panics
///
/// Panics if `steps == 0` or `terms` is empty.
pub fn trotterize(n: usize, terms: &[PauliTerm], t: f64, steps: usize) -> PauliIR {
    assert!(steps > 0, "need at least one Trotter step");
    assert!(!terms.is_empty(), "empty Hamiltonian");
    let dt = t / steps as f64;
    let mut ir = PauliIR::new(n);
    for _ in 0..steps {
        for term in terms {
            ir.push_block(PauliBlock::new(vec![term.clone()], Parameter::time(dt)));
        }
    }
    ir
}

/// The number of Trotter steps needed for a target additive error `eps`
/// under the standard first-order bound
/// `‖exp(iHt) − [Π exp(iP_j w_j Δt)]^r‖ ≤ (Σ|w_j|)²·t²/(2r)`.
///
/// # Panics
///
/// Panics if `eps` is not positive.
pub fn steps_for_error(terms: &[PauliTerm], t: f64, eps: f64) -> usize {
    assert!(eps > 0.0, "error budget must be positive");
    let lambda: f64 = terms.iter().map(|term| term.weight.abs()).sum();
    (((lambda * t).powi(2) / (2.0 * eps)).ceil() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms() -> Vec<PauliTerm> {
        vec![
            PauliTerm::new("ZZ".parse().unwrap(), 0.5),
            PauliTerm::new("XI".parse().unwrap(), 0.25),
        ]
    }

    #[test]
    fn trotterize_repeats_the_step_kernel() {
        let ir = trotterize(2, &terms(), 1.0, 4);
        assert_eq!(ir.num_blocks(), 8);
        assert_eq!(ir.blocks()[0].parameter.value, 0.25);
        // Step boundaries repeat the same strings.
        assert_eq!(
            ir.blocks()[0].terms[0].string,
            ir.blocks()[2].terms[0].string
        );
    }

    #[test]
    fn steps_grow_quadratically_with_time() {
        let s1 = steps_for_error(&terms(), 1.0, 1e-2);
        let s2 = steps_for_error(&terms(), 2.0, 1e-2);
        // Quadratic in t up to ceiling slack.
        assert!(s2 + 4 >= 4 * s1, "{s1} vs {s2}");
        assert!(s2 <= 4 * s1, "{s1} vs {s2}");
        assert!(steps_for_error(&terms(), 0.0, 1e-2) >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_steps_rejected() {
        trotterize(2, &terms(), 1.0, 0);
    }
}
