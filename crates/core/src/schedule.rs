//! Block-wise instruction scheduling (paper §4).
//!
//! Two technology-independent passes order the blocks of a Pauli IR
//! program, both justified by the commutative-addition semantics of the IR:
//!
//! * [`schedule_gco`] — gate-count-oriented: lexicographic ordering of
//!   blocks by their (lexicographically sorted) first string, maximizing
//!   shared operators between consecutive strings (§4.1);
//! * [`schedule_depth`] — depth-oriented (Alg. 1): blocks sorted by
//!   decreasing active length are packed into *layers* of
//!   disjoint-support blocks so independent simulation circuits execute in
//!   parallel (§4.2).

use pauli::PauliString;

use crate::ir::{PauliBlock, PauliIR};

/// One scheduled layer: blocks intended to execute concurrently. The first
/// block is the layer's *anchor* (the large block on the critical path);
/// padding blocks are disjoint from it.
#[derive(Clone, Debug, PartialEq)]
pub struct Layer {
    /// Blocks of the layer; index 0 is the anchor.
    pub blocks: Vec<PauliBlock>,
}

impl Layer {
    /// The merged first strings of the layer's blocks — the Pauli pattern
    /// facing the *previous* layer. Overlapping supports (only possible for
    /// padding blocks stacked on the same qubits) keep the first-written
    /// operator.
    pub fn front_signature(&self, n: usize) -> PauliString {
        merge_strings(n, self.blocks.iter().map(|b| &b.terms[0].string))
    }

    /// The merged last strings — the pattern facing the *next* layer.
    pub fn back_signature(&self, n: usize) -> PauliString {
        merge_strings(
            n,
            self.blocks
                .iter()
                .map(|b| &b.terms[b.terms.len() - 1].string),
        )
    }

    /// Total strings in the layer.
    pub fn num_strings(&self) -> usize {
        self.blocks.iter().map(|b| b.terms.len()).sum()
    }
}

fn merge_strings<'a>(n: usize, strings: impl Iterator<Item = &'a PauliString>) -> PauliString {
    // Word-parallel first-written-wins accumulation over the two bit
    // planes; earlier blocks keep every qubit they claimed.
    let mut sig = PauliString::identity(n);
    for s in strings {
        sig.merge_keep_first(s);
    }
    sig
}

/// Gate-count-oriented scheduling (§4.1): sort each block's strings
/// lexicographically, then sort blocks by their first string; one block per
/// layer.
pub fn schedule_gco(ir: &PauliIR) -> Vec<Layer> {
    let mut blocks: Vec<PauliBlock> = ir.blocks().to_vec();
    for b in &mut blocks {
        b.sort_terms_lex();
    }
    blocks.sort_by(|a, b| a.representative().lex_cmp(b.representative()));
    blocks
        .into_iter()
        .map(|b| Layer { blocks: vec![b] })
        .collect()
}

/// Depth-oriented scheduling (Alg. 1).
///
/// Blocks are sorted by decreasing active length (ties: lexicographic).
/// Each layer starts from the remaining block with the most operator
/// overlap with the previous layer's back signature, then is padded with
/// blocks disjoint from the anchor whose accumulated depth estimate stays
/// within the anchor's depth.
pub fn schedule_depth(ir: &PauliIR) -> Vec<Layer> {
    /// Cap on how many remaining blocks the per-layer anchor argmax scans.
    /// Remaining blocks are kept sorted, so the candidates scanned are the
    /// largest ones (where the overlap decision matters); the cap keeps the
    /// pass near-linear on 60k+-block programs.
    const ANCHOR_SCAN_CAP: usize = 4096;

    let n = ir.num_qubits();
    let mut blocks: Vec<PauliBlock> = ir.blocks().to_vec();
    for b in &mut blocks {
        b.sort_terms_lex();
    }
    // Alg. 1 line 1, decorate-sort-undecorate: `active_len` is O(n) per
    // call, so hoist it out of the comparator. Sorting indices with the
    // same stable comparator yields the identical permutation.
    let lens: Vec<usize> = blocks.iter().map(PauliBlock::active_len).collect();
    let mut order: Vec<usize> = (0..blocks.len()).collect();
    order.sort_by(|&i, &j| {
        lens[j].cmp(&lens[i]).then_with(|| {
            blocks[i]
                .representative()
                .lex_cmp(blocks[j].representative())
        })
    });
    let mut slots: Vec<Option<PauliBlock>> = blocks.into_iter().map(Some).collect();
    let blocks: Vec<PauliBlock> = order
        .iter()
        .map(|&i| slots[i].take().expect("permutation index"))
        .collect();

    // Precomputed per-block metadata keeps the layer loops allocation-free.
    let masks: Vec<Vec<u64>> = blocks.iter().map(PauliBlock::active_mask).collect();
    let depths: Vec<usize> = blocks.iter().map(PauliBlock::depth_estimate).collect();

    // Support index over the active masks. Blocks touch a handful of words
    // even on 1000+-qubit programs, so each block's mask is flattened to
    // its occupied `(word, bits)` entries plus a one-word occupancy
    // summary (bit `g` set iff the block occupies a word in group `g`).
    // The padding scan then decides disjointness by intersecting the two
    // summaries — O(1) for the common all-free case — and falls back to
    // the candidate's occupied words only, never the full ⌈n/64⌉-word
    // mask re-test of every surviving block.
    let words = n.div_ceil(64);
    let group = words.div_ceil(64).max(1); // mask words per summary bit
    let mut occ_entries: Vec<(u32, u64)> = Vec::new();
    let mut occ_ranges: Vec<(u32, u32)> = Vec::with_capacity(masks.len());
    let mut summaries: Vec<u64> = Vec::with_capacity(masks.len());
    for mask in &masks {
        let start = occ_entries.len() as u32;
        let mut summary = 0u64;
        for (w, &bits) in mask.iter().enumerate() {
            if bits != 0 {
                occ_entries.push((w as u32, bits));
                summary |= 1 << (w / group);
            }
        }
        occ_ranges.push((start, occ_entries.len() as u32));
        summaries.push(summary);
    }
    let occ_of = |i: usize| {
        let (s, e) = occ_ranges[i];
        &occ_entries[s as usize..e as usize]
    };

    let mut remaining: Vec<Option<PauliBlock>> = blocks.into_iter().map(Some).collect();
    let mut left = remaining.len();
    // Skip pointers: `skip[i]` is a monotone hint for the first alive slot
    // at or after `i`, path-compressed as slots are consumed, so neither
    // the anchor argmax nor the padding scan ever re-walks a dead run (the
    // old code compacted only the leading anchor prefix and re-tested
    // every interior taken slot on every layer).
    let mut skip: Vec<u32> = (0..remaining.len() as u32).collect();
    let mut next_alive = 0usize;
    let mut layers: Vec<Layer> = Vec::new();

    while left > 0 {
        next_alive = first_alive(&mut skip, &remaining, next_alive);
        // Anchor selection: the first sorted block for the first layer;
        // afterwards the block overlapping the previous layer most (Alg. 1
        // line 5), ties resolved by sorted position.
        let anchor_idx = match layers.last() {
            None => next_alive,
            Some(prev) => {
                let back = prev.back_signature(n);
                let mut best = (0usize, usize::MAX);
                let mut scanned = 0usize;
                let mut i = next_alive;
                while i < remaining.len() {
                    let b = remaining[i].as_ref().expect("alive slot");
                    let ov = back.overlap(&b.terms[0].string);
                    if best.1 == usize::MAX || ov > best.0 {
                        best = (ov, i);
                    }
                    scanned += 1;
                    if scanned >= ANCHOR_SCAN_CAP {
                        break;
                    }
                    i = first_alive(&mut skip, &remaining, i + 1);
                }
                best.1
            }
        };
        let anchor = remaining[anchor_idx].take().expect("anchor exists");
        left -= 1;
        let budget = depths[anchor_idx];
        let mut layer_mask = masks[anchor_idx].clone();
        let mut layer_summary = summaries[anchor_idx];
        let mut layer = Layer {
            blocks: vec![anchor],
        };
        // Padding (Alg. 1 lines 7–10): small blocks disjoint from every
        // block already in the layer, so they execute in parallel. Since
        // pads are pairwise disjoint their depths do not stack — each pad
        // only has to fit under the anchor's depth individually.
        let mut i = first_alive(&mut skip, &remaining, next_alive);
        next_alive = i;
        while i < remaining.len() {
            if depths[i] <= budget
                && (summaries[i] & layer_summary == 0
                    || occ_of(i)
                        .iter()
                        .all(|&(w, bits)| layer_mask[w as usize] & bits == 0))
            {
                for &(w, bits) in occ_of(i) {
                    layer_mask[w as usize] |= bits;
                }
                layer_summary |= summaries[i];
                layer
                    .blocks
                    .push(remaining[i].take().expect("candidate exists"));
                left -= 1;
            }
            i = first_alive(&mut skip, &remaining, i + 1);
        }
        layers.push(layer);
    }
    layers
}

/// The first alive slot at or after `from` (or `remaining.len()`),
/// path-compressing the skip pointers so consumed runs are crossed in
/// amortized O(1) on later visits.
fn first_alive(skip: &mut [u32], remaining: &[Option<PauliBlock>], from: usize) -> usize {
    let mut i = from;
    while i < remaining.len() && remaining[i].is_none() {
        i = (skip[i] as usize).max(i + 1);
    }
    let mut j = from;
    while j < i {
        let hop = (skip[j] as usize).max(j + 1);
        skip[j] = i as u32;
        j = hop;
    }
    i
}

/// Flattens layers back to a block list (program order of execution).
pub fn flatten(layers: &[Layer]) -> Vec<&PauliBlock> {
    layers.iter().flat_map(|l| l.blocks.iter()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Parameter;
    use pauli::PauliTerm;

    fn block(strings: &[&str]) -> PauliBlock {
        PauliBlock::new(
            strings
                .iter()
                .map(|s| PauliTerm::new(s.parse().unwrap(), 1.0))
                .collect(),
            Parameter::time(1.0),
        )
    }

    fn ir_of(blocks: Vec<PauliBlock>) -> PauliIR {
        let n = blocks[0].num_qubits();
        let mut ir = PauliIR::new(n);
        for b in blocks {
            ir.push_block(b);
        }
        ir
    }

    #[test]
    fn gco_orders_blocks_lexicographically() {
        let ir = ir_of(vec![block(&["ZZII"]), block(&["XXII"]), block(&["YIII"])]);
        let layers = schedule_gco(&ir);
        let reps: Vec<String> = layers
            .iter()
            .map(|l| l.blocks[0].representative().to_string())
            .collect();
        assert_eq!(reps, vec!["XXII", "YIII", "ZZII"]);
        assert!(layers.iter().all(|l| l.blocks.len() == 1));
    }

    #[test]
    fn gco_sorts_strings_within_blocks() {
        let ir = ir_of(vec![block(&["ZZII", "XYII"])]);
        let layers = schedule_gco(&ir);
        assert_eq!(layers[0].blocks[0].representative().to_string(), "XYII");
    }

    #[test]
    fn depth_sorts_by_active_length_first() {
        let ir = ir_of(vec![block(&["XIII"]), block(&["ZZZZ"]), block(&["XXII"])]);
        let layers = schedule_depth(&ir);
        // Largest block (4 active) anchors the first layer.
        assert_eq!(layers[0].blocks[0].representative().to_string(), "ZZZZ");
    }

    #[test]
    fn depth_packs_disjoint_blocks_in_one_layer() {
        // A 4-qubit anchor (depth 7) plus two disjoint 2-qubit blocks
        // (depth 3 each → 6 ≤ 7): all fit one layer.
        let ir = ir_of(vec![
            block(&["IIIIXX"]),
            block(&["ZZZZII"]),
            block(&["IIIIZZ"]),
        ]);
        let layers = schedule_depth(&ir);
        assert_eq!(layers.len(), 2, "{layers:?}");
        assert_eq!(layers[0].blocks.len(), 2);
        assert!(layers[0].blocks[0].disjoint_with(&layers[0].blocks[1]));
    }

    #[test]
    fn depth_padding_packs_all_parallel_blocks() {
        // Three pairwise-disjoint equal-depth blocks run in parallel: one
        // layer. (Pads are pairwise disjoint, so depths do not stack.)
        let ir = ir_of(vec![
            block(&["ZZIIII"]),
            block(&["IIZZII"]),
            block(&["IIIIZZ"]),
        ]);
        let layers = schedule_depth(&ir);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].blocks.len(), 3);
    }

    #[test]
    fn depth_padding_rejects_deeper_blocks() {
        // The anchor is the deepest block; a disjoint but *deeper* block
        // cannot pad a shallower anchor's layer — but here the deepest
        // block anchors first, so the shallow one pads it.
        let ir = ir_of(vec![block(&["ZZZZII"]), block(&["IIIIZZ"])]);
        let layers = schedule_depth(&ir);
        assert_eq!(layers.len(), 1);
        // Reversed case: anchor shallow (after the deep one is consumed),
        // nothing deeper can join.
        let ir = ir_of(vec![
            block(&["ZZIIIIII"]),
            block(&["IIZZZZZZ"]),
            block(&["ZZIIIIII"]),
        ]);
        let layers = schedule_depth(&ir);
        // Deep block anchors layer 1 and one ZZ pads it; the second ZZ
        // anchors its own layer.
        assert_eq!(layers.len(), 2);
    }

    #[test]
    fn depth_never_packs_overlapping_blocks() {
        let ir = ir_of(vec![block(&["ZZZI"]), block(&["IIZZ"])]);
        let layers = schedule_depth(&ir);
        assert_eq!(layers.len(), 2);
    }

    #[test]
    fn anchor_follows_overlap_with_previous_layer() {
        // After anchor ZZZZ, the next anchor should be the block sharing
        // more operators with it: ZZII (overlap 2) over XXII (overlap 0).
        let ir = ir_of(vec![block(&["ZZZZ"]), block(&["XXII"]), block(&["ZZII"])]);
        let layers = schedule_depth(&ir);
        assert_eq!(layers[1].blocks[0].representative().to_string(), "ZZII");
    }

    #[test]
    fn signatures_merge_disjoint_blocks() {
        let l = Layer {
            blocks: vec![block(&["ZZII"]), block(&["IIXY"])],
        };
        assert_eq!(l.front_signature(4).to_string(), "ZZXY");
        assert_eq!(l.back_signature(4).to_string(), "ZZXY");
        assert_eq!(l.num_strings(), 2);
    }

    #[test]
    fn signatures_keep_first_written_operator_on_overlap() {
        // Padding blocks stacked on the same qubits (possible when a layer
        // is built from blocks whose *boundary* strings overlap even though
        // their active masks were disjoint at scheduling time — e.g. after
        // hand-construction or future relaxations): the earlier block's
        // operator must win on every contested qubit.
        let l = Layer {
            blocks: vec![block(&["ZZII"]), block(&["XYII"]), block(&["IIXX"])],
        };
        // Qubits 2,3 are claimed by ZZ first; XY must not overwrite them.
        assert_eq!(l.front_signature(4).to_string(), "ZZXX");
        assert_eq!(l.back_signature(4).to_string(), "ZZXX");

        // Partial overlap: the second block is identity on qubit 2 but
        // active on 1; only the free qubit is filled in.
        let l = Layer {
            blocks: vec![block(&["IZZI"]), block(&["IXYZ"])],
        };
        assert_eq!(l.front_signature(4).to_string(), "IZZZ");

        // Cross-word overlap: same first-written-wins semantics above
        // qubit 63.
        let wide_a = format!("ZZ{}", "I".repeat(68)); // Z on qubits 68,69
        let wide_b = format!("XYX{}", "I".repeat(67)); // X,Y,X on 67,68,69
        let l = Layer {
            blocks: vec![block(&[&wide_a]), block(&[&wide_b])],
        };
        let sig = l.front_signature(70);
        assert_eq!(sig.get(69), pauli::Pauli::Z);
        assert_eq!(sig.get(68), pauli::Pauli::Z);
        assert_eq!(sig.get(67), pauli::Pauli::X);
        assert_eq!(sig.weight(), 3);
    }

    /// The depth scheduler exactly as it shipped before the support-indexed
    /// rewrite (full `remaining` scan, per-word mask re-tests, `next_alive`
    /// compacted only on the leading anchor path). The stress test below
    /// pins the rewrite to this reference bit-for-bit.
    fn schedule_depth_reference(ir: &PauliIR) -> Vec<Layer> {
        const ANCHOR_SCAN_CAP: usize = 4096;
        let n = ir.num_qubits();
        let mut blocks: Vec<PauliBlock> = ir.blocks().to_vec();
        for b in &mut blocks {
            b.sort_terms_lex();
        }
        blocks.sort_by(|a, b| {
            b.active_len()
                .cmp(&a.active_len())
                .then_with(|| a.representative().lex_cmp(b.representative()))
        });
        let masks: Vec<Vec<u64>> = blocks.iter().map(PauliBlock::active_mask).collect();
        let depths: Vec<usize> = blocks.iter().map(PauliBlock::depth_estimate).collect();
        let disjoint = |a: &[u64], b: &[u64]| a.iter().zip(b).all(|(x, y)| x & y == 0);
        let mut remaining: Vec<Option<PauliBlock>> = blocks.into_iter().map(Some).collect();
        let mut left = remaining.len();
        let mut next_alive = 0usize;
        let mut layers: Vec<Layer> = Vec::new();
        while left > 0 {
            while remaining[next_alive].is_none() {
                next_alive += 1;
            }
            let anchor_idx = match layers.last() {
                None => next_alive,
                Some(prev) => {
                    let back = prev.back_signature(n);
                    let mut best = (0usize, usize::MAX);
                    let mut scanned = 0usize;
                    for (i, slot) in remaining.iter().enumerate().skip(next_alive) {
                        if let Some(b) = slot {
                            let ov = back.overlap(&b.terms[0].string);
                            if best.1 == usize::MAX || ov > best.0 {
                                best = (ov, i);
                            }
                            scanned += 1;
                            if scanned >= ANCHOR_SCAN_CAP {
                                break;
                            }
                        }
                    }
                    best.1
                }
            };
            let anchor = remaining[anchor_idx].take().expect("anchor exists");
            left -= 1;
            let budget = depths[anchor_idx];
            let mut layer_mask = masks[anchor_idx].clone();
            let mut layer = Layer {
                blocks: vec![anchor],
            };
            for i in next_alive..remaining.len() {
                if remaining[i].is_none() {
                    continue;
                }
                if depths[i] <= budget && disjoint(&masks[i], &layer_mask) {
                    for (m, w) in layer_mask.iter_mut().zip(&masks[i]) {
                        *m |= w;
                    }
                    layer
                        .blocks
                        .push(remaining[i].take().expect("candidate exists"));
                    left -= 1;
                }
            }
            layers.push(layer);
        }
        layers
    }

    /// Deterministic many-blocks IR: mixed support sizes and multi-string
    /// blocks scattered over enough qubits to cross word boundaries.
    fn stress_ir(n: usize, num_blocks: usize, seed: u64) -> PauliIR {
        let mut state = seed;
        let mut rng = move |m: usize| {
            // LCG (Numerical Recipes constants); high bits for quality.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        let paulis = [pauli::Pauli::X, pauli::Pauli::Y, pauli::Pauli::Z];
        let mut ir = PauliIR::new(n);
        for _ in 0..num_blocks {
            let num_terms = 1 + rng(3);
            let mut terms = Vec::with_capacity(num_terms);
            for _ in 0..num_terms {
                let mut s = PauliString::identity(n);
                let weight = 1 + rng(6);
                for _ in 0..weight {
                    s.set(rng(n), paulis[rng(3)]);
                }
                terms.push(PauliTerm::new(s, 1.0));
            }
            ir.push_block(PauliBlock::new(terms, Parameter::time(0.1)));
        }
        ir
    }

    #[test]
    fn depth_rewrite_is_bit_identical_to_reference_on_many_blocks() {
        // Dense small program, a two-word program, and a sparse wide one
        // (many fully-disjoint pads per layer, long dead runs to skip).
        for (n, num_blocks, seed) in [(12, 120, 7), (96, 300, 11), (150, 400, 23)] {
            let ir = stress_ir(n, num_blocks, seed);
            let new = schedule_depth(&ir);
            let reference = schedule_depth_reference(&ir);
            assert_eq!(new.len(), reference.len(), "layer count n={n}");
            assert_eq!(new, reference, "layers diverged for n={n}");
        }
    }

    #[test]
    fn scheduling_preserves_multiset_of_strings() {
        let ir = ir_of(vec![
            block(&["ZZII", "XYII"]),
            block(&["IIZZ"]),
            block(&["IXXI"]),
        ]);
        for layers in [schedule_gco(&ir), schedule_depth(&ir)] {
            let total: usize = layers.iter().map(Layer::num_strings).sum();
            assert_eq!(total, ir.total_strings());
            // Block atomicity: the two-string block stays together.
            let found = layers
                .iter()
                .flat_map(|l| &l.blocks)
                .any(|b| b.terms.len() == 2);
            assert!(found);
        }
    }
}
