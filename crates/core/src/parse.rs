//! Textual Pauli IR: parser and printer for the Fig. 5 grammar.
//!
//! ```text
//! {(IIXY, 0.5), (IIYX, -0.5), theta1};
//! {(XYII, -0.5), (YXII, 0.5), theta2};
//! ```
//!
//! Each `{…}` is a `pauli_block`: a list of `(pauli_str, weight)` pairs
//! followed by the block parameter, which is either a numeric literal or an
//! identifier (whose value is looked up in an optional binding table,
//! defaulting to `1.0`).

use std::collections::HashMap;
use std::fmt;

use pauli::{PauliString, PauliTerm};

use crate::ir::{Parameter, PauliBlock, PauliIR};

/// Error produced when parsing a textual Pauli IR program fails.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                self.pos += c.len_utf8();
            } else if c == '#' {
                // comment to end of line
                while let Some(c) = self.peek() {
                    self.pos += c.len_utf8();
                    if c == '\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    fn eat(&mut self, expected: char) -> Result<(), ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == expected => {
                self.pos += c.len_utf8();
                Ok(())
            }
            got => Err(self.error(format!("expected `{expected}`, found {got:?}"))),
        }
    }

    fn try_eat(&mut self, expected: char) -> bool {
        self.skip_ws();
        if self.peek() == Some(expected) {
            self.pos += expected.len_utf8();
            true
        } else {
            false
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn token(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '.' || c == '-' || c == '+' || c == 'e' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("expected a token".into()));
        }
        Ok(&self.text[start..self.pos])
    }
}

/// Parses a textual program; identifier parameters resolve through
/// `bindings` (missing names default to `1.0`).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or inconsistent qubit counts.
pub fn parse_program_with(
    text: &str,
    bindings: &HashMap<String, f64>,
) -> Result<PauliIR, ParseError> {
    let mut cur = Cursor { text, pos: 0 };
    let mut blocks: Vec<PauliBlock> = Vec::new();
    let mut n: Option<usize> = None;
    loop {
        cur.skip_ws();
        if cur.peek().is_none() {
            break;
        }
        cur.eat('{')?;
        let mut terms: Vec<PauliTerm> = Vec::new();
        let parameter = loop {
            cur.skip_ws();
            if cur.try_eat('(') {
                let ps_tok = cur.token()?;
                let string: PauliString = ps_tok
                    .parse()
                    .map_err(|e| cur.error(format!("bad pauli string `{ps_tok}`: {e}")))?;
                if let Some(n) = n {
                    if string.num_qubits() != n {
                        return Err(cur.error(format!(
                            "pauli string `{ps_tok}` has {} qubits, expected {n}",
                            string.num_qubits()
                        )));
                    }
                } else {
                    n = Some(string.num_qubits());
                }
                cur.eat(',')?;
                let w_tok = cur.token()?;
                let weight: f64 = w_tok
                    .parse()
                    .map_err(|_| cur.error(format!("bad weight `{w_tok}`")))?;
                cur.eat(')')?;
                cur.eat(',')?;
                terms.push(PauliTerm::new(string, weight));
            } else {
                // The block parameter: number or identifier.
                let tok = cur.token()?;
                let parameter = match tok.parse::<f64>() {
                    Ok(v) => Parameter::time(v),
                    Err(_) => Parameter::named(tok, *bindings.get(tok).unwrap_or(&1.0)),
                };
                cur.eat('}')?;
                break parameter;
            }
        };
        if terms.is_empty() {
            return Err(cur.error("block has no pauli strings".into()));
        }
        blocks.push(PauliBlock::new(terms, parameter));
        // `;` after each block, optional after the last.
        if !cur.try_eat(';') {
            cur.skip_ws();
            if cur.peek().is_some() {
                return Err(cur.error("expected `;` between blocks".into()));
            }
        }
    }
    let n = n.ok_or(ParseError {
        offset: 0,
        message: "empty program".into(),
    })?;
    let mut ir = PauliIR::new(n);
    for b in blocks {
        ir.push_block(b);
    }
    Ok(ir)
}

/// Parses a textual program with all named parameters bound to `1.0`.
///
/// # Errors
///
/// See [`parse_program_with`].
pub fn parse_program(text: &str) -> Result<PauliIR, ParseError> {
    parse_program_with(text, &HashMap::new())
}

/// Renders a program in the Fig. 5/6 surface syntax (round-trips through
/// [`parse_program`] up to parameter values).
pub fn print_program(ir: &PauliIR) -> String {
    let mut out = String::new();
    for b in ir.blocks() {
        out.push('{');
        for t in &b.terms {
            out.push_str(&format!("({}, {}), ", t.string, t.weight));
        }
        match &b.parameter.name {
            Some(name) => out.push_str(name),
            None => out.push_str(&format!("{}", b.parameter.value)),
        }
        out.push_str("};\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_uccsd_style_blocks() {
        let text = "
            {(IIXY, 0.5), (IIYX, -0.5), theta1};
            {(XYII, -0.5), (YXII, 0.5), theta2};
        ";
        let ir = parse_program(text).unwrap();
        assert_eq!(ir.num_qubits(), 4);
        assert_eq!(ir.num_blocks(), 2);
        assert_eq!(ir.blocks()[0].terms.len(), 2);
        assert_eq!(ir.blocks()[0].parameter.name.as_deref(), Some("theta1"));
        assert_eq!(ir.blocks()[0].terms[1].weight, -0.5);
    }

    #[test]
    fn parses_numeric_parameters_and_comments() {
        let text = "# H2 fragment\n{(IIIZ, 0.214), 0.5};\n{(IIZI, -0.37), 0.5}";
        let ir = parse_program(text).unwrap();
        assert_eq!(ir.num_blocks(), 2);
        assert_eq!(ir.blocks()[0].parameter.value, 0.5);
        assert!(ir.blocks()[0].parameter.name.is_none());
    }

    #[test]
    fn bindings_resolve_named_parameters() {
        let mut bindings = HashMap::new();
        bindings.insert("gamma".to_string(), 0.25);
        let ir = parse_program_with("{(ZZ, 1.0), gamma};", &bindings).unwrap();
        assert_eq!(ir.blocks()[0].parameter.value, 0.25);
        let unbound = parse_program("{(ZZ, 1.0), gamma};").unwrap();
        assert_eq!(unbound.blocks()[0].parameter.value, 1.0);
    }

    #[test]
    fn round_trips_through_printer() {
        let text = "{(IIXY, 0.5), (IIYX, -0.5), theta1};\n{(ZZII, 0.134), 1};\n";
        let ir = parse_program(text).unwrap();
        let printed = print_program(&ir);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(ir.num_blocks(), reparsed.num_blocks());
        for (a, b) in ir.blocks().iter().zip(reparsed.blocks()) {
            assert_eq!(a.terms, b.terms);
        }
    }

    #[test]
    fn rejects_inconsistent_widths() {
        let err = parse_program("{(ZZ, 1.0), 1}; {(ZZZ, 1.0), 1};").unwrap_err();
        assert!(err.message.contains("expected 2"), "{err}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("{(QQ, 1.0), 1};").is_err());
        assert!(parse_program("{(ZZ 1.0), 1};").is_err());
        assert!(parse_program("").is_err());
        assert!(parse_program("{1};").is_err());
    }

    #[test]
    fn error_offsets_point_at_the_failure() {
        // The bad string `ZQ` sits at bytes 18–19 of the second block;
        // the cursor reports the position just past the offending token.
        let err = parse_program("{(ZZ, 1.0), 1};\n{(ZQ, 1.0), 1};").unwrap_err();
        assert_eq!(err.offset, 20, "{err}");
        assert!(err.message.contains("bad pauli string `ZQ`"), "{err}");

        // Empty input fails at offset 0.
        let err = parse_program("").unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.message.contains("empty program"));

        // A width mismatch points into the second block, not the first.
        let err = parse_program("{(ZZ, 1.0), 1}; {(ZZZ, 1.0), 1};").unwrap_err();
        assert!(err.offset > 15, "{err}");
    }

    #[test]
    fn malformed_blocks_report_specific_errors() {
        // Missing separator between string and weight.
        let err = parse_program("{(ZZ 1.0), 1};").unwrap_err();
        assert!(err.message.contains("expected `,`"), "{err}");
        // Unparsable weight.
        let err = parse_program("{(ZZ, w8), 1};").unwrap_err();
        assert!(err.message.contains("bad weight `w8`"), "{err}");
        // Unterminated block.
        let err = parse_program("{(ZZ, 1.0), 1").unwrap_err();
        assert!(err.message.contains('}'), "{err}");
        // Missing `;` between blocks.
        let err = parse_program("{(ZZ, 1.0), 1} {(XX, 1.0), 1};").unwrap_err();
        assert!(err.message.contains("expected `;`"), "{err}");
        // A block with only a parameter and no strings.
        let err = parse_program("{theta};").unwrap_err();
        assert!(err.message.contains("no pauli strings"), "{err}");
        // Unknown identifier where a Pauli string belongs.
        let err = parse_program("{(theta, 1.0), 1};").unwrap_err();
        assert!(err.message.contains("bad pauli string `theta`"), "{err}");
    }

    #[test]
    fn printer_output_reparses_to_the_same_program() {
        // Fig. 5-style program covering every surface form: multi-string
        // blocks, named parameters, negative/fractional weights, comments.
        let text = "
            # UCCSD fragment
            {(IIXY, 0.5), (IIYX, -0.5), theta1};
            {(XYII, -0.5), (YXII, 0.5), theta2};
            {(ZZII, 0.134), 0.5};
            {(IZIZ, -0.25), (ZIZI, 0.75), 2};
        ";
        let ir = parse_program(text).unwrap();
        let printed = print_program(&ir);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(ir.num_qubits(), reparsed.num_qubits());
        assert_eq!(ir.num_blocks(), reparsed.num_blocks());
        for (a, b) in ir.blocks().iter().zip(reparsed.blocks()) {
            assert_eq!(a.terms, b.terms);
            assert_eq!(a.parameter.name, b.parameter.name);
        }
        // print → parse → print is a fixpoint.
        assert_eq!(printed, print_program(&reparsed));
    }

    #[test]
    fn numeric_round_trip_preserves_parameter_values() {
        let text = "{(ZZY, 0.5), 0.125}; {(ZZI, -0.3), 2.5};";
        let ir = parse_program(text).unwrap();
        let reparsed = parse_program(&print_program(&ir)).unwrap();
        for (a, b) in ir.blocks().iter().zip(reparsed.blocks()) {
            assert_eq!(a.parameter.value, b.parameter.value);
            assert_eq!(a, b);
        }
    }
}
