//! Intra-compile data parallelism: deterministic sharding over scoped
//! `std::thread` workers.
//!
//! One compile job can fan its per-layer/per-block synthesis work across
//! threads without changing the compiled artifact by one bit: work is
//! split into *contiguous chunks in input order*, each chunk computes an
//! independent result, and results are merged back **in chunk order**.
//! Every reduction a caller builds on top must replicate the sequential
//! tie-breaking exactly (first-max scans stay first-max across chunk
//! boundaries, and so on) — the cross-crate property tests assert
//! bit-identity against the sequential path for the whole pipeline.
//!
//! No external runtime: threads are `std::thread::scope` workers, spawned
//! per parallel region and joined before it returns, so borrowing the
//! caller's slices needs no `'static` bounds (rayon is unavailable in the
//! offline build environment by design).

/// Hook invoked around each parallel shard, so an embedding layer (the
/// `ph_engine` pass manager) can wrap shard execution in telemetry spans
/// without `paulihedral` depending on the telemetry crate.
///
/// `stage` names the parallel region (e.g. `ft.junctions`), `shard` is the
/// chunk index within it. Implementations must call `work` exactly once;
/// they run on the worker thread, so per-thread span parents attach to
/// the shard's own thread in the exported trace.
pub trait ShardObserver: Sync {
    /// Runs one shard, optionally bracketed by instrumentation.
    fn shard(&self, stage: &str, shard: usize, work: &mut dyn FnMut());
}

/// Resolved intra-compile parallelism context handed to the synthesis
/// passes: a worker budget plus an optional [`ShardObserver`].
#[derive(Clone, Copy)]
pub struct Intra<'a> {
    threads: usize,
    observer: Option<&'a dyn ShardObserver>,
}

impl std::fmt::Debug for Intra<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Intra")
            .field("threads", &self.threads)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl<'a> Intra<'a> {
    /// The sequential context: one worker, no observer. All parallel
    /// helpers degrade to plain in-place loops.
    pub fn sequential() -> Intra<'a> {
        Intra {
            threads: 1,
            observer: None,
        }
    }

    /// Resolves an `intra_threads` knob: `0` means one worker per
    /// available CPU, any other value is taken literally (clamped to at
    /// least 1).
    pub fn new(intra_threads: usize) -> Intra<'a> {
        let threads = match intra_threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        };
        Intra {
            threads: threads.max(1),
            observer: None,
        }
    }

    /// Attaches a shard observer (builder-style).
    pub fn with_observer(mut self, observer: &'a dyn ShardObserver) -> Intra<'a> {
        self.observer = Some(observer);
        self
    }

    /// The resolved worker budget (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// How many chunks `len` items split into under this budget: at most
    /// `threads`, and no more than one chunk per `grain` items so tiny
    /// inputs never pay thread-spawn overhead.
    fn chunk_count(&self, len: usize, grain: usize) -> usize {
        self.threads.min(len / grain.max(1)).max(1)
    }

    /// Runs `work` over contiguous chunks of `items` on scoped workers and
    /// returns the chunk results **in chunk order**. `work` receives
    /// `(chunk_index, offset_of_chunk_start, chunk)`.
    ///
    /// With one effective chunk (a sequential context, or fewer than
    /// `grain` items per worker) the closure runs inline on the caller's
    /// thread — same result, no spawn.
    pub fn par_chunks<T, R, F>(&self, stage: &str, items: &[T], grain: usize, work: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, usize, &[T]) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let chunks = self.chunk_count(items.len(), grain);
        if chunks <= 1 {
            return vec![work(0, 0, items)];
        }
        let base = items.len() / chunks;
        let extra = items.len() % chunks;
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(chunks, || None);
        std::thread::scope(|scope| {
            let work = &work;
            let mut start = 0usize;
            for (ci, slot) in results.iter_mut().enumerate() {
                let len = base + usize::from(ci < extra);
                let chunk = &items[start..start + len];
                let offset = start;
                start += len;
                let observer = self.observer;
                scope.spawn(move || {
                    let mut run = || *slot = Some(work(ci, offset, chunk));
                    match observer {
                        Some(o) => o.shard(stage, ci, &mut run),
                        None => run(),
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every shard ran"))
            .collect()
    }

    /// Parallel per-item map preserving input order: `f(index, item)` for
    /// every item, results concatenated across chunks.
    pub fn par_map<T, R, F>(&self, stage: &str, items: &[T], grain: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let nested = self.par_chunks(stage, items, grain, |_, offset, chunk| {
            chunk
                .iter()
                .enumerate()
                .map(|(i, item)| f(offset + i, item))
                .collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(items.len());
        for chunk in nested {
            out.extend(chunk);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 3, 8] {
            let intra = Intra::new(threads);
            let items: Vec<usize> = (0..103).collect();
            let out = intra.par_map("test", &items, 1, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..103).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_reports_offsets_and_merges_in_order() {
        let intra = Intra::new(4);
        let items: Vec<usize> = (0..10).collect();
        let out = intra.par_chunks("test", &items, 1, |ci, offset, chunk| {
            assert_eq!(chunk[0], offset);
            (ci, offset, chunk.len())
        });
        assert_eq!(out.len(), 4);
        assert!(out.windows(2).all(|w| w[0].1 < w[1].1), "{out:?}");
        assert_eq!(out.iter().map(|c| c.2).sum::<usize>(), 10);
    }

    #[test]
    fn grain_keeps_small_inputs_inline() {
        // 7 items at grain 8 → one chunk regardless of the budget.
        let intra = Intra::new(16);
        let items: Vec<usize> = (0..7).collect();
        let out = intra.par_chunks("test", &items, 8, |_, _, chunk| chunk.len());
        assert_eq!(out, vec![7]);
        assert!(intra
            .par_chunks("test", &[] as &[u8], 1, |_, _, c| c.len())
            .is_empty());
    }

    #[test]
    fn zero_resolves_to_available_parallelism() {
        assert!(Intra::new(0).threads() >= 1);
        assert_eq!(Intra::new(3).threads(), 3);
        assert_eq!(Intra::sequential().threads(), 1);
    }

    #[test]
    fn observer_sees_every_shard() {
        struct Counter(AtomicUsize);
        impl ShardObserver for Counter {
            fn shard(&self, stage: &str, _shard: usize, work: &mut dyn FnMut()) {
                assert_eq!(stage, "test.stage");
                self.0.fetch_add(1, Ordering::Relaxed);
                work();
            }
        }
        let counter = Counter(AtomicUsize::new(0));
        let intra = Intra::new(4).with_observer(&counter);
        let items: Vec<usize> = (0..8).collect();
        let out = intra.par_map("test.stage", &items, 1, |_, &x| x + 1);
        assert_eq!(out.len(), 8);
        assert_eq!(counter.0.load(Ordering::Relaxed), 4);
    }
}
