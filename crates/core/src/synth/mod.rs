//! Technology-dependent block-wise optimization passes (paper §5).
//!
//! * [`chain`] — Pauli-gadget emission with adaptive CNOT-chain ordering
//!   (the shared synthesis machinery),
//! * [`ft`] — the fault-tolerant backend pass (Alg. 2): maximize gate
//!   cancellation, mapping is free,
//! * [`sc`] — the superconducting backend pass (Alg. 3): tree embedding in
//!   the coupling map, SWAP-aware synthesis, layout tracking,
//! * [`par`] — intra-compile data parallelism: deterministic sharding
//!   over scoped `std::thread` workers, used by both backend passes.

pub mod chain;
pub mod ft;
pub mod par;
pub mod sc;
