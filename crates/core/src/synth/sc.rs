//! Block-wise optimization for the superconducting backend (paper Alg. 3).
//!
//! The SC pass is mapping-aware: it embeds the CNOT tree of each Pauli
//! string directly in the device coupling map so the gadget ladders need no
//! per-CNOT routing. Per layer it processes the largest block first
//! (critical path): the block's active qubits are pulled together through
//! lowest-error shortest paths (persistent SWAPs — the embedded-tree
//! transformations of Fig. 10(d)), each string is synthesized as a BFS tree
//! fold over its active nodes, and strings are emitted cheapest-routing-
//! first (already-adjacent gadgets are free), tie-broken by operator
//! overlap for cancellation. Small blocks whose active regions avoid the
//! anchor's run in parallel; conflicting ones are deferred to
//! `remain_layers` and compiled at the end ordered by cumulative
//! active-qubit distance (Alg. 3 lines 18–23).

use pauli::PauliString;
use qcircuit::peephole::{self, PeepholeReport};
use qcircuit::{Circuit, Gate};
use qdevice::{CouplingMap, Layout, NoiseModel};

use crate::ir::PauliBlock;
use crate::schedule::Layer;
use crate::synth::chain::{basis_in, basis_out};
use crate::synth::par::Intra;

/// Result of SC-backend synthesis: a hardware-conformant physical circuit
/// plus the layout bookkeeping needed to interpret it.
#[derive(Clone, Debug)]
pub struct ScResult {
    /// The physical circuit (only coupled CNOT/SWAP pairs are used).
    pub circuit: Circuit,
    /// Initial physical position of every logical qubit.
    pub initial_l2p: Vec<usize>,
    /// Final physical position of every logical qubit.
    pub final_l2p: Vec<usize>,
    /// The `(string, θ)` sequence in emission order.
    pub emitted: Vec<(PauliString, f64)>,
    /// What the final peephole pass cancelled.
    pub peephole: PeepholeReport,
}

/// Why a small block could not be processed in parallel with its layer's
/// anchor.
struct Deferred;

/// Picks the initial layout (Alg. 3 line 1): logical qubits go to the most
/// connected subgraph of the device, assigned greedily so strongly
/// interacting logical qubits (co-active in many strings) sit close
/// together.
fn choose_initial_layout(
    n_logical: usize,
    layers: &[Layer],
    device: &CouplingMap,
    intra: Intra<'_>,
) -> Vec<usize> {
    let subgraph = device.most_connected_subgraph(n_logical);
    // Interaction weights: co-activity counts over all strings.
    let mut weight = vec![vec![0u64; n_logical]; n_logical];
    let mut total = vec![0u64; n_logical];
    for layer in layers {
        for block in &layer.blocks {
            for term in &block.terms {
                let sup = term.string.support();
                for (i, &a) in sup.iter().enumerate() {
                    for &b in &sup[i + 1..] {
                        weight[a][b] += 1;
                        weight[b][a] += 1;
                        total[a] += 1;
                        total[b] += 1;
                    }
                }
            }
        }
    }
    let mut l2p = vec![usize::MAX; n_logical];
    let mut free: Vec<usize> = subgraph.clone();
    let mut placed: Vec<usize> = Vec::new();
    // Seed: the busiest logical qubit on the best-connected subgraph node.
    let seed = (0..n_logical).max_by_key(|&l| total[l]).unwrap_or(0);
    let seat = free
        .iter()
        .position(|&p| {
            device
                .neighbors(p)
                .iter()
                .filter(|&&q| subgraph.contains(&q))
                .count()
                == free
                    .iter()
                    .map(|&x| {
                        device
                            .neighbors(x)
                            .iter()
                            .filter(|&&q| subgraph.contains(&q))
                            .count()
                    })
                    .max()
                    .unwrap_or(0)
        })
        .unwrap_or(0);
    l2p[seed] = free.remove(seat);
    placed.push(seed);
    // The two argbest scans below are O(candidates × placed) each and run
    // once per placement — the cubic hot spot at 100+ logical qubits, and
    // each candidate's score is independent. The chunked reductions
    // replicate the sequential tie-breaking exactly: `max_by_key` keeps
    // the *last* maximum (`>=` in-chunk, later chunks win the merge) and
    // `min_by_key` keeps the *first* minimum (`<` in-chunk, earlier
    // chunks win the merge).
    const GRAIN: usize = 64;
    while placed.len() < n_logical {
        // Next logical: strongest link into the placed set.
        let unplaced: Vec<usize> = (0..n_logical).filter(|&l| l2p[l] == usize::MAX).collect();
        let next = intra
            .par_chunks("sc.layout.next", &unplaced, GRAIN, |_, _, chunk| {
                let mut best: Option<(u64, u64, usize)> = None;
                for &l in chunk {
                    let w = placed.iter().map(|&p| weight[l][p]).sum::<u64>();
                    if best.is_none_or(|(bw, bt, _)| (w, total[l]) >= (bw, bt)) {
                        best = Some((w, total[l], l));
                    }
                }
                best.expect("non-empty chunk")
            })
            .into_iter()
            .reduce(|acc, c| if (c.0, c.1) >= (acc.0, acc.1) { c } else { acc })
            .expect("unplaced logical exists")
            .2;
        // Seat minimizing weighted distance to its placed partners.
        let fi = intra
            .par_chunks("sc.layout.seat", &free, GRAIN, |_, offset, chunk| {
                let mut best: Option<(u64, usize)> = None;
                for (k, &cand) in chunk.iter().enumerate() {
                    let c = placed
                        .iter()
                        .map(|&p| weight[next][p] * u64::from(device.distance(cand, l2p[p])))
                        .sum::<u64>();
                    if best.is_none_or(|(bc, _)| c < bc) {
                        best = Some((c, offset + k));
                    }
                }
                best.expect("non-empty chunk")
            })
            .into_iter()
            .reduce(|acc, c| if c.0 < acc.0 { c } else { acc })
            .expect("free seat exists")
            .1;
        l2p[next] = free.remove(fi);
        placed.push(next);
    }
    l2p
}

/// Connects the current positions of `logicals` into one component of the
/// coupling graph by persistent SWAPs along lowest-cost paths.
///
/// In constrained mode (`allowed = Some`) every path node must be allowed;
/// otherwise the caller's block is deferred. Touched nodes are recorded in
/// `touched`.
fn connect_positions(
    logicals: &[usize],
    device: &CouplingMap,
    noise: Option<&NoiseModel>,
    layout: &mut Layout,
    circuit: &mut Circuit,
    allowed: Option<&[bool]>,
    touched: &mut [bool],
) -> Result<(), Deferred> {
    let ok = |p: usize| allowed.is_none_or(|m| m[p]);
    let cost = |u: usize, v: usize| -> f64 {
        if !ok(u) || !ok(v) {
            return 1e18;
        }
        match noise {
            Some(nm) => nm.cx_error(u, v),
            None => 1.0,
        }
    };
    if !logicals.iter().all(|&l| ok(layout.phys(l))) {
        return Err(Deferred);
    }
    loop {
        let positions: Vec<usize> = logicals.iter().map(|&l| layout.phys(l)).collect();
        for &p in &positions {
            touched[p] = true;
        }
        let comps = device.components_within(&positions);
        if comps.len() <= 1 {
            return Ok(());
        }
        // Merge the component closest to the largest one into it.
        let main = comps
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.len())
            .expect("non-empty")
            .0;
        let mut in_main = vec![false; device.num_qubits()];
        for &p in &comps[main] {
            in_main[p] = true;
        }
        let mut best: Option<Vec<usize>> = None;
        for (ci, comp) in comps.iter().enumerate() {
            if ci == main {
                continue;
            }
            for &p in comp {
                let path = device.shortest_path_to_set(p, &in_main, cost);
                if path.is_empty() {
                    continue;
                }
                if best.as_ref().is_none_or(|b| path.len() < b.len()) {
                    best = Some(path);
                }
            }
        }
        let Some(path) = best else {
            return Err(Deferred);
        };
        if path.iter().any(|&p| !ok(p)) {
            return Err(Deferred);
        }
        // Swap the component's qubit up to the node adjacent to main.
        for w in path[..path.len() - 1].windows(2) {
            circuit.push(Gate::Swap(w[0], w[1]));
            layout.swap_physical(w[0], w[1]);
            touched[w[0]] = true;
            touched[w[1]] = true;
        }
    }
}

/// Synthesizes one Pauli string whose active positions are already
/// connected: BFS-tree fold (deepest first) into a root, `Rz`, mirror.
fn synth_connected_string(
    string: &PauliString,
    theta: f64,
    root_logical: usize,
    device: &CouplingMap,
    layout: &Layout,
    circuit: &mut Circuit,
) {
    let support = string.support();
    for &l in &support {
        if let Some(g) = basis_in(layout.phys(l), string.get(l)) {
            circuit.push(g);
        }
    }
    if support.len() == 1 {
        circuit.push(Gate::Rz(layout.phys(support[0]), -2.0 * theta));
    } else {
        let root = layout.phys(root_logical);
        let positions: Vec<usize> = support.iter().map(|&l| layout.phys(l)).collect();
        let mut in_set = vec![false; device.num_qubits()];
        for &p in &positions {
            in_set[p] = true;
        }
        // BFS tree over the active positions from the root.
        let mut parent = vec![usize::MAX; device.num_qubits()];
        let mut depth = vec![usize::MAX; device.num_qubits()];
        let mut queue = std::collections::VecDeque::from([root]);
        depth[root] = 0;
        while let Some(u) = queue.pop_front() {
            for &v in device.neighbors(u) {
                if in_set[v] && depth[v] == usize::MAX {
                    depth[v] = depth[u] + 1;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        debug_assert!(
            positions.iter().all(|&p| depth[p] != usize::MAX),
            "active positions must be connected before synthesis"
        );
        let mut order: Vec<usize> = positions.iter().copied().filter(|&p| p != root).collect();
        order.sort_by(|&a, &b| depth[b].cmp(&depth[a]));
        for &node in &order {
            circuit.push(Gate::Cx(node, parent[node]));
        }
        circuit.push(Gate::Rz(root, -2.0 * theta));
        for &node in order.iter().rev() {
            circuit.push(Gate::Cx(node, parent[node]));
        }
    }
    for &l in &support {
        if let Some(g) = basis_out(layout.phys(l), string.get(l)) {
            circuit.push(g);
        }
    }
}

/// Current routing cost of a string: SWAPs needed to connect its active
/// positions (lower bound: components − 1 path segments).
fn routing_cost(string: &PauliString, device: &CouplingMap, layout: &Layout) -> u64 {
    let positions: Vec<usize> = string.support().iter().map(|&l| layout.phys(l)).collect();
    if positions.len() <= 1 {
        return 0;
    }
    let comps = device.components_within(&positions);
    if comps.len() <= 1 {
        return 0;
    }
    // Sum of nearest-neighbor distances between components (greedy chain).
    let mut cost = 0u64;
    for (ci, comp) in comps.iter().enumerate() {
        if ci == 0 {
            continue;
        }
        let d = comp
            .iter()
            .flat_map(|&p| comps[0].iter().map(move |&q| device.distance(p, q)))
            .min()
            .unwrap_or(0);
        cost += u64::from(d.saturating_sub(1));
    }
    cost
}

/// Compiles one block onto the device (Alg. 3 lines 3–17). Returns the
/// physical nodes it touched (for the parallel small-block bookkeeping).
#[allow(clippy::too_many_arguments)]
fn process_block(
    block: &PauliBlock,
    device: &CouplingMap,
    noise: Option<&NoiseModel>,
    layout: &mut Layout,
    circuit: &mut Circuit,
    emitted: &mut Vec<(PauliString, f64)>,
    prev_string: &mut Option<PauliString>,
    allowed: Option<&[bool]>,
    intra: Intra<'_>,
) -> Result<Vec<usize>, Deferred> {
    let n_phys = device.num_qubits();
    let mut touched = vec![false; n_phys];
    let active = block.active_qubits();
    if active.is_empty() {
        return Ok(Vec::new());
    }
    // In constrained mode, bail out early on a conflicting region; then
    // pull the block's qubits together (the block-level embedded tree).
    connect_positions(
        &active,
        device,
        noise,
        layout,
        circuit,
        allowed,
        &mut touched,
    )?;

    // Root preference: core qubits (active in every string, Alg. 3 line 4).
    let core = {
        let c = block.core_qubits();
        if c.is_empty() {
            active.clone()
        } else {
            c
        }
    };

    // Emit strings cheapest-routing-first (already-connected gadgets are
    // free), tie-broken by operator overlap with the previous string. When
    // nothing is free, pick the SWAP with the best *block-scope* score —
    // this is the "much larger search scope" of §6.2: the swap is judged
    // against every pending string of the block, not one gadget.
    let ok = |p: usize| allowed.is_none_or(|m| m[p]);
    let mut items: Vec<(PauliString, f64)> = block
        .terms
        .iter()
        .enumerate()
        .map(|(i, t)| (t.string.clone(), block.theta(i)))
        .filter(|(s, _)| !s.is_identity())
        .collect();
    // Per-item selection keys include the item index, so the key order is
    // total and a chunked parallel min equals the sequential
    // `min_by_key` exactly.
    const ITEM_GRAIN: usize = 32;
    while !items.is_empty() {
        let idx = {
            let lay: &Layout = layout;
            let prev: &Option<PauliString> = prev_string;
            intra
                .par_chunks("sc.select", &items, ITEM_GRAIN, |_, offset, chunk| {
                    chunk
                        .iter()
                        .enumerate()
                        .map(|(k, (s, _))| {
                            let cost = routing_cost(s, device, lay);
                            let overlap = prev.as_ref().map_or(0, |p| s.overlap(p));
                            (cost, usize::MAX - overlap, offset + k)
                        })
                        .min()
                        .expect("non-empty chunk")
                })
                .into_iter()
                .min()
                .expect("non-empty")
                .2
        };
        if routing_cost(&items[idx].0, device, layout) > 0 {
            // Block-scope greedy SWAP search.
            let total = |layout: &Layout| -> u64 {
                items
                    .iter()
                    .map(|(s, _)| routing_cost(s, device, layout))
                    .sum()
            };
            let base_free = items
                .iter()
                .filter(|(s, _)| routing_cost(s, device, layout) == 0)
                .count();
            let base_total = total(layout);
            let mut cands: Vec<(usize, usize)> = Vec::new();
            for (s, _) in &items {
                for &l in &s.support() {
                    let p = layout.phys(l);
                    for &q in device.neighbors(p) {
                        let e = (p.min(q), p.max(q));
                        if ok(p) && ok(q) && !cands.contains(&e) {
                            cands.push(e);
                        }
                    }
                }
            }
            // Scoring a candidate clones the layout and re-routes every
            // pending string — the expensive part — so candidates shard
            // across workers. `max_by` keeps the *last* maximum, so the
            // in-chunk fold uses `!= Less` and later chunks win the merge.
            let swap_cmp = |x: &(usize, u64, (usize, usize)), y: &(usize, u64, (usize, usize))| {
                x.0.cmp(&y.0).then(y.1.cmp(&x.1))
            };
            let scored = {
                let lay: &Layout = layout;
                intra
                    .par_chunks("sc.swap_score", &cands, 8, |_, _, chunk| {
                        let mut best: Option<(usize, u64, (usize, usize))> = None;
                        for &(a, b) in chunk {
                            let mut l = lay.clone();
                            l.swap_physical(a, b);
                            let free = items
                                .iter()
                                .filter(|(s, _)| routing_cost(s, device, &l) == 0)
                                .count();
                            let cand = (free, total(&l), (a, b));
                            if best
                                .as_ref()
                                .is_none_or(|be| swap_cmp(&cand, be) != std::cmp::Ordering::Less)
                            {
                                best = Some(cand);
                            }
                        }
                        best
                    })
                    .into_iter()
                    .flatten()
                    .fold(None::<(usize, u64, (usize, usize))>, |acc, c| match acc {
                        Some(a) if swap_cmp(&c, &a) == std::cmp::Ordering::Less => Some(a),
                        _ => Some(c),
                    })
            };
            match scored {
                Some((free, t, (a, b))) if free > base_free || t < base_total => {
                    circuit.push(Gate::Swap(a, b));
                    layout.swap_physical(a, b);
                    touched[a] = true;
                    touched[b] = true;
                    continue; // re-evaluate which string is now cheapest
                }
                _ => {
                    // Local minimum: route the chosen string directly.
                    connect_positions(
                        &items[idx].0.support(),
                        device,
                        noise,
                        layout,
                        circuit,
                        allowed,
                        &mut touched,
                    )?;
                }
            }
        }
        let (string, theta) = items.remove(idx);
        connect_positions(
            &string.support(),
            device,
            noise,
            layout,
            circuit,
            allowed,
            &mut touched,
        )?;
        let root_logical = *string
            .support()
            .iter()
            .find(|l| core.contains(l))
            .unwrap_or(&string.support()[0]);
        synth_connected_string(&string, theta, root_logical, device, layout, circuit);
        for &l in &string.support() {
            touched[layout.phys(l)] = true;
        }
        *prev_string = Some(string.clone());
        emitted.push((string, theta));
    }
    Ok((0..n_phys).filter(|&p| touched[p]).collect())
}

/// Compiles scheduled layers onto a superconducting device (Alg. 3)
/// *without* the final peephole clean-up. The pass manager in `ph_engine`
/// uses this to run (and instrument) the peephole as its own pass; the
/// returned `peephole` report is all zeros.
///
/// # Panics
///
/// Panics if the device is disconnected or has fewer qubits than the
/// program.
pub fn synthesize_unoptimized(
    n_logical: usize,
    layers: &[Layer],
    device: &CouplingMap,
    noise: Option<&NoiseModel>,
) -> ScResult {
    synthesize_unoptimized_with(n_logical, layers, device, noise, Intra::sequential())
}

/// [`synthesize_unoptimized`] with an explicit intra-compile parallelism
/// context. The block emission order is inherently sequential (the layout
/// is carried from block to block), but the argbest scans inside — layout
/// placement, per-string selection, block-scope SWAP scoring — shard
/// across workers with sequential tie semantics, so the result is
/// bit-identical for every worker count.
///
/// # Panics
///
/// Panics if the device is disconnected or has fewer qubits than the
/// program.
pub fn synthesize_unoptimized_with(
    n_logical: usize,
    layers: &[Layer],
    device: &CouplingMap,
    noise: Option<&NoiseModel>,
    intra: Intra<'_>,
) -> ScResult {
    assert!(
        device.is_connected(),
        "device coupling map must be connected"
    );
    assert!(
        n_logical <= device.num_qubits(),
        "program needs {n_logical} qubits, device has {}",
        device.num_qubits()
    );
    // Initial layout on the most connected subgraph (line 1).
    let initial = choose_initial_layout(n_logical, layers, device, intra);
    let mut layout = Layout::from_l2p(device.num_qubits(), initial.clone());
    let mut circuit = Circuit::new(device.num_qubits());
    let mut emitted: Vec<(PauliString, f64)> = Vec::new();
    let mut prev_string: Option<PauliString> = None;
    let mut remain: Vec<PauliBlock> = Vec::new();

    for layer in layers {
        let mut used = vec![false; device.num_qubits()];
        for (i, block) in layer.blocks.iter().enumerate() {
            if i == 0 {
                // The layer's anchor (largest block, critical path).
                let nodes = process_block(
                    block,
                    device,
                    noise,
                    &mut layout,
                    &mut circuit,
                    &mut emitted,
                    &mut prev_string,
                    None,
                    intra,
                )
                .unwrap_or_else(|_| unreachable!("unconstrained blocks never defer"));
                for p in nodes {
                    used[p] = true;
                }
            } else {
                let free: Vec<bool> = used.iter().map(|&u| !u).collect();
                match process_block(
                    block,
                    device,
                    noise,
                    &mut layout,
                    &mut circuit,
                    &mut emitted,
                    &mut prev_string,
                    Some(&free),
                    intra,
                ) {
                    Ok(nodes) => {
                        for p in nodes {
                            used[p] = true;
                        }
                    }
                    Err(Deferred) => remain.push(block.clone()),
                }
            }
        }
    }

    // Deferred blocks, cheapest (closest active qubits) first (lines 21–23).
    while !remain.is_empty() {
        let idx = (0..remain.len())
            .min_by_key(|&i| {
                let pos: Vec<usize> = remain[i]
                    .active_qubits()
                    .iter()
                    .map(|&l| layout.phys(l))
                    .collect();
                let mut d = 0u64;
                for (k, &a) in pos.iter().enumerate() {
                    for &b in &pos[k + 1..] {
                        d += u64::from(device.distance(a, b));
                    }
                }
                d
            })
            .expect("remain non-empty");
        let block = remain.swap_remove(idx);
        let _ = process_block(
            &block,
            device,
            noise,
            &mut layout,
            &mut circuit,
            &mut emitted,
            &mut prev_string,
            None,
            intra,
        )
        .map_err(|_| unreachable!("unconstrained blocks never defer"));
    }

    ScResult {
        circuit,
        initial_l2p: initial,
        final_l2p: layout.l2p().to_vec(),
        emitted,
        peephole: PeepholeReport::default(),
    }
}

/// Compiles scheduled layers onto a superconducting device (Alg. 3).
///
/// # Panics
///
/// Panics if the device is disconnected or has fewer qubits than the
/// program.
pub fn synthesize(
    n_logical: usize,
    layers: &[Layer],
    device: &CouplingMap,
    noise: Option<&NoiseModel>,
) -> ScResult {
    synthesize_with(n_logical, layers, device, noise, Intra::sequential())
}

/// [`synthesize`] with an explicit intra-compile parallelism context (the
/// final peephole pass is a global sequential sweep either way).
///
/// # Panics
///
/// Panics if the device is disconnected or has fewer qubits than the
/// program.
pub fn synthesize_with(
    n_logical: usize,
    layers: &[Layer],
    device: &CouplingMap,
    noise: Option<&NoiseModel>,
    intra: Intra<'_>,
) -> ScResult {
    let mut r = synthesize_unoptimized_with(n_logical, layers, device, noise, intra);
    r.peephole = peephole::optimize(&mut r.circuit);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Parameter, PauliBlock, PauliIR};
    use crate::schedule;
    use pauli::PauliTerm;
    use qdevice::devices;

    fn ir_of(blocks: Vec<Vec<&str>>) -> PauliIR {
        let n = blocks[0][0].len();
        let mut ir = PauliIR::new(n);
        for strings in blocks {
            ir.push_block(PauliBlock::new(
                strings
                    .iter()
                    .map(|s| PauliTerm::new(s.parse().unwrap(), 1.0))
                    .collect(),
                Parameter::time(0.1),
            ));
        }
        ir
    }

    fn check_conformant(r: &ScResult, device: &CouplingMap) {
        assert!(r
            .circuit
            .respects_connectivity(|a, b| device.has_edge(a, b)));
    }

    #[test]
    fn zz_chain_on_linear_device() {
        let device = devices::linear(4);
        let ir = ir_of(vec![vec!["IIZZ"], vec!["IZZI"], vec!["ZZII"]]);
        let layers = schedule::schedule_gco(&ir);
        let r = synthesize(4, &layers, &device, None);
        check_conformant(&r, &device);
        assert_eq!(r.emitted.len(), 3);
        // Adjacent ZZ pairs need no SWAPs on a line if the layout is the
        // natural one.
        assert_eq!(r.circuit.stats().swap, 0, "{}", r.circuit);
    }

    #[test]
    fn ring_on_a_line_requires_routing() {
        // A 5-cycle of ZZ blocks cannot embed in a path: at least one pair
        // is distant under any layout, so routing CNOTs must appear.
        let device = devices::linear(5);
        let ir = ir_of(vec![
            vec!["IIIZZ"],
            vec!["IIZZI"],
            vec!["IZZII"],
            vec!["ZZIII"],
            vec!["ZIIIZ"],
        ]);
        let layers = schedule::schedule_gco(&ir);
        let r = synthesize(5, &layers, &device, None);
        check_conformant(&r, &device);
        assert!(
            r.circuit.mapped_stats().cnot > 10,
            "expected routing overhead beyond the 10 gadget CNOTs, got {}",
            r.circuit.mapped_stats().cnot
        );
    }

    #[test]
    fn fig4b_case_no_swap_needed_with_good_root() {
        // ZZZ on a linear 3-qubit device: the embedded-tree synthesis uses
        // the middle qubit as meeting point, so no SWAP is required
        // (Fig. 4(b) "no swap required in alternative synthesis").
        let device = devices::linear(3);
        let ir = ir_of(vec![vec!["ZZZ"]]);
        let layers = schedule::schedule_gco(&ir);
        let r = synthesize(3, &layers, &device, None);
        check_conformant(&r, &device);
        assert_eq!(r.circuit.stats().swap, 0, "{}", r.circuit);
        assert_eq!(r.circuit.stats().cnot, 4);
    }

    #[test]
    fn disjoint_blocks_share_a_layer_without_interference() {
        let device = devices::grid(2, 3);
        let ir = ir_of(vec![vec!["IIIIZZ"], vec!["ZZIIII"]]);
        let layers = schedule::schedule_depth(&ir);
        let r = synthesize(6, &layers, &device, None);
        check_conformant(&r, &device);
        assert_eq!(r.emitted.len(), 2);
    }

    #[test]
    fn multi_string_block_reuses_tree() {
        let device = devices::linear(4);
        let ir = ir_of(vec![vec!["IXXY", "IYYX"]]);
        let layers = schedule::schedule_gco(&ir);
        let r = synthesize(4, &layers, &device, None);
        check_conformant(&r, &device);
        assert_eq!(r.emitted.len(), 2);
    }

    #[test]
    fn weight_one_strings_are_local() {
        let device = devices::linear(3);
        let ir = ir_of(vec![vec!["IIX"], vec!["IZI"]]);
        let layers = schedule::schedule_gco(&ir);
        let r = synthesize(3, &layers, &device, None);
        check_conformant(&r, &device);
        assert_eq!(r.circuit.stats().cnot, 0);
        assert_eq!(r.circuit.stats().swap, 0);
    }

    #[test]
    fn qaoa_style_single_block_compiles_on_manhattan() {
        // A ring of ZZ terms in one block on the 65-qubit device.
        let n = 8;
        let mut terms = Vec::new();
        for i in 0..n {
            let mut s = PauliString::identity(n);
            s.set(i, pauli::Pauli::Z);
            s.set((i + 1) % n, pauli::Pauli::Z);
            terms.push(PauliTerm::new(s, 1.0));
        }
        let ir = PauliIR::single_block(n, terms, Parameter::named("gamma", 0.3));
        let device = devices::manhattan_65();
        let layers = schedule::schedule_depth(&ir);
        let r = synthesize(n, &layers, &device, None);
        check_conformant(&r, &device);
        assert_eq!(r.emitted.len(), n);
    }

    use pauli::PauliString;

    #[test]
    fn final_layout_is_a_permutation() {
        let device = devices::grid(2, 4);
        let ir = ir_of(vec![vec!["ZIIIIIIZ"], vec!["IZZIIIII"], vec!["XIIXIIII"]]);
        let layers = schedule::schedule_depth(&ir);
        let r = synthesize(8, &layers, &device, None);
        let mut seen = vec![false; device.num_qubits()];
        for &p in &r.final_l2p {
            assert!(!seen[p], "physical qubit {p} assigned twice");
            seen[p] = true;
        }
    }

    #[test]
    fn noise_aware_routing_is_conformant_and_complete() {
        use qdevice::NoiseModel;
        let device = devices::grid(2, 3);
        let noise = NoiseModel::synthetic(&device, 5);
        let ir = ir_of(vec![vec!["ZIIIIZ"], vec!["IXXIII"], vec!["ZZZZZZ"]]);
        let layers = schedule::schedule_gco(&ir);
        let r = synthesize(6, &layers, &device, Some(&noise));
        check_conformant(&r, &device);
        assert_eq!(r.emitted.len(), 3);
    }

    #[test]
    fn star_block_on_a_line_routes_all_gadgets() {
        // A star (0-1, 0-2, 0-3) cannot be all-adjacent on a path: the
        // block-scope swap search must still emit all three gadgets with
        // bounded routing overhead.
        let device = devices::linear(4);
        let mut terms = Vec::new();
        for (a, b) in [(0usize, 1usize), (0, 2), (0, 3)] {
            let mut s = PauliString::identity(4);
            s.set(a, pauli::Pauli::Z);
            s.set(b, pauli::Pauli::Z);
            terms.push(PauliTerm::new(s, 1.0));
        }
        let ir = PauliIR::single_block(4, terms, Parameter::named("g", 0.2));
        let layers = schedule::schedule_gco(&ir);
        let r = synthesize(4, &layers, &device, None);
        check_conformant(&r, &device);
        assert_eq!(r.emitted.len(), 3);
        let s = r.circuit.mapped_stats();
        assert!(s.cnot >= 6, "three gadgets need at least 6 CNOTs");
        assert!(
            s.cnot <= 6 + 9,
            "routing should cost at most ~3 SWAPs, got {}",
            s.cnot
        );
    }
}
