//! Pauli-gadget emission with adaptive CNOT-chain ordering.
//!
//! `exp(iθP)` is synthesized as the classic gadget (paper Fig. 2): basis
//! changes (`H` for X, `Rx(π/2)` for Y), a CNOT chain accumulating the
//! parity onto a root qubit, `Rz(−2θ)` on the root, and the mirrored chain.
//! The chain over the support can be ordered freely — that freedom is
//! exactly the "algorithmic flexibility in synthesis" Paulihedral exploits:
//! [`aligned_order`] starts each string's chain with the longest
//! operator-compatible prefix of the previous string's chain, so the
//! peephole pass can cancel the facing CNOTs and basis gates.

use pauli::{Pauli, PauliString};
use qcircuit::{Circuit, Gate};

use crate::synth::par::Intra;

/// The basis-change gate entering the Z basis for `p` on qubit `q`.
///
/// Returns `None` for `I`/`Z` (no change needed).
pub fn basis_in(q: usize, p: Pauli) -> Option<Gate> {
    match p {
        Pauli::X => Some(Gate::H(q)),
        Pauli::Y => Some(Gate::Rx(q, std::f64::consts::FRAC_PI_2)),
        Pauli::I | Pauli::Z => None,
    }
}

/// The inverse basis change; see [`basis_in`].
pub fn basis_out(q: usize, p: Pauli) -> Option<Gate> {
    match p {
        Pauli::X => Some(Gate::H(q)),
        Pauli::Y => Some(Gate::Rx(q, -std::f64::consts::FRAC_PI_2)),
        Pauli::I | Pauli::Z => None,
    }
}

/// Emits the gadget for `exp(iθ·P)` with the CNOT chain following `order`
/// (the last element is the root carrying the `Rz`).
///
/// # Panics
///
/// Panics if `order` is not exactly the support of `string`.
pub fn emit_gadget(circuit: &mut Circuit, string: &PauliString, theta: f64, order: &[usize]) {
    let support = string.support();
    assert_eq!(order.len(), support.len(), "order must cover the support");
    debug_assert!(
        {
            let mut sorted = order.to_vec();
            sorted.sort_unstable();
            sorted == support
        },
        "order must be a permutation of the support"
    );
    if order.is_empty() {
        return; // identity string: global phase only
    }
    for &q in order {
        if let Some(g) = basis_in(q, string.get(q)) {
            circuit.push(g);
        }
    }
    for w in order.windows(2) {
        circuit.push(Gate::Cx(w[0], w[1]));
    }
    let root = *order.last().expect("non-empty order");
    circuit.push(Gate::Rz(root, -2.0 * theta));
    for w in order.windows(2).rev() {
        circuit.push(Gate::Cx(w[0], w[1]));
    }
    for &q in order {
        if let Some(g) = basis_out(q, string.get(q)) {
            circuit.push(g);
        }
    }
}

/// Emits the gadget for `exp(iθ·P)` with a **balanced** CNOT tree over the
/// support instead of a chain: parity is folded pairwise
/// (`log₂` depth per layer), trading the chain's cancellation-friendliness
/// for per-gadget depth — the other end of the synthesis-flexibility
/// spectrum of Fig. 2.
///
/// # Panics
///
/// Panics if `order` is not exactly the support of `string`.
pub fn emit_gadget_balanced(
    circuit: &mut Circuit,
    string: &PauliString,
    theta: f64,
    order: &[usize],
) {
    let support = string.support();
    assert_eq!(order.len(), support.len(), "order must cover the support");
    if order.is_empty() {
        return;
    }
    for &q in order {
        if let Some(g) = basis_in(q, string.get(q)) {
            circuit.push(g);
        }
    }
    // Pairwise folding: each round CNOTs element 2i into 2i+1.
    let mut cnots: Vec<(usize, usize)> = Vec::new();
    let mut alive: Vec<usize> = order.to_vec();
    while alive.len() > 1 {
        let mut next = Vec::with_capacity(alive.len().div_ceil(2));
        for pair in alive.chunks(2) {
            if pair.len() == 2 {
                cnots.push((pair[0], pair[1]));
                next.push(pair[1]);
            } else {
                next.push(pair[0]);
            }
        }
        alive = next;
    }
    for &(a, b) in &cnots {
        circuit.push(Gate::Cx(a, b));
    }
    circuit.push(Gate::Rz(alive[0], -2.0 * theta));
    for &(a, b) in cnots.iter().rev() {
        circuit.push(Gate::Cx(a, b));
    }
    for &q in order {
        if let Some(g) = basis_out(q, string.get(q)) {
            circuit.push(g);
        }
    }
}

/// Chooses a chain order for `string` that maximizes cancellation with its
/// neighbors.
///
/// The order starts with the longest prefix of `prev_order` on which both
/// strings carry the *same non-identity* operator — those CNOTs and basis
/// gates face their mirror images across the junction and cancel. The
/// remaining support is ordered with one-step lookahead: qubits sharing
/// their operator with the *next* string come first, so they are available
/// as the next string's cancellable prefix (this is the "alternative
/// synthesis" of Fig. 4(a): `ZZY` chained as `[z, z, y]` instead of
/// root-last `y` ordering).
pub fn aligned_order(
    string: &PauliString,
    prev: Option<(&PauliString, &[usize])>,
    next: Option<&PauliString>,
) -> Vec<usize> {
    let support = string.support();
    let mut order: Vec<usize> = Vec::with_capacity(support.len());
    if let Some((prev_string, prev_order)) = prev {
        for &q in prev_order {
            if string.is_active(q) && string.get(q) == prev_string.get(q) {
                order.push(q);
            } else {
                break;
            }
        }
    }
    let shares_next =
        |q: usize| next.is_some_and(|nx| nx.is_active(q) && nx.get(q) == string.get(q));
    let mut rest: Vec<usize> = support
        .iter()
        .copied()
        .filter(|q| !order.contains(q))
        .collect();
    rest.sort_by_key(|&q| (!shares_next(q), q));
    order.extend(rest);
    order
}

/// Synthesizes a sequence of `(string, θ)` gadgets with chain alignment
/// (no peephole pass — callers run it once at the end).
pub fn synthesize_sequence(n: usize, seq: &[(PauliString, f64)]) -> Circuit {
    synthesize_sequence_with(n, seq, Intra::sequential())
}

/// [`synthesize_sequence`] with an explicit intra-compile parallelism
/// context.
///
/// Chain orders are inherently sequential — each gadget's CNOT order
/// starts from the previous string's order — but they are cheap to
/// compute. Gate *emission* (the allocation-heavy part) is not chained:
/// once every order is fixed, each contiguous run of gadgets is emitted
/// into its own sub-circuit on a worker and the sub-circuits are
/// concatenated in order, which reproduces the sequential gate list
/// exactly.
pub fn synthesize_sequence_with(n: usize, seq: &[(PauliString, f64)], intra: Intra<'_>) -> Circuit {
    // Pass 1 (sequential): resolve the aligned chain order of every
    // non-identity gadget.
    let mut planned: Vec<(usize, Vec<usize>)> = Vec::with_capacity(seq.len());
    let mut prev: Option<(&PauliString, usize)> = None; // string + planned idx
    for (i, (string, _)) in seq.iter().enumerate() {
        if string.is_identity() {
            continue;
        }
        let next = seq[i + 1..]
            .iter()
            .map(|(s, _)| s)
            .find(|s| !s.is_identity());
        let order = aligned_order(
            string,
            prev.map(|(s, pi)| (s, planned[pi].1.as_slice())),
            next,
        );
        planned.push((i, order));
        prev = Some((string, planned.len() - 1));
    }
    // Pass 2 (parallel): emit chunks of gadgets into per-chunk circuits,
    // then concatenate in chunk order.
    let chunks = intra.par_chunks("chain.emit", &planned, 256, |_, _, chunk| {
        let mut c = Circuit::new(n);
        for (i, order) in chunk {
            let (string, theta) = &seq[*i];
            emit_gadget(&mut c, string, *theta, order);
        }
        c
    });
    if chunks.len() == 1 {
        return chunks.into_iter().next().expect("one chunk");
    }
    let mut circuit = Circuit::new(n);
    for chunk in &chunks {
        circuit.append_circuit(chunk);
    }
    circuit
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::peephole;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn gadget_structure_for_zz() {
        let mut c = Circuit::new(2);
        emit_gadget(&mut c, &ps("ZZ"), 0.3, &[0, 1]);
        assert_eq!(
            c.gates(),
            &[Gate::Cx(0, 1), Gate::Rz(1, -0.6), Gate::Cx(0, 1)]
        );
    }

    #[test]
    fn gadget_adds_basis_changes_for_x_and_y() {
        let mut c = Circuit::new(2);
        emit_gadget(&mut c, &ps("YX"), 0.5, &[0, 1]);
        let s = c.stats();
        assert_eq!(s.cnot, 2);
        // H/H on qubit 0 (X), Rx(±π/2) on qubit 1 (Y), plus the Rz.
        assert_eq!(s.single, 5);
        assert!(matches!(c.gates()[0], Gate::H(0)));
    }

    #[test]
    fn identity_string_emits_nothing() {
        let mut c = Circuit::new(3);
        emit_gadget(&mut c, &PauliString::identity(3), 1.0, &[]);
        assert!(c.is_empty());
    }

    #[test]
    fn aligned_order_reuses_compatible_prefix() {
        // ZZY chained [1, 2, 0] (the shared Z-pair first); ZZI then reuses
        // the [1, 2] prefix and cancels those CNOTs.
        let prev = ps("ZZY");
        let prev_order = vec![1, 2, 0];
        let next = ps("ZZI");
        let order = aligned_order(&next, Some((&prev, prev_order.as_slice())), None);
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn aligned_order_stops_at_first_mismatch() {
        let prev = ps("ZXZ"); // q2:Z q1:X q0:Z
        let prev_order = vec![0, 1, 2];
        let next = ps("ZZZ");
        // q0 matches (Z), q1 differs (X vs Z) → prefix [0], rest ascending.
        let order = aligned_order(&next, Some((&prev, prev_order.as_slice())), None);
        assert_eq!(order, vec![0, 1, 2]);
        assert_eq!(&order[..1], &[0]);
    }

    #[test]
    fn aligned_order_lookahead_fronts_shared_qubits() {
        // No previous string: the chain of ZZY starts with the qubits it
        // shares with the upcoming ZZI (Fig. 4(a) alternative synthesis).
        let s = ps("ZZY");
        let next = ps("ZZI");
        let order = aligned_order(&s, None, Some(&next));
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn fig4a_alternative_synthesis_cancels_cnots() {
        // The paper's Fig. 4(a): ZZY then ZZI. Naive synthesis cancels
        // nothing; aligned synthesis cancels two CNOTs.
        let seq = vec![(ps("ZZY"), 0.3), (ps("ZZI"), 0.4)];
        // Naive: both chains in ascending order.
        let mut naive = Circuit::new(3);
        emit_gadget(&mut naive, &seq[0].0, seq[0].1, &[0, 1, 2]);
        emit_gadget(&mut naive, &seq[1].0, seq[1].1, &[1, 2]);
        peephole::optimize(&mut naive);
        // Aligned.
        let mut aligned = synthesize_sequence(3, &seq);
        peephole::optimize(&mut aligned);
        assert!(
            aligned.stats().cnot < naive.stats().cnot,
            "aligned {} vs naive {}",
            aligned.stats().cnot,
            naive.stats().cnot
        );
        assert_eq!(aligned.stats().cnot, 4); // 6 CNOTs − 2 cancelled
    }

    #[test]
    fn identical_strings_collapse_to_one_gadget() {
        let seq = vec![(ps("XZX"), 0.2), (ps("XZX"), 0.3)];
        let mut c = synthesize_sequence(3, &seq);
        peephole::optimize(&mut c);
        let s = c.stats();
        assert_eq!(s.cnot, 4);
        // Basis gates fully shared; the two Rz merge into one.
        assert_eq!(
            s.single,
            4 + 1,
            "expected shared basis gates and a merged rotation: {c}"
        );
    }

    #[test]
    #[should_panic(expected = "cover the support")]
    fn emit_gadget_validates_order() {
        let mut c = Circuit::new(2);
        emit_gadget(&mut c, &ps("ZZ"), 0.1, &[0]);
    }

    #[test]
    fn balanced_tree_has_log_depth() {
        let s = ps("ZZZZZZZZ");
        let order = s.support();
        let mut chain = Circuit::new(8);
        emit_gadget(&mut chain, &s, 0.2, &order);
        let mut balanced = Circuit::new(8);
        emit_gadget_balanced(&mut balanced, &s, 0.2, &order);
        // Same gate counts, very different depth: 2·7+1 vs 2·3+1.
        assert_eq!(chain.stats().cnot, balanced.stats().cnot);
        assert_eq!(chain.stats().depth, 15);
        assert_eq!(balanced.stats().depth, 7);
    }

    #[test]
    fn balanced_tree_on_two_qubits_matches_chain() {
        let s = ps("ZZ");
        let mut a = Circuit::new(2);
        emit_gadget(&mut a, &s, 0.4, &[0, 1]);
        let mut b = Circuit::new(2);
        emit_gadget_balanced(&mut b, &s, 0.4, &[0, 1]);
        assert_eq!(a, b);
    }
}
