//! Block-wise optimization for the fault-tolerant backend (paper Alg. 2).
//!
//! On the FT backend mapping is free (quantum error correction absorbs
//! routing), so the pass maximizes gate cancellation: consecutive layer
//! pairs with the most operator overlap are selected greedily, the
//! junction strings of each pair are placed face to face, strings inside
//! every block are chained by `most_overlap_sort`, and the whole sequence
//! is synthesized with aligned CNOT chains followed by one peephole pass.
//!
//! One deliberate simplification versus the pseudocode: paired layers are
//! *emitted in their scheduled order* (pairing only decides which junctions
//! get anchor strings). Re-emitting pairs in pairing order would destroy
//! the depth structure the DO scheduler created; keeping schedule order
//! preserves it while the junction anchors still realize the cancellation
//! the pairing found.

use pauli::PauliString;
use qcircuit::peephole::{self, PeepholeReport};
use qcircuit::Circuit;

use crate::schedule::Layer;
use crate::synth::chain;
use crate::synth::par::Intra;

/// Result of FT-backend synthesis.
#[derive(Clone, Debug)]
pub struct FtResult {
    /// The optimized logical circuit.
    pub circuit: Circuit,
    /// The `(string, θ)` sequence actually synthesized, in emission order —
    /// the compiled circuit implements `Π exp(iθP)` in exactly this order.
    pub emitted: Vec<(PauliString, f64)>,
    /// What the final peephole pass cancelled.
    pub peephole: PeepholeReport,
}

/// Greedy pairing of adjacent layers by junction overlap (Alg. 2 lines
/// 1–5). Returns for each layer index the index it is paired with (self if
/// unpaired).
fn pair_layers(n: usize, layers: &[Layer], intra: Intra<'_>) -> Vec<usize> {
    let mut partner: Vec<usize> = (0..layers.len()).collect();
    if layers.len() < 2 {
        return partner;
    }
    // Per-layer signatures are independent → shard them across workers;
    // the junction overlaps below are cheap popcounts over the results.
    let sigs: Vec<(PauliString, PauliString)> =
        intra.par_map("ft.signatures", layers, 32, |_, l| {
            (l.front_signature(n), l.back_signature(n))
        });
    let mut overlaps: Vec<(usize, usize)> = (0..layers.len() - 1)
        .map(|i| (sigs[i].1.overlap(&sigs[i + 1].0), i))
        .collect();
    overlaps.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut taken = vec![false; layers.len()];
    for (_, i) in overlaps {
        if !taken[i] && !taken[i + 1] {
            taken[i] = true;
            taken[i + 1] = true;
            partner[i] = i + 1;
            partner[i + 1] = i;
        }
    }
    partner
}

/// Greedy `most_overlap_sort`: orders `items` as a chain where each next
/// string maximizes overlap with the previous; the chain starts from the
/// item overlapping `seed` most (or the lexicographic first without a
/// seed).
fn most_overlap_chain(
    mut items: Vec<(PauliString, f64)>,
    seed: Option<&PauliString>,
) -> Vec<(PauliString, f64)> {
    let mut out = Vec::with_capacity(items.len());
    let mut current: Option<PauliString> = seed.cloned();
    while !items.is_empty() {
        let idx = match &current {
            Some(c) => (0..items.len())
                .max_by_key(|&i| items[i].0.overlap(c))
                .expect("non-empty"),
            None => 0,
        };
        let item = items.remove(idx);
        current = Some(item.0.clone());
        out.push(item);
    }
    out
}

/// Orders all strings of the scheduled layers for synthesis (Alg. 2).
pub fn order_strings(n: usize, layers: &[Layer]) -> Vec<(PauliString, f64)> {
    order_strings_with(n, layers, Intra::sequential())
}

/// [`order_strings`] with an explicit intra-compile parallelism context.
/// The result is bit-identical for every worker count: junctions are
/// independent, and the per-junction argmax keeps its sequential
/// first-max-wins scan order.
pub fn order_strings_with(n: usize, layers: &[Layer], intra: Intra<'_>) -> Vec<(PauliString, f64)> {
    let partner = pair_layers(n, layers, intra);
    // Junction anchors: for a pair (i, i+1), the string pair with maximal
    // overlap across the junction (Alg. 2 lines 7–9). This quadratic
    // string × string sweep dominates FT synthesis on large lattices, and
    // each junction is independent of the others.
    let mut start_anchor: Vec<Option<PauliString>> = vec![None; layers.len()];
    let mut end_anchor: Vec<Option<PauliString>> = vec![None; layers.len()];
    let junctions: Vec<usize> = (0..layers.len()).filter(|&i| partner[i] == i + 1).collect();
    let anchors = intra.par_map("ft.junctions", &junctions, 8, |_, &i| {
        let (a, b) = (&layers[i], &layers[i + 1]);
        let mut best: Option<(usize, PauliString, PauliString)> = None;
        for ta in a.blocks.iter().flat_map(|bl| &bl.terms) {
            for tb in b.blocks.iter().flat_map(|bl| &bl.terms) {
                let ov = ta.string.overlap(&tb.string);
                if best.as_ref().is_none_or(|(bo, _, _)| ov > *bo) {
                    best = Some((ov, ta.string.clone(), tb.string.clone()));
                }
            }
        }
        best
    });
    for (&i, best) in junctions.iter().zip(anchors) {
        if let Some((_, sa, sb)) = best {
            end_anchor[i] = Some(sa);
            start_anchor[i + 1] = Some(sb);
        }
    }

    let mut out: Vec<(PauliString, f64)> = Vec::new();
    for (li, layer) in layers.iter().enumerate() {
        // Order blocks: a block containing the start anchor goes first, one
        // containing the end anchor goes last; others keep schedule order.
        let contains = |bl: &crate::ir::PauliBlock, s: &Option<PauliString>| {
            s.as_ref()
                .is_some_and(|s| bl.terms.iter().any(|t| &t.string == s))
        };
        let mut firsts = Vec::new();
        let mut mids = Vec::new();
        let mut lasts = Vec::new();
        for bl in &layer.blocks {
            if contains(bl, &start_anchor[li]) && !contains(bl, &end_anchor[li]) {
                firsts.push(bl);
            } else if contains(bl, &end_anchor[li]) && !contains(bl, &start_anchor[li]) {
                lasts.push(bl);
            } else {
                mids.push(bl);
            }
        }
        for (kind, bl) in firsts
            .into_iter()
            .map(|b| (0u8, b))
            .chain(mids.into_iter().map(|b| (1, b)))
            .chain(lasts.into_iter().map(|b| (2, b)))
        {
            let items: Vec<(PauliString, f64)> = bl
                .terms
                .iter()
                .enumerate()
                .map(|(i, t)| (t.string.clone(), bl.theta(i)))
                .collect();
            let chained = match kind {
                0 => most_overlap_chain(items, start_anchor[li].as_ref()),
                2 => {
                    // Chain built from the end anchor, then reversed so the
                    // anchor faces the next layer.
                    let mut rev = most_overlap_chain(items, end_anchor[li].as_ref());
                    rev.reverse();
                    rev
                }
                _ => {
                    let seed = out.last().map(|(s, _)| s.clone());
                    most_overlap_chain(items, seed.as_ref())
                }
            };
            out.extend(chained);
        }
    }
    out.retain(|(s, _)| !s.is_identity());
    out
}

/// Synthesizes scheduled layers for the FT backend *without* the final
/// peephole clean-up. The pass manager in `ph_engine` uses this to run
/// (and instrument) the peephole as its own pass; the returned
/// `peephole` report is all zeros.
pub fn synthesize_unoptimized(n: usize, layers: &[Layer]) -> FtResult {
    synthesize_unoptimized_with(n, layers, Intra::sequential())
}

/// [`synthesize_unoptimized`] with an explicit intra-compile parallelism
/// context; the emitted circuit is bit-identical for every worker count.
pub fn synthesize_unoptimized_with(n: usize, layers: &[Layer], intra: Intra<'_>) -> FtResult {
    let emitted = order_strings_with(n, layers, intra);
    let circuit = chain::synthesize_sequence_with(n, &emitted, intra);
    FtResult {
        circuit,
        emitted,
        peephole: PeepholeReport::default(),
    }
}

/// Synthesizes scheduled layers for the FT backend.
pub fn synthesize(n: usize, layers: &[Layer]) -> FtResult {
    synthesize_with(n, layers, Intra::sequential())
}

/// [`synthesize`] with an explicit intra-compile parallelism context (the
/// final peephole pass is a global sequential sweep either way).
pub fn synthesize_with(n: usize, layers: &[Layer], intra: Intra<'_>) -> FtResult {
    let mut r = synthesize_unoptimized_with(n, layers, intra);
    r.peephole = peephole::optimize(&mut r.circuit);
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Parameter, PauliBlock, PauliIR};
    use crate::schedule;
    use pauli::PauliTerm;

    fn ir_of(blocks: Vec<Vec<&str>>) -> PauliIR {
        let n = blocks[0][0].len();
        let mut ir = PauliIR::new(n);
        for strings in blocks {
            ir.push_block(PauliBlock::new(
                strings
                    .iter()
                    .map(|s| PauliTerm::new(s.parse().unwrap(), 1.0))
                    .collect(),
                Parameter::time(0.1),
            ));
        }
        ir
    }

    #[test]
    fn emitted_order_covers_all_strings() {
        let ir = ir_of(vec![vec!["ZZII", "XYII"], vec!["IIZZ"], vec!["IXXI"]]);
        let layers = schedule::schedule_gco(&ir);
        let r = synthesize(4, &layers);
        assert_eq!(r.emitted.len(), 4);
    }

    #[test]
    fn ft_beats_naive_on_overlapping_strings() {
        // Strings sharing Z-prefixes: scheduling + aligned chains must
        // cancel CNOTs relative to independent naive gadgets.
        let strings = ["ZZZI", "ZZII", "ZZZZ", "ZIII", "ZZIZ"];
        let ir = ir_of(strings.iter().map(|s| vec![*s]).collect());
        let layers = schedule::schedule_gco(&ir);
        let r = synthesize(4, &layers);
        let naive_cnot: usize = strings
            .iter()
            .map(|s| 2 * (s.chars().filter(|&c| c != 'I').count() - 1))
            .sum();
        assert!(
            r.circuit.stats().cnot < naive_cnot,
            "{} vs naive {}",
            r.circuit.stats().cnot,
            naive_cnot
        );
    }

    #[test]
    fn pairing_prefers_high_overlap_junctions() {
        let ir = ir_of(vec![vec!["XXXX"], vec!["XXXY"], vec!["ZZZZ"]]);
        // GCO order: XXXX, XXXY, ZZZZ. Junction overlaps: (0,1)=3, (1,2)=0.
        let layers = schedule::schedule_gco(&ir);
        let partner = pair_layers(4, &layers, Intra::sequential());
        assert_eq!(partner[0], 1);
        assert_eq!(partner[1], 0);
        assert_eq!(partner[2], 2);
    }

    #[test]
    fn most_overlap_chain_orders_by_similarity() {
        let items: Vec<(PauliString, f64)> = ["XXII", "ZZZZ", "XXXI"]
            .iter()
            .map(|s| (s.parse().unwrap(), 0.1))
            .collect();
        let seed: PauliString = "XXXX".parse().unwrap();
        let chained = most_overlap_chain(items, Some(&seed));
        let order: Vec<String> = chained.iter().map(|(s, _)| s.to_string()).collect();
        assert_eq!(order[0], "XXXI"); // overlap 3 with seed
        assert_eq!(order[1], "XXII"); // overlap 2 with XXXI
    }

    #[test]
    fn depth_scheduled_disjoint_blocks_parallelize() {
        // Two disjoint 2-qubit blocks under DO land in one layer and their
        // gadgets overlap in time.
        let ir = ir_of(vec![vec!["ZZIIII"], vec!["IIZZII"], vec!["IIIIZZ"]]);
        let layers = schedule::schedule_depth(&ir);
        let r = synthesize(6, &layers);
        let single_gadget_depth = 3; // CX, Rz, CX
        assert!(
            r.circuit.stats().depth <= 2 * single_gadget_depth,
            "depth {} should show parallelism",
            r.circuit.stats().depth
        );
    }

    #[test]
    fn block_strings_stay_contiguous() {
        let ir = ir_of(vec![vec!["IIXY", "IIYX"], vec!["XYII", "YXII"]]);
        let layers = schedule::schedule_gco(&ir);
        let r = synthesize(4, &layers);
        // The two low-qubit strings must be adjacent in emission order.
        let pos: Vec<usize> = r
            .emitted
            .iter()
            .enumerate()
            .filter(|(_, (s, _))| !s.is_active(3) && !s.is_active(2))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(pos.len(), 2);
        assert_eq!(pos[1] - pos[0], 1);
    }
}
