//! Beyond-Table-1 scale workloads: condensed-matter lattices at 100 to
//! 1000+ qubits, for the intra-compile parallelism benchmarks and the
//! `phc` `workload:` pseudo-inputs.
//!
//! Names are `<model>-<dims>` where `<model>` is `Ising` or `Heisen` and
//! `<dims>` is a single site count (`Ising-1000` — a 1000-site chain) or
//! an `x`-separated cuboid (`Heisen-32x32` — a 1024-qubit grid). The
//! couplings match the Table 1 spin benchmarks (`J = 1.0`, `dt = 0.1`),
//! so the scale rows are the same physics at larger n.

use paulihedral::ir::PauliIR;

use crate::spin;

/// The preset scale rows the benches and the CI smoke use, smallest
/// first: 1D chains at 100/500/1000 sites plus a 32×32 grid (1024
/// qubits), for both spin models.
pub const NAMES: [&str; 8] = [
    "Ising-100",
    "Heisen-100",
    "Ising-500",
    "Heisen-500",
    "Ising-1000",
    "Heisen-1000",
    "Ising-32x32",
    "Heisen-32x32",
];

/// Generates a scale workload from its `<model>-<dims>` name; `None` if
/// the name does not parse (unknown model, empty or zero dimension).
pub fn named_scale_ir(name: &str) -> Option<PauliIR> {
    let (model, dims_spec) = name.split_once('-')?;
    let dims: Vec<usize> = dims_spec
        .split('x')
        .map(|d| d.parse().ok())
        .collect::<Option<_>>()?;
    if dims.is_empty() || dims.contains(&0) {
        return None;
    }
    match model {
        "Ising" => Some(spin::ising_ir(&dims, 1.0, 0.1)),
        "Heisen" => Some(spin::heisenberg_ir(&dims, 1.0, 0.1)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_name_parses() {
        for name in NAMES {
            let ir = named_scale_ir(name).unwrap_or_else(|| panic!("{name} must parse"));
            assert!(ir.num_qubits() >= 100, "{name}");
        }
    }

    #[test]
    fn chain_and_grid_shapes() {
        let chain = named_scale_ir("Ising-1000").unwrap();
        assert_eq!(chain.num_qubits(), 1000);
        assert_eq!(chain.total_strings(), 999);
        let grid = named_scale_ir("Heisen-32x32").unwrap();
        assert_eq!(grid.num_qubits(), 1024);
        // 2·32·31 grid edges × 3 Pauli flavours.
        assert_eq!(grid.total_strings(), 2 * 32 * 31 * 3);
    }

    #[test]
    fn malformed_names_are_rejected() {
        for bad in [
            "Ising",
            "Ising-",
            "Ising-0",
            "Ising-2x0",
            "Hubbard-10",
            "Ising-1D",
        ] {
            assert!(named_scale_ir(bad).is_none(), "{bad}");
        }
    }
}
