//! Ising and Heisenberg spin models on 1D/2D/3D lattices.
//!
//! The Table 1 configurations are 30-qubit lattices: a 30-site chain, a
//! 5×6 grid (49 edges) and a 2×3×5 cuboid (59 edges).

use pauli::{Pauli, PauliString, PauliTerm};
use paulihedral::ir::PauliIR;

/// The edge list of a `dims`-dimensional cuboid lattice (open boundaries).
pub fn lattice_edges(dims: &[usize]) -> Vec<(usize, usize)> {
    let n: usize = dims.iter().product();
    assert!(n > 0, "lattice must be non-empty");
    let index = |coord: &[usize]| -> usize {
        let mut idx = 0;
        for (d, &c) in coord.iter().enumerate() {
            idx = idx * dims[d] + c;
        }
        idx
    };
    let mut edges = Vec::new();
    let mut coord = vec![0usize; dims.len()];
    loop {
        for d in 0..dims.len() {
            if coord[d] + 1 < dims[d] {
                let mut next = coord.clone();
                next[d] += 1;
                edges.push((index(&coord), index(&next)));
            }
        }
        // Odometer increment.
        let mut d = dims.len();
        loop {
            if d == 0 {
                return edges;
            }
            d -= 1;
            coord[d] += 1;
            if coord[d] < dims[d] {
                break;
            }
            coord[d] = 0;
        }
    }
}

fn two_site(n: usize, a: usize, b: usize, p: Pauli, w: f64) -> PauliTerm {
    let mut s = PauliString::identity(n);
    s.set(a, p);
    s.set(b, p);
    PauliTerm::new(s, w)
}

/// A transverse-free Ising model `Σ_⟨ab⟩ J·Z_a Z_b` in Hamiltonian-
/// simulation form (one block per term, shared Trotter step `dt`).
pub fn ising_ir(dims: &[usize], j: f64, dt: f64) -> PauliIR {
    let n: usize = dims.iter().product();
    let terms: Vec<PauliTerm> = lattice_edges(dims)
        .into_iter()
        .map(|(a, b)| two_site(n, a, b, Pauli::Z, j))
        .collect();
    PauliIR::from_hamiltonian(n, terms, dt)
}

/// An isotropic Heisenberg model `Σ_⟨ab⟩ J·(X_aX_b + Y_aY_b + Z_aZ_b)`.
pub fn heisenberg_ir(dims: &[usize], j: f64, dt: f64) -> PauliIR {
    let n: usize = dims.iter().product();
    let mut terms = Vec::new();
    for (a, b) in lattice_edges(dims) {
        for p in [Pauli::X, Pauli::Y, Pauli::Z] {
            terms.push(two_site(n, a, b, p, j));
        }
    }
    PauliIR::from_hamiltonian(n, terms, dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_edge_counts_match_table1() {
        assert_eq!(lattice_edges(&[30]).len(), 29); // Ising-1D
        assert_eq!(lattice_edges(&[5, 6]).len(), 49); // Ising-2D
        assert_eq!(lattice_edges(&[2, 3, 5]).len(), 59); // Ising-3D
    }

    #[test]
    fn ising_program_shape() {
        let ir = ising_ir(&[30], 1.0, 0.1);
        assert_eq!(ir.num_qubits(), 30);
        assert_eq!(ir.total_strings(), 29);
        assert_eq!(ir.num_blocks(), 29);
        assert!(ir.blocks().iter().all(|b| b.terms[0].string.weight() == 2));
    }

    #[test]
    fn heisenberg_counts_match_table1() {
        let ir = heisenberg_ir(&[30], 1.0, 0.1);
        assert_eq!(ir.total_strings(), 87); // 29 edges × 3
        let ir2 = heisenberg_ir(&[5, 6], 1.0, 0.1);
        assert_eq!(ir2.total_strings(), 147);
        let ir3 = heisenberg_ir(&[2, 3, 5], 1.0, 0.1);
        assert_eq!(ir3.total_strings(), 177);
    }

    #[test]
    fn lattice_edges_are_valid() {
        let dims = [3, 4];
        let n: usize = dims.iter().product();
        for (a, b) in lattice_edges(&dims) {
            assert!(a < n && b < n && a != b);
        }
    }
}
