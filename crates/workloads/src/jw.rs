//! Jordan–Wigner transformation of fermionic operators.
//!
//! Under JW, the annihilation operator on mode `p` maps to
//! `a_p = ½(X_p + iY_p) · Z_{p−1} ⋯ Z_0`. Products of such operators are
//! complex-weighted Pauli sums; Hermitian/anti-Hermitian combinations of
//! excitation operators yield the real-weighted Pauli strings that UCCSD
//! blocks and molecular Hamiltonians are made of.

use std::collections::HashMap;

use pauli::{Pauli, PauliString, PauliTerm};

/// A complex-weighted sum of Pauli strings.
#[derive(Clone, Debug)]
pub struct PauliSum {
    n: usize,
    /// string → (re, im) coefficient.
    terms: HashMap<PauliString, (f64, f64)>,
}

impl PauliSum {
    /// The zero operator on `n` qubits.
    pub fn zero(n: usize) -> PauliSum {
        PauliSum {
            n,
            terms: HashMap::new(),
        }
    }

    /// The number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Adds `(re + i·im) · P`.
    pub fn add_term(&mut self, string: PauliString, re: f64, im: f64) {
        assert_eq!(string.num_qubits(), self.n, "qubit count mismatch");
        let e = self.terms.entry(string).or_insert((0.0, 0.0));
        e.0 += re;
        e.1 += im;
    }

    /// Adds `scale · other` into `self`.
    pub fn add_scaled(&mut self, other: &PauliSum, re: f64, im: f64) {
        for (s, &(a, b)) in &other.terms {
            // (a+ib)(re+i·im)
            self.add_term(s.clone(), a * re - b * im, a * im + b * re);
        }
    }

    /// Operator product `self · other`, tracking all phases.
    pub fn mul(&self, other: &PauliSum) -> PauliSum {
        let mut out = PauliSum::zero(self.n);
        for (sa, &(ra, ia)) in &self.terms {
            for (sb, &(rb, ib)) in &other.terms {
                let (prod, k) = sa.mul(sb);
                // coefficient: (ra+i·ia)(rb+i·ib) · i^k
                let (mut re, mut im) = (ra * rb - ia * ib, ra * ib + ia * rb);
                for _ in 0..k {
                    let t = re;
                    re = -im;
                    im = t;
                }
                out.add_term(prod, re, im);
            }
        }
        out
    }

    /// The Hermitian conjugate (Pauli strings are Hermitian, so only the
    /// coefficients conjugate).
    pub fn dagger(&self) -> PauliSum {
        let mut out = PauliSum::zero(self.n);
        for (s, &(re, im)) in &self.terms {
            out.add_term(s.clone(), re, -im);
        }
        out
    }

    /// Extracts the real-weighted Pauli terms, dropping negligible ones.
    ///
    /// # Panics
    ///
    /// Panics if any surviving coefficient has an imaginary part above
    /// `1e-9` — i.e. the operator was not Hermitian.
    pub fn hermitian_terms(&self, eps: f64) -> Vec<PauliTerm> {
        let mut out: Vec<PauliTerm> = Vec::new();
        for (s, &(re, im)) in &self.terms {
            if re.abs() < eps && im.abs() < eps {
                continue;
            }
            assert!(im.abs() < 1e-9, "non-hermitian coefficient {im} on {s}");
            out.push(PauliTerm::new(s.clone(), re));
        }
        // Deterministic order for reproducible benchmarks.
        out.sort_by(|a, b| a.string.lex_cmp(&b.string));
        out
    }
}

/// The JW annihilation operator `a_p` on an `n`-mode register.
pub fn annihilation(n: usize, p: usize) -> PauliSum {
    assert!(p < n, "mode {p} out of range");
    let mut x_part = PauliString::identity(n);
    let mut y_part = PauliString::identity(n);
    for q in 0..p {
        x_part.set(q, Pauli::Z);
        y_part.set(q, Pauli::Z);
    }
    x_part.set(p, Pauli::X);
    y_part.set(p, Pauli::Y);
    let mut sum = PauliSum::zero(n);
    sum.add_term(x_part, 0.5, 0.0);
    sum.add_term(y_part, 0.0, 0.5);
    sum
}

/// The JW creation operator `a†_p`.
pub fn creation(n: usize, p: usize) -> PauliSum {
    annihilation(n, p).dagger()
}

/// The Hermitian generator `H = −i(T − T†)` of the single excitation
/// `T = a†_a a_i`, as real-weighted Pauli terms (2 strings, weights ±½).
pub fn single_excitation(n: usize, i: usize, a: usize) -> Vec<PauliTerm> {
    assert_ne!(i, a, "excitation needs distinct modes");
    let t = creation(n, a).mul(&annihilation(n, i));
    let mut g = PauliSum::zero(n);
    g.add_scaled(&t, 0.0, -1.0); // −i·T
    g.add_scaled(&t.dagger(), 0.0, 1.0); // +i·T†
    g.hermitian_terms(1e-12)
}

/// The Hermitian generator of the double excitation
/// `T = a†_a a†_b a_j a_i` (8 strings, weights ±⅛).
pub fn double_excitation(n: usize, i: usize, j: usize, a: usize, b: usize) -> Vec<PauliTerm> {
    let idx = [i, j, a, b];
    assert!(
        (1..4).all(|k| !idx[..k].contains(&idx[k])),
        "excitation needs distinct modes"
    );
    let t = creation(n, a)
        .mul(&creation(n, b))
        .mul(&annihilation(n, j))
        .mul(&annihilation(n, i));
    let mut g = PauliSum::zero(n);
    g.add_scaled(&t, 0.0, -1.0);
    g.add_scaled(&t.dagger(), 0.0, 1.0);
    g.hermitian_terms(1e-12)
}

/// The Hermitian one-body term `c·(a†_p a_q + a†_q a_p)` (for `p == q`,
/// the number operator `c·a†_p a_p`).
pub fn one_body(n: usize, p: usize, q: usize, c: f64) -> Vec<PauliTerm> {
    let t = creation(n, p).mul(&annihilation(n, q));
    let mut g = PauliSum::zero(n);
    if p == q {
        g.add_scaled(&t, c, 0.0);
    } else {
        g.add_scaled(&t, c, 0.0);
        g.add_scaled(&t.dagger(), c, 0.0);
    }
    g.hermitian_terms(1e-12)
}

/// The Hermitian two-body term `c·(a†_p a†_q a_r a_s + h.c.)`.
pub fn two_body(n: usize, p: usize, q: usize, r: usize, s: usize, c: f64) -> Vec<PauliTerm> {
    let t = creation(n, p)
        .mul(&creation(n, q))
        .mul(&annihilation(n, r))
        .mul(&annihilation(n, s));
    let mut g = PauliSum::zero(n);
    g.add_scaled(&t, c, 0.0);
    g.add_scaled(&t.dagger(), c, 0.0);
    g.hermitian_terms(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn annihilation_has_z_chain() {
        let a2 = annihilation(4, 2);
        let terms: Vec<String> = a2.terms.keys().map(|s| s.to_string()).collect();
        assert_eq!(terms.len(), 2);
        assert!(terms.contains(&"IXZZ".to_string()), "{terms:?}");
        assert!(terms.contains(&"IYZZ".to_string()));
    }

    #[test]
    fn canonical_anticommutation_relation() {
        // {a_p, a†_p} = 1.
        let n = 3;
        for p in 0..n {
            let a = annihilation(n, p);
            let ad = creation(n, p);
            let mut anti = a.mul(&ad);
            anti.add_scaled(&ad.mul(&a), 1.0, 0.0);
            let terms = anti.hermitian_terms(1e-12);
            assert_eq!(terms.len(), 1);
            assert!(terms[0].string.is_identity());
            assert!((terms[0].weight - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn distinct_modes_anticommute() {
        // {a_0, a_1} = 0.
        let a0 = annihilation(3, 0);
        let a1 = annihilation(3, 1);
        let mut anti = a0.mul(&a1);
        anti.add_scaled(&a1.mul(&a0), 1.0, 0.0);
        assert!(anti.hermitian_terms(1e-12).is_empty());
    }

    #[test]
    fn single_excitation_is_the_xy_pair() {
        // Adjacent modes: the Fig. 6(b) pattern (IIXY, ±0.5).
        let terms = single_excitation(4, 0, 1);
        assert_eq!(terms.len(), 2);
        let strs: Vec<String> = terms.iter().map(|t| t.string.to_string()).collect();
        assert!(strs.contains(&"IIXY".to_string()), "{strs:?}");
        assert!(strs.contains(&"IIYX".to_string()));
        assert!(terms.iter().all(|t| t.weight.abs() == 0.5));
        let total: f64 = terms.iter().map(|t| t.weight).sum();
        assert!(total.abs() < 1e-12, "weights come in a ± pair");
    }

    #[test]
    fn distant_single_excitation_has_z_chain() {
        let terms = single_excitation(5, 0, 3);
        for t in &terms {
            assert_eq!(t.string.get(1), Pauli::Z);
            assert_eq!(t.string.get(2), Pauli::Z);
        }
    }

    #[test]
    fn double_excitation_has_eight_eighth_weight_strings() {
        let terms = double_excitation(4, 0, 1, 2, 3);
        assert_eq!(terms.len(), 8);
        assert!(terms.iter().all(|t| (t.weight.abs() - 0.125).abs() < 1e-12));
        // Each string has X/Y on all four modes (adjacent: no Z chain).
        for t in &terms {
            for q in 0..4 {
                assert!(matches!(t.string.get(q), Pauli::X | Pauli::Y));
            }
        }
    }

    #[test]
    fn number_operator_is_diagonal() {
        let terms = one_body(3, 1, 1, 2.0);
        // a†a = (I − Z)/2 → identity (weight 1) + Z (weight −1).
        assert_eq!(terms.len(), 2);
        for t in &terms {
            assert!(t.string.is_identity() || t.string.get(1) == Pauli::Z);
        }
    }

    #[test]
    fn one_body_offdiagonal_is_xx_plus_yy() {
        let terms = one_body(3, 0, 1, 1.0);
        assert_eq!(terms.len(), 2);
        let strs: Vec<String> = terms.iter().map(|t| t.string.to_string()).collect();
        assert!(strs.contains(&"IXX".to_string()));
        assert!(strs.contains(&"IYY".to_string()));
    }

    #[test]
    fn two_body_density_density_is_z_type() {
        // a†_p a†_q a_q a_p = n_p n_q → I, Z_p, Z_q, Z_pZ_q.
        let terms = two_body(3, 0, 1, 1, 0, 1.0);
        assert_eq!(terms.len(), 4);
        assert!(terms
            .iter()
            .all(|t| t.string.iter().all(|p| matches!(p, Pauli::I | Pauli::Z))));
    }
}
