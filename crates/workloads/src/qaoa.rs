//! QAOA benchmark programs: MaxCut cost kernels and TSP Ising encodings.

use pauli::{Pauli, PauliString, PauliTerm};
use paulihedral::ir::{Parameter, PauliIR};

use crate::graphs::Graph;

/// The MaxCut cost kernel of a graph as one Pauli block (Fig. 6(c)): one
/// `ZZ` string of weight `w` per edge, all sharing the parameter `γ`.
pub fn maxcut_ir(graph: &Graph, gamma: f64) -> PauliIR {
    let terms: Vec<PauliTerm> = graph
        .edges
        .iter()
        .map(|&(u, v, w)| {
            let mut s = PauliString::identity(graph.n);
            s.set(u, Pauli::Z);
            s.set(v, Pauli::Z);
            PauliTerm::new(s, w)
        })
        .collect();
    PauliIR::single_block(graph.n, terms, Parameter::named("gamma", gamma))
}

/// The TSP QAOA cost kernel on `n` cities: `n²` qubits `x_{i,t}` (city `i`
/// at tour position `t`), one-hot penalties plus distance couplings,
/// converted from QUBO to Ising (`x = (1 − z)/2`). For `n = 4` this yields
/// the 112 strings of Table 1 (96 `ZZ` + 16 `Z`).
pub fn tsp_ir(n: usize, distances: &[Vec<f64>], gamma: f64, penalty: f64) -> PauliIR {
    assert!(n >= 2, "TSP needs at least two cities");
    assert_eq!(distances.len(), n, "distance matrix size mismatch");
    let nq = n * n;
    let q = |city: usize, time: usize| city * n + time;
    // QUBO accumulation: quad[(a,b)] x_a x_b + lin[a] x_a  (a < b).
    // BTreeMap, not HashMap: the Ising conversion below accumulates
    // z-coefficients in iteration order, and float addition is not
    // associative — ordered iteration keeps generation bit-reproducible
    // across calls (which the engine's compilation cache relies on).
    let mut quad = std::collections::BTreeMap::<(usize, usize), f64>::new();
    let mut lin = vec![0.0f64; nq];
    let mut add_quad = |a: usize, b: usize, w: f64, lin: &mut Vec<f64>| {
        if a == b {
            lin[a] += w; // x² = x for binaries
        } else {
            *quad.entry((a.min(b), a.max(b))).or_insert(0.0) += w;
        }
    };
    // One-hot rows: (1 − Σ_i x_{i,t})² and (1 − Σ_t x_{i,t})².
    for t in 0..n {
        for i in 0..n {
            add_quad(q(i, t), q(i, t), -penalty, &mut lin);
            for j in i + 1..n {
                add_quad(q(i, t), q(j, t), 2.0 * penalty, &mut lin);
            }
        }
    }
    for i in 0..n {
        for t in 0..n {
            add_quad(q(i, t), q(i, t), -penalty, &mut lin);
            for u in t + 1..n {
                add_quad(q(i, t), q(i, u), 2.0 * penalty, &mut lin);
            }
        }
    }
    // Tour distances: d_ij · x_{i,t} x_{j,t+1} (cyclic).
    for t in 0..n {
        let tn = (t + 1) % n;
        for (i, row) in distances.iter().enumerate().take(n) {
            for (j, &dij) in row.iter().enumerate().take(n) {
                if i != j {
                    add_quad(q(i, t), q(j, tn), dij, &mut lin);
                }
            }
        }
    }
    // QUBO → Ising: x = (1 − z)/2. Constant terms are dropped; x_a x_b
    // contributes z_a z_b/4 and −z_a/4 − z_b/4; x_a contributes −z_a/2.
    let mut z_coeff = vec![0.0f64; nq];
    let mut terms: Vec<PauliTerm> = Vec::new();
    for (&(a, b), &w) in &quad {
        let mut s = PauliString::identity(nq);
        s.set(a, Pauli::Z);
        s.set(b, Pauli::Z);
        terms.push(PauliTerm::new(s, w / 4.0));
        z_coeff[a] -= w / 4.0;
        z_coeff[b] -= w / 4.0;
    }
    for (a, &w) in lin.iter().enumerate() {
        z_coeff[a] -= w / 2.0;
    }
    for (a, &c) in z_coeff.iter().enumerate() {
        if c.abs() > 1e-12 {
            let mut s = PauliString::identity(nq);
            s.set(a, Pauli::Z);
            terms.push(PauliTerm::new(s, c));
        }
    }
    terms.sort_by(|x, y| x.string.lex_cmp(&y.string));
    PauliIR::single_block(nq, terms, Parameter::named("gamma", gamma))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs;

    #[test]
    fn maxcut_matches_table1_reg_counts() {
        // REG-20-4: 40 edges → 40 strings, naive 80 CNOT / 40 single.
        let g = graphs::random_regular(20, 4, 1);
        let ir = maxcut_ir(&g, 0.5);
        assert_eq!(ir.num_qubits(), 20);
        assert_eq!(ir.num_blocks(), 1);
        assert_eq!(ir.total_strings(), 40);
    }

    #[test]
    fn maxcut_strings_are_weighted_zz() {
        let g = Graph::new(3, vec![(0, 1, 0.7), (1, 2, 0.3)]);
        let ir = maxcut_ir(&g, 1.0);
        for t in &ir.blocks()[0].terms {
            assert_eq!(t.string.weight(), 2);
        }
        assert_eq!(ir.blocks()[0].terms[0].weight, 0.7);
    }

    #[test]
    fn tsp4_matches_table1_counts() {
        // TSP-4: 16 qubits, 112 strings (96 ZZ → 192 CNOT, 112 Rz).
        let d = graphs::random_distances(4, 3);
        let ir = tsp_ir(4, &d, 0.4, 10.0);
        assert_eq!(ir.num_qubits(), 16);
        assert_eq!(ir.total_strings(), 112);
        let zz = ir.blocks()[0]
            .terms
            .iter()
            .filter(|t| t.string.weight() == 2)
            .count();
        assert_eq!(zz, 96);
    }

    #[test]
    fn tsp5_matches_table1_counts() {
        let d = graphs::random_distances(5, 4);
        let ir = tsp_ir(5, &d, 0.4, 10.0);
        assert_eq!(ir.num_qubits(), 25);
        assert_eq!(ir.total_strings(), 225);
    }
}
