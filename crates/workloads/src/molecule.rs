//! Synthetic molecule-like Hamiltonians.
//!
//! The paper generates N2/H2S/MgO/CO2/NaCl Hamiltonians with PySCF, which
//! is unavailable here (DESIGN.md, substitution 1). This generator builds
//! Hamiltonians with the same *structural signature* as Jordan–Wigner
//! electronic-structure Hamiltonians — diagonal Z/ZZ density terms,
//! one-body `XZ…ZX + YZ…ZY` hopping terms, 8-string two-body groups with
//! X/Y endpoints joined by Z chains, smoothly decaying coefficients — and
//! grows them until the Table 1 string count for the named molecule is
//! reached. The compiler only ever sees the Pauli-string multiset, so this
//! preserves exactly the properties §6.3 attributes to the "first
//! category" benchmarks.

use std::collections::HashMap;

use pauli::{PauliString, PauliTerm};
use paulihedral::ir::PauliIR;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::jw;

/// Qubit counts and Pauli-string targets from Table 1.
pub const MOLECULES: [(&str, usize, usize); 5] = [
    ("N2", 20, 2951),
    ("H2S", 22, 4582),
    ("MgO", 28, 24239),
    ("CO2", 30, 16154),
    ("NaCl", 36, 67667),
];

/// Generates a molecule-like Hamiltonian on `n` qubits with roughly
/// `target_strings` Pauli strings (the generator stops after the term
/// group that crosses the target).
pub fn molecule_like_ir(n: usize, target_strings: usize, dt: f64, seed: u64) -> PauliIR {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc: HashMap<PauliString, f64> = HashMap::new();
    let add_terms = |acc: &mut HashMap<PauliString, f64>, terms: Vec<PauliTerm>| {
        for t in terms {
            if t.string.is_identity() {
                continue;
            }
            *acc.entry(t.string).or_insert(0.0) += t.weight;
        }
    };
    // Diagonal part: every number operator and density-density pair — the
    // Z/ZZ backbone every molecular Hamiltonian has.
    for p in 0..n {
        let c = 1.0 / (1.0 + p as f64 / 4.0) * rng.gen_range(0.5..1.5);
        add_terms(&mut acc, jw::one_body(n, p, p, c));
    }
    for p in 0..n {
        for q in p + 1..n {
            let c = 0.25 / (1.0 + (q - p) as f64) * rng.gen_range(0.5..1.5);
            add_terms(&mut acc, jw::two_body(n, p, q, q, p, c));
        }
    }
    // One-body hoppings: X Z…Z X + Y Z…Z Y pairs with decaying amplitude.
    for p in 0..n {
        for q in p + 1..n {
            let decay = (-((q - p) as f64) / 6.0).exp();
            if decay < 0.05 {
                continue;
            }
            let c = 0.5 * decay * rng.gen_range(0.2..1.0);
            add_terms(&mut acc, jw::one_body(n, p, q, c));
        }
    }
    // Two-body excitation groups until the target count is reached.
    let mut indices: Vec<usize> = (0..n).collect();
    let mut guard = 0usize;
    while acc.len() < target_strings {
        guard += 1;
        assert!(
            guard < 200 * target_strings,
            "molecule generator failed to reach {target_strings} strings"
        );
        indices.shuffle(&mut rng);
        let (p, q, r, s) = (indices[0], indices[1], indices[2], indices[3]);
        let spread = p.abs_diff(s).max(q.abs_diff(r)) as f64;
        let c = 0.1 * (-spread / 10.0).exp() * rng.gen_range(0.1..1.0);
        add_terms(&mut acc, jw::two_body(n, p, q, r, s, c));
    }
    let mut terms: Vec<PauliTerm> = acc
        .into_iter()
        .filter(|(_, w)| w.abs() > 1e-10)
        .map(|(s, w)| PauliTerm::new(s, w))
        .collect();
    terms.sort_by(|a, b| a.string.lex_cmp(&b.string));
    PauliIR::from_hamiltonian(n, terms, dt)
}

/// Generates one of the named Table 1 molecules.
///
/// # Panics
///
/// Panics if `name` is not one of the five molecules.
pub fn named_molecule_ir(name: &str, dt: f64) -> PauliIR {
    let (_, n, target) = MOLECULES
        .iter()
        .find(|(m, _, _)| *m == name)
        .unwrap_or_else(|| panic!("unknown molecule `{name}`"));
    // Seed derived from the name for reproducibility.
    let seed = name
        .bytes()
        .fold(0xCAFEu64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
    molecule_like_ir(*n, *target, dt, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::Pauli;

    #[test]
    fn small_molecule_reaches_target() {
        let ir = molecule_like_ir(8, 300, 1.0, 1);
        assert!(ir.total_strings() >= 300);
        assert!(ir.total_strings() < 320, "{}", ir.total_strings());
    }

    #[test]
    fn has_first_category_weight_distribution() {
        // §6.3: molecule strings have non-identity operators on varying
        // numbers of qubits, including long ones.
        let ir = molecule_like_ir(10, 400, 1.0, 2);
        let weights: Vec<usize> = ir
            .blocks()
            .iter()
            .map(|b| b.terms[0].string.weight())
            .collect();
        assert!(weights.iter().any(|&w| w <= 2));
        assert!(weights.iter().any(|&w| w >= 5));
    }

    #[test]
    fn contains_diagonal_backbone() {
        let ir = molecule_like_ir(6, 100, 1.0, 3);
        let diag = ir
            .blocks()
            .iter()
            .filter(|b| {
                b.terms[0]
                    .string
                    .iter()
                    .all(|p| matches!(p, Pauli::I | Pauli::Z))
            })
            .count();
        assert!(diag >= 6 + 15, "Z/ZZ backbone missing: {diag}");
    }

    #[test]
    fn named_molecules_are_deterministic() {
        let a = named_molecule_ir("N2", 1.0);
        assert_eq!(a.num_qubits(), 20);
        assert!(a.total_strings() >= 2951);
        let b = named_molecule_ir("N2", 1.0);
        assert_eq!(a.total_strings(), b.total_strings());
    }

    #[test]
    #[should_panic(expected = "unknown molecule")]
    fn unknown_name_panics() {
        named_molecule_ir("H2O", 1.0);
    }
}
