//! The named benchmark suite of Table 1.

use paulihedral::ir::PauliIR;

use crate::{graphs, molecule, qaoa, random, spin, uccsd};

/// Which backend a benchmark targets in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendClass {
    /// Near-term superconducting backend (mapped to IBM Manhattan-65).
    Superconducting,
    /// Fault-tolerant backend (no mapping).
    FaultTolerant,
}

/// A generated benchmark.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Table 1 name, e.g. `UCCSD-16` or `Ising-2D`.
    pub name: String,
    /// Backend class.
    pub class: BackendClass,
    /// The program.
    pub ir: PauliIR,
}

/// The 14 SC-backend benchmark names of Table 1.
pub const SC_NAMES: [&str; 14] = [
    "UCCSD-8",
    "UCCSD-12",
    "UCCSD-16",
    "UCCSD-20",
    "UCCSD-24",
    "UCCSD-28",
    "REG-20-4",
    "REG-20-8",
    "REG-20-12",
    "Rand-20-0.1",
    "Rand-20-0.3",
    "Rand-20-0.5",
    "TSP-4",
    "TSP-5",
];

/// The 17 FT-backend benchmark names of Table 1.
pub const FT_NAMES: [&str; 17] = [
    "Ising-1D",
    "Ising-2D",
    "Ising-3D",
    "Heisen-1D",
    "Heisen-2D",
    "Heisen-3D",
    "N2",
    "H2S",
    "MgO",
    "CO2",
    "NaCl",
    "Rand-30",
    "Rand-40",
    "Rand-50",
    "Rand-60",
    "Rand-70",
    "Rand-80",
];

/// All 31 benchmark names in Table 1 order.
pub fn all_names() -> Vec<&'static str> {
    SC_NAMES.iter().chain(FT_NAMES.iter()).copied().collect()
}

/// Generates a named benchmark if the name is in Table 1 (the
/// non-panicking front door for name lookups from user input, e.g. the
/// `phc` `workload:` pseudo-inputs).
pub fn try_generate(name: &str) -> Option<Benchmark> {
    all_names().contains(&name).then(|| generate(name))
}

/// Generates a named benchmark (deterministic: fixed seeds per name).
///
/// # Panics
///
/// Panics if the name is not in Table 1.
pub fn generate(name: &str) -> Benchmark {
    let (class, ir) = match name {
        "UCCSD-8" => (BackendClass::Superconducting, uccsd::uccsd_ir(8, 8)),
        "UCCSD-12" => (BackendClass::Superconducting, uccsd::uccsd_ir(12, 12)),
        "UCCSD-16" => (BackendClass::Superconducting, uccsd::uccsd_ir(16, 16)),
        "UCCSD-20" => (BackendClass::Superconducting, uccsd::uccsd_ir(20, 20)),
        "UCCSD-24" => (BackendClass::Superconducting, uccsd::uccsd_ir(24, 24)),
        "UCCSD-28" => (BackendClass::Superconducting, uccsd::uccsd_ir(28, 28)),
        "REG-20-4" => (
            BackendClass::Superconducting,
            qaoa::maxcut_ir(&graphs::random_regular(20, 4, 204), 0.4),
        ),
        "REG-20-8" => (
            BackendClass::Superconducting,
            qaoa::maxcut_ir(&graphs::random_regular(20, 8, 208), 0.4),
        ),
        "REG-20-12" => (
            BackendClass::Superconducting,
            qaoa::maxcut_ir(&graphs::random_regular(20, 12, 212), 0.4),
        ),
        "Rand-20-0.1" => (
            BackendClass::Superconducting,
            qaoa::maxcut_ir(&graphs::erdos_renyi(20, 0.1, 2001), 0.4),
        ),
        "Rand-20-0.3" => (
            BackendClass::Superconducting,
            qaoa::maxcut_ir(&graphs::erdos_renyi(20, 0.3, 2003), 0.4),
        ),
        "Rand-20-0.5" => (
            BackendClass::Superconducting,
            qaoa::maxcut_ir(&graphs::erdos_renyi(20, 0.5, 2005), 0.4),
        ),
        "TSP-4" => (
            BackendClass::Superconducting,
            qaoa::tsp_ir(4, &graphs::random_distances(4, 44), 0.4, 10.0),
        ),
        "TSP-5" => (
            BackendClass::Superconducting,
            qaoa::tsp_ir(5, &graphs::random_distances(5, 55), 0.4, 10.0),
        ),
        "Ising-1D" => (BackendClass::FaultTolerant, spin::ising_ir(&[30], 1.0, 0.1)),
        "Ising-2D" => (
            BackendClass::FaultTolerant,
            spin::ising_ir(&[5, 6], 1.0, 0.1),
        ),
        "Ising-3D" => (
            BackendClass::FaultTolerant,
            spin::ising_ir(&[2, 3, 5], 1.0, 0.1),
        ),
        "Heisen-1D" => (
            BackendClass::FaultTolerant,
            spin::heisenberg_ir(&[30], 1.0, 0.1),
        ),
        "Heisen-2D" => (
            BackendClass::FaultTolerant,
            spin::heisenberg_ir(&[5, 6], 1.0, 0.1),
        ),
        "Heisen-3D" => (
            BackendClass::FaultTolerant,
            spin::heisenberg_ir(&[2, 3, 5], 1.0, 0.1),
        ),
        "N2" | "H2S" | "MgO" | "CO2" | "NaCl" => (
            BackendClass::FaultTolerant,
            molecule::named_molecule_ir(name, 1.0),
        ),
        "Rand-30" => (
            BackendClass::FaultTolerant,
            random::random_hamiltonian_ir(30, 0.1, 30),
        ),
        "Rand-40" => (
            BackendClass::FaultTolerant,
            random::random_hamiltonian_ir(40, 0.1, 40),
        ),
        "Rand-50" => (
            BackendClass::FaultTolerant,
            random::random_hamiltonian_ir(50, 0.1, 50),
        ),
        "Rand-60" => (
            BackendClass::FaultTolerant,
            random::random_hamiltonian_ir(60, 0.1, 60),
        ),
        "Rand-70" => (
            BackendClass::FaultTolerant,
            random::random_hamiltonian_ir(70, 0.1, 70),
        ),
        "Rand-80" => (
            BackendClass::FaultTolerant,
            random::random_hamiltonian_ir(80, 0.1, 80),
        ),
        other => panic!("unknown benchmark `{other}`"),
    };
    Benchmark {
        name: name.to_string(),
        class,
        ir,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_31_benchmarks() {
        assert_eq!(all_names().len(), 31);
    }

    #[test]
    fn qaoa_and_spin_benchmarks_match_table1_exactly() {
        for (name, qubits, strings) in [
            ("REG-20-4", 20, 40),
            ("REG-20-8", 20, 80),
            ("REG-20-12", 20, 120),
            ("TSP-4", 16, 112),
            ("TSP-5", 25, 225),
            ("Ising-1D", 30, 29),
            ("Ising-2D", 30, 49),
            ("Ising-3D", 30, 59),
            ("Heisen-1D", 30, 87),
            ("Heisen-2D", 30, 147),
            ("Heisen-3D", 30, 177),
        ] {
            let b = generate(name);
            assert_eq!(b.ir.num_qubits(), qubits, "{name}");
            assert_eq!(b.ir.total_strings(), strings, "{name}");
        }
    }

    #[test]
    fn random_benchmarks_follow_recipe() {
        let b = generate("Rand-30");
        assert_eq!(b.ir.total_strings(), 4500);
        assert_eq!(b.class, BackendClass::FaultTolerant);
    }

    #[test]
    fn erdos_renyi_benchmarks_are_near_expected_density() {
        let b = generate("Rand-20-0.3");
        let m = b.ir.total_strings();
        assert!((35..=80).contains(&m), "got {m} edges");
    }

    #[test]
    fn classes_match_paper_split() {
        assert!(SC_NAMES
            .iter()
            .all(|n| generate(n).class == BackendClass::Superconducting));
        assert_eq!(generate("Ising-1D").class, BackendClass::FaultTolerant);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        generate("UCCSD-9");
    }
}
