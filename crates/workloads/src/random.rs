//! The paper's random-Hamiltonian recipe (§6.1):
//!
//! > For a Hamiltonian of n qubits, we prepare 5n² Pauli strings. In each
//! > Pauli string, we first randomly select one integer m between 1 and n.
//! > Then we randomly select m qubits and assign random Pauli operators to
//! > them.

use pauli::{Pauli, PauliString, PauliTerm};
use paulihedral::ir::PauliIR;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates `Rand-n`: `5n²` random strings with random weights in
/// `[-1, 1]`, in Hamiltonian-simulation form.
pub fn random_hamiltonian_ir(n: usize, dt: f64, seed: u64) -> PauliIR {
    let mut rng = StdRng::seed_from_u64(seed);
    let count = 5 * n * n;
    let mut terms = Vec::with_capacity(count);
    let mut qubits: Vec<usize> = (0..n).collect();
    for _ in 0..count {
        let m = rng.gen_range(1..=n);
        qubits.shuffle(&mut rng);
        let mut s = PauliString::identity(n);
        for &q in &qubits[..m] {
            let p = match rng.gen_range(0..3) {
                0 => Pauli::X,
                1 => Pauli::Y,
                _ => Pauli::Z,
            };
            s.set(q, p);
        }
        let w: f64 = rng.gen_range(-1.0..1.0);
        terms.push(PauliTerm::new(s, if w == 0.0 { 0.5 } else { w }));
    }
    PauliIR::from_hamiltonian(n, terms, dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_recipe() {
        let ir = random_hamiltonian_ir(10, 0.1, 1);
        assert_eq!(ir.total_strings(), 500);
        assert_eq!(ir.num_qubits(), 10);
    }

    #[test]
    fn weights_span_the_whole_register() {
        let ir = random_hamiltonian_ir(12, 0.1, 2);
        let weights: Vec<usize> = ir
            .blocks()
            .iter()
            .map(|b| b.terms[0].string.weight())
            .collect();
        assert!(weights.iter().any(|&w| w <= 2));
        assert!(weights.iter().any(|&w| w >= 10));
        assert!(weights.iter().all(|&w| (1..=12).contains(&w)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = random_hamiltonian_ir(8, 0.1, 5);
        let b = random_hamiltonian_ir(8, 0.1, 5);
        assert_eq!(a, b);
        let c = random_hamiltonian_ir(8, 0.1, 6);
        assert_ne!(a, c);
    }
}
