//! VQE UCCSD ansatz generators (the paper's `UCCSD-n` family).
//!
//! The unitary coupled-cluster singles-and-doubles ansatz on `n` spin
//! orbitals (even/odd indices = spin-up/down, first `n_e` orbitals
//! occupied at half filling) is
//! `Π exp(iθ_k H_k)` with one Hermitian generator per spin-conserving
//! excitation. Each excitation becomes one Pauli block — its 2 (singles)
//! or 8 (doubles) strings share the variational parameter, the constraint
//! the Pauli IR block structure encodes (Fig. 6(b)).

use paulihedral::ir::{Parameter, PauliBlock, PauliIR};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::jw;

/// Generates `UCCSD-n` on `n` spin orbitals at half filling with random
/// (seeded) parameter values standing in for a VQE iterate.
///
/// # Panics
///
/// Panics if `n` is odd or below 4.
pub fn uccsd_ir(n: usize, seed: u64) -> PauliIR {
    assert!(n >= 4 && n.is_multiple_of(2), "UCCSD needs an even n ≥ 4");
    let mut rng = StdRng::seed_from_u64(seed);
    let n_spatial = n / 2;
    let occ_spatial = n_spatial / 2;
    // Spin orbital layout: spatial p, spin σ ∈ {0, 1} → index 2p + σ.
    let spin_orbitals = |occupied: bool, spin: usize| -> Vec<usize> {
        let range = if occupied {
            0..occ_spatial
        } else {
            occ_spatial..n_spatial
        };
        range.map(|p| 2 * p + spin).collect()
    };
    let mut ir = PauliIR::new(n);
    let param = |label: String, rng: &mut StdRng| Parameter::named(label, rng.gen_range(-0.5..0.5));
    // Spin-conserving singles.
    let mut t = 0usize;
    for spin in 0..2 {
        for &i in &spin_orbitals(true, spin) {
            for &a in &spin_orbitals(false, spin) {
                let terms = jw::single_excitation(n, i, a);
                ir.push_block(PauliBlock::new(terms, param(format!("t{t}"), &mut rng)));
                t += 1;
            }
        }
    }
    // Doubles: same-spin (αα, ββ) and opposite-spin (αβ).
    for spin in 0..2 {
        let occ = spin_orbitals(true, spin);
        let virt = spin_orbitals(false, spin);
        for (ii, &i) in occ.iter().enumerate() {
            for &j in &occ[ii + 1..] {
                for (ai, &a) in virt.iter().enumerate() {
                    for &b in &virt[ai + 1..] {
                        let terms = jw::double_excitation(n, i, j, a, b);
                        ir.push_block(PauliBlock::new(terms, param(format!("t{t}"), &mut rng)));
                        t += 1;
                    }
                }
            }
        }
    }
    let occ_a = spin_orbitals(true, 0);
    let virt_a = spin_orbitals(false, 0);
    let occ_b = spin_orbitals(true, 1);
    let virt_b = spin_orbitals(false, 1);
    for &i in &occ_a {
        for &j in &occ_b {
            for &a in &virt_a {
                for &b in &virt_b {
                    let terms = jw::double_excitation(n, i, j, a, b);
                    ir.push_block(PauliBlock::new(terms, param(format!("t{t}"), &mut rng)));
                    t += 1;
                }
            }
        }
    }
    ir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uccsd8_structure() {
        let ir = uccsd_ir(8, 1);
        assert_eq!(ir.num_qubits(), 8);
        // Half filling: 2 occupied spatial, 2 virtual spatial.
        // Singles: 2·2 per spin → 8 blocks of 2 strings.
        // Doubles: same-spin 1+1, opposite-spin 16 → 18 blocks of 8.
        let singles = ir.blocks().iter().filter(|b| b.terms.len() == 2).count();
        let doubles = ir.blocks().iter().filter(|b| b.terms.len() == 8).count();
        assert_eq!(singles, 8);
        assert_eq!(doubles, 18);
        assert_eq!(ir.total_strings(), 8 * 2 + 18 * 8);
    }

    #[test]
    fn blocks_share_parameters() {
        let ir = uccsd_ir(8, 2);
        for b in ir.blocks() {
            assert!(b.parameter.name.is_some());
            // All strings of an excitation share support size parity.
            let w0 = b.terms[0].string.weight();
            assert!(b.terms.iter().all(|t| t.string.weight() == w0));
        }
    }

    #[test]
    fn grows_with_n() {
        let s8 = uccsd_ir(8, 1).total_strings();
        let s12 = uccsd_ir(12, 1).total_strings();
        let s16 = uccsd_ir(16, 1).total_strings();
        assert!(s8 < s12 && s12 < s16);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(uccsd_ir(8, 3), uccsd_ir(8, 3));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_sizes() {
        uccsd_ir(7, 1);
    }
}
