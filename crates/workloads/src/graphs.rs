//! Seeded random graph generation for the QAOA benchmarks.

use rand::rngs::StdRng;

use rand::{Rng, SeedableRng};

/// An undirected weighted graph.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of nodes.
    pub n: usize,
    /// Undirected weighted edges `(u, v, w)` with `u < v`.
    pub edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// Builds a graph after validating the edge list.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn new(n: usize, edges: Vec<(usize, usize, f64)>) -> Graph {
        for &(u, v, _) in &edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range");
            assert_ne!(u, v, "self-loop on {u}");
        }
        Graph { n, edges }
    }

    /// The degree sequence.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0; self.n];
        for &(u, v, _) in &self.edges {
            d[u] += 1;
            d[v] += 1;
        }
        d
    }
}

/// A random `d`-regular graph on `n` nodes, unit edge weights. Matches the
/// paper's `REG-n-d` family.
///
/// Construction: a circulant `d`-regular graph randomized by double-edge
/// swaps (each swap preserves the degree sequence), which works at any
/// density — the configuration model's rejection rate explodes for
/// `REG-20-12`.
///
/// # Panics
///
/// Panics if `n·d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    assert!(d < n, "degree must be below n");
    let mut rng = StdRng::seed_from_u64(seed);
    // Circulant seed graph: chords ±1..±d/2, plus the antipodal chord for
    // odd d (n is even then, since n·d is even).
    let mut set = std::collections::HashSet::<(usize, usize)>::new();
    let key = |a: usize, b: usize| (a.min(b), a.max(b));
    for i in 0..n {
        for k in 1..=d / 2 {
            set.insert(key(i, (i + k) % n));
        }
    }
    if d % 2 == 1 {
        for i in 0..n / 2 {
            set.insert(key(i, i + n / 2));
        }
    }
    let mut edges: Vec<(usize, usize)> = set.iter().copied().collect();
    edges.sort_unstable();
    // Randomize with double-edge swaps: (a,b),(c,e) → (a,c),(b,e).
    let attempts = 20 * edges.len();
    for _ in 0..attempts {
        let i = rng.gen_range(0..edges.len());
        let j = rng.gen_range(0..edges.len());
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, e) = edges[j];
        if a == c || a == e || b == c || b == e {
            continue;
        }
        let (n1, n2) = (key(a, c), key(b, e));
        if set.contains(&n1) || set.contains(&n2) {
            continue;
        }
        set.remove(&key(a, b));
        set.remove(&key(c, e));
        set.insert(n1);
        set.insert(n2);
        edges[i] = n1;
        edges[j] = n2;
    }
    Graph::new(n, edges.into_iter().map(|(u, v)| (u, v, 1.0)).collect())
}

/// An Erdős–Rényi graph `G(n, p)`, unit edge weights. Matches `Rand-n-p`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if rng.gen::<f64>() < p {
                edges.push((u, v, 1.0));
            }
        }
    }
    Graph::new(n, edges)
}

/// Random symmetric city distances for the TSP benchmarks.
// Index loops mirror entries across the diagonal; iterators cannot borrow
// two rows mutably at once.
#[allow(clippy::needless_range_loop)]
pub fn random_distances(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let w = 0.1 + rng.gen::<f64>();
            d[i][j] = w;
            d[j][i] = w;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graphs_are_regular_and_simple() {
        for (n, d, seed) in [(20, 4, 1), (20, 8, 2), (20, 12, 3), (7, 4, 4)] {
            let g = random_regular(n, d, seed);
            assert!(g.degrees().iter().all(|&x| x == d), "n={n} d={d}");
            assert_eq!(g.edges.len(), n * d / 2);
            let mut seen = std::collections::HashSet::new();
            for &(u, v, _) in &g.edges {
                assert!(u < v);
                assert!(seen.insert((u, v)), "duplicate edge");
            }
        }
    }

    #[test]
    fn regular_graphs_are_seed_deterministic() {
        let a = random_regular(20, 4, 7);
        let b = random_regular(20, 4, 7);
        assert_eq!(a.edges, b.edges);
        let c = random_regular(20, 4, 8);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn erdos_renyi_edge_count_tracks_p() {
        let g = erdos_renyi(20, 0.3, 42);
        let expected = (190.0 * 0.3) as usize;
        assert!(g.edges.len().abs_diff(expected) < 25);
        assert!(erdos_renyi(20, 0.0, 1).edges.is_empty());
        assert_eq!(erdos_renyi(10, 1.0, 1).edges.len(), 45);
    }

    #[test]
    fn distances_are_symmetric_positive() {
        let d = random_distances(5, 9);
        for (i, row) in d.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, &w) in row.iter().enumerate() {
                assert_eq!(w, d[j][i]);
                if i != j {
                    assert!(w > 0.0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_stub_count_rejected() {
        random_regular(5, 3, 1);
    }
}
