//! The 31 evaluation workloads of the Paulihedral paper (Table 1).
//!
//! * [`jw`] — Jordan–Wigner transformation of fermionic operators into
//!   Pauli sums (the machinery behind UCCSD and the molecule-like
//!   Hamiltonians),
//! * [`uccsd`] — VQE UCCSD ansatzes (SC backend benchmarks),
//! * [`qaoa`] — QAOA MaxCut on regular/random graphs and TSP programs,
//! * [`spin`] — Ising and Heisenberg models on 1D/2D/3D lattices,
//! * [`molecule`] — synthetic molecule-like Hamiltonians standing in for
//!   the paper's PySCF-generated N2/H2S/MgO/CO2/NaCl (see DESIGN.md,
//!   substitution 1),
//! * [`random`] — the paper's random-Hamiltonian recipe (5n² strings),
//! * [`graphs`] — seeded random graph generators,
//! * [`suite`] — the named benchmark table tying it all together,
//! * [`scale`] — beyond-Table-1 lattices at 100–1000+ qubits for the
//!   intra-compile parallelism benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graphs;
pub mod jw;
pub mod molecule;
pub mod qaoa;
pub mod random;
pub mod scale;
pub mod spin;
pub mod suite;
pub mod uccsd;
