//! Chaos tests: the compile path driven through seeded fault plans.
//!
//! Every test pins its fault seed, so a failure replays exactly. The
//! properties under test are the robustness contracts, not any specific
//! fault outcome:
//!
//! * **Total termination** — whatever the plan injects, every submitted
//!   job gets exactly one final answer and the server drains.
//! * **Bit-identity** — a job that reports `ok` carries an artifact
//!   byte-identical to a fault-free in-process compile of the same
//!   program. Faults may slow or fail work; they may never corrupt it.
//! * **Typed failures** — a job that reports `!ok` carries an
//!   `error_kind` from the documented taxonomy, never a wedge or a
//!   mystery disconnect.
//! * **Degrade, then heal** — a failing disk tier flips the cache to
//!   memory-only after the error threshold and is re-probed back to
//!   health once reads succeed again.

use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use paulihedral::parse::{parse_program, print_program};
use paulihedral::{CompileError, Scheduler};
use ph_engine::json::Json;
use ph_engine::proto::{self, CompileRequest, Request};
use ph_engine::{
    BatchEngine, CacheConfig, Client, ClientConfig, CompileUnit, Connection, Engine, Fault,
    FaultPlan, Pass, PassContext, Pipeline, ServeConfig, Server, Target,
};
use workloads::suite::{self, BackendClass};

const TINY_IR: &str = "{(ZZY, 0.5), 1.0};\n{(XXI, 0.3), 1.0};\n";

/// A scratch directory unique to one test, cleaned before use.
fn scratch(label: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chaos_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A distinct two-block program per index (so jobs neither coalesce nor
/// hit each other's cache entries).
fn distinct_ir(i: usize) -> String {
    format!("{{(ZZY, 0.5), {}.0}};\n{{(XXI, 0.3), 1.0}};\n", i + 1)
}

fn spawn_server(
    engine: BatchEngine,
    config: ServeConfig,
) -> (
    std::net::SocketAddr,
    ph_engine::ServerHandle,
    thread::JoinHandle<ph_engine::ServeStats>,
) {
    let server = Server::bind("127.0.0.1:0", engine, config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = thread::spawn(move || server.run());
    (addr, handle, runner)
}

fn compile_req(id: u64, ir: &str) -> CompileRequest {
    CompileRequest {
        id,
        name: None,
        ir: ir.to_string(),
        backend: None,
        scheduler: None,
        deadline_ms: None,
        artifact: false,
    }
}

/// A pass that blocks every compile until released — the stuck-job lever
/// for the watchdog and dead-connection tests.
#[derive(Clone, Default)]
struct GatePass {
    entered: Arc<(Mutex<usize>, Condvar)>,
    release: Arc<(Mutex<bool>, Condvar)>,
}

impl GatePass {
    fn entered(&self) -> usize {
        *self.entered.0.lock().unwrap()
    }

    fn open(&self) {
        *self.release.0.lock().unwrap() = true;
        self.release.1.notify_all();
    }
}

impl Pass for GatePass {
    fn name(&self) -> &'static str {
        "gate"
    }

    fn signature(&self, _ctx: &PassContext<'_>) -> String {
        "gate".into()
    }

    fn run(&self, _unit: &mut CompileUnit, _ctx: &PassContext<'_>) -> Result<String, CompileError> {
        {
            let (count, cv) = &*self.entered;
            *count.lock().unwrap() += 1;
            cv.notify_all();
        }
        let (released, cv) = &*self.release;
        let mut open = released.lock().unwrap();
        while !*open {
            open = cv.wait(open).unwrap();
        }
        Ok(String::new())
    }
}

fn gated_pipeline(gate: &GatePass) -> Pipeline {
    Pipeline::builder()
        .pass(gate.clone())
        .schedule(Scheduler::Auto)
        .synthesize()
        .build()
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(2));
    }
}

/// Disk-tier graceful degradation: with every disk read and write
/// failing, the cache flips to memory-only after the configured error
/// threshold — and once the disk recovers, a re-probe heals it.
#[test]
fn disk_faults_degrade_to_memory_only_then_heal() {
    let dir = scratch("degrade_heal");
    let fault = Fault::seeded(FaultPlan::parse("seed=42,disk.read=1.0,disk.write=1.0").unwrap());
    let engine = Engine::new(Pipeline::auto(), Target::FaultTolerant)
        .with_cache_config(CacheConfig {
            disk_dir: Some(dir.clone()),
            disk_error_threshold: 3,
            disk_reprobe: Duration::from_millis(50),
            ..CacheConfig::default()
        })
        .with_fault(fault.clone());

    // Distinct programs: each one is a memory miss, so each one touches
    // the (failing) disk tier on both the probe and the write-back.
    for i in 0..4 {
        let ir = parse_program(&distinct_ir(i)).expect("parse");
        engine
            .compile(&ir)
            .expect("faulty disk never fails compiles");
    }
    let stats = engine.cache_stats();
    assert!(
        stats.disk_disabled,
        "3 consecutive I/O errors must disable the disk tier: {stats:?}"
    );
    assert!(stats.disk_errors >= 3, "errors counted: {stats:?}");
    assert_eq!(stats.disk_heals, 0);
    // Every compile still succeeded — degradation is invisible to callers.
    assert_eq!(stats.misses, 4);

    // While disabled (and before the re-probe window), the disk is not
    // touched at all: no new errors accumulate.
    let errors_when_disabled = stats.disk_errors;
    let ir = parse_program(&distinct_ir(100)).expect("parse");
    engine.compile(&ir).expect("compile");
    assert_eq!(engine.cache_stats().disk_errors, errors_when_disabled);

    // The disk recovers (faults off); after the re-probe window one
    // probing operation is let through, succeeds, and heals the tier.
    fault.pause();
    thread::sleep(Duration::from_millis(60));
    let ir = parse_program(&distinct_ir(101)).expect("parse");
    engine.compile(&ir).expect("compile");
    let healed = engine.cache_stats();
    assert!(!healed.disk_disabled, "re-probe must heal: {healed:?}");
    assert!(healed.disk_heals >= 1, "heal counted: {healed:?}");

    // And the healed tier actually persists again: a fresh engine over
    // the same directory disk-hits the post-heal entry.
    let fresh =
        Engine::new(Pipeline::auto(), Target::FaultTolerant).with_cache_config(CacheConfig {
            disk_dir: Some(dir),
            ..CacheConfig::default()
        });
    let ir = parse_program(&distinct_ir(101)).expect("parse");
    fresh.compile(&ir).expect("compile");
    assert_eq!(fresh.cache_stats().disk_hits, 1);
}

/// The tentpole chaos property: the full 31-benchmark suite submitted
/// through a server running a multi-seam fault plan (failing disk,
/// panicking and slow workers, dropped connections) — every job
/// terminates with exactly one answer, every success is bit-identical to
/// a fault-free compile, every failure is typed, and the server drains.
#[test]
fn chaos_suite_terminates_and_successes_are_bit_identical() {
    let dir = scratch("suite");
    let plan = FaultPlan::parse(
        "seed=1234,disk.read=0.15,disk.write=0.15,disk.short=0.1,disk.flip=0.1,\
         worker.panic=0.12,worker.delay=0.1,worker.delay_ms=2,conn.drop=0.1",
    )
    .unwrap();
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant)
        .with_cache_config(CacheConfig {
            disk_dir: Some(dir),
            ..CacheConfig::default()
        })
        .with_fault(Fault::seeded(plan));
    let (addr, _handle, runner) = spawn_server(engine, ServeConfig::default());

    let names = suite::all_names();
    let mut programs = Vec::new();
    let mut reqs = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let bench = suite::generate(name);
        let backend = match bench.class {
            BackendClass::Superconducting => "manhattan",
            BackendClass::FaultTolerant => "ft",
        };
        let ir_text = print_program(&bench.ir);
        reqs.push(CompileRequest {
            id: i as u64 + 1,
            name: Some(bench.name.clone()),
            ir: ir_text.clone(),
            backend: Some(backend.to_string()),
            scheduler: None,
            deadline_ms: None,
            artifact: true,
        });
        programs.push((ir_text, backend));
    }

    let mut client = Client::new(
        addr,
        ClientConfig {
            max_retries: 60,
            job_retries: 12,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            seed: 7,
            ..ClientConfig::default()
        },
    )
    .expect("resolve");
    let results = client
        .submit_all(reqs)
        .expect("chaos plan must stay within the retry budget");

    // Total termination: one final answer per id.
    assert_eq!(results.len(), names.len());
    let reference = Engine::new(Pipeline::auto(), Target::FaultTolerant);
    let allowed_failures = ["panicked", "overloaded", "watchdog_timeout"];
    for (id, report) in &results {
        let i = *id as usize - 1;
        if report.get("ok").and_then(Json::as_bool) == Some(true) {
            let (ir_text, backend) = &programs[i];
            let ir = parse_program(ir_text).expect("printed IR reparses");
            let target = Target::parse_spec(backend, ir.num_qubits()).expect("backend spec");
            let expected = reference
                .compile_with(&ir, Some(&target), None)
                .expect("in-process compile");
            let hex = report
                .get("artifact")
                .and_then(Json::as_str)
                .expect("ok report carries the artifact");
            let bytes = proto::hex_decode(hex).expect("artifact is valid hex");
            let entry = ph_engine::persist::decode_entry(&bytes).expect("artifact decodes");
            assert_eq!(
                entry.compiled.circuit, expected.compiled.circuit,
                "{}: circuit compiled under faults differs from fault-free",
                names[i]
            );
            assert_eq!(entry.compiled.emitted, expected.compiled.emitted);
            assert_eq!(entry.compiled.initial_l2p, expected.compiled.initial_l2p);
            assert_eq!(entry.compiled.final_l2p, expected.compiled.final_l2p);
        } else {
            // With a 12-per-job retry budget failures are rare, but when
            // the budget does run out the answer must still be typed.
            let kind = report
                .get("error_kind")
                .and_then(Json::as_str)
                .unwrap_or_default();
            assert!(
                allowed_failures.contains(&kind),
                "{}: unexpected failure kind {kind:?}: {}",
                names[i],
                report.to_compact()
            );
        }
    }

    client.control(&Request::Shutdown).expect("shutdown");
    let stats = runner.join().expect("server drains under chaos");
    assert_eq!(stats.deadline_misses, 0);
    assert!(stats.requests >= names.len() as u64);
}

/// The resilient client survives a connection-dropping server: every job
/// still gets an `ok` answer, and the retry counters show it worked for
/// them. Seed 9 injects drops into the first connection's report writes
/// (verified by the retries assertion — a different seed constant would
/// need re-verification).
#[test]
fn client_retries_through_dropped_connections() {
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant)
        .with_threads(1)
        .with_fault(Fault::seeded(
            FaultPlan::parse("seed=9,conn.drop=0.25").unwrap(),
        ));
    let (addr, _handle, runner) = spawn_server(engine, ServeConfig::default());

    let reqs: Vec<CompileRequest> = (0..10)
        .map(|i| compile_req(i as u64 + 1, &distinct_ir(i)))
        .collect();
    let mut client = Client::new(
        addr,
        ClientConfig {
            max_retries: 60,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(20),
            seed: 3,
            ..ClientConfig::default()
        },
    )
    .expect("resolve");
    let results = client.submit_all(reqs).expect("within retry budget");

    assert_eq!(results.len(), 10);
    for (id, report) in &results {
        assert_eq!(
            report.get("ok").and_then(Json::as_bool),
            Some(true),
            "job {id} failed: {}",
            report.to_compact()
        );
    }
    let cs = client.stats();
    assert!(
        cs.retries >= 1,
        "the drop plan must have forced at least one reconnect: {cs:?}"
    );
    // Every transport retry reconnects exactly once (the shutdown's own
    // connection comes later).
    assert_eq!(cs.connects, cs.retries + 1);

    client.control(&Request::Shutdown).expect("shutdown");
    runner.join().expect("server drains");
}

/// The watchdog converts stuck workers into typed `watchdog_timeout`
/// answers and replacement workers, and the server still drains with
/// every worker wedged.
#[test]
fn watchdog_times_out_stuck_jobs_and_drain_still_completes() {
    let gate = GatePass::default();
    let engine = BatchEngine::new(gated_pipeline(&gate), Target::FaultTolerant)
        .without_cache()
        .with_threads(1);
    let config = ServeConfig {
        watchdog: Some(Duration::from_millis(100)),
        ..ServeConfig::default()
    };
    let (addr, handle, runner) = spawn_server(engine, config);

    let mut client = Connection::connect(addr).expect("connect");
    for i in 0..2u64 {
        client
            .send(&Request::Compile(compile_req(
                i + 1,
                &distinct_ir(i as usize),
            )))
            .expect("send");
    }

    // Both jobs must be answered — with watchdog timeouts, since nothing
    // ever opens the gate for the workers chewing on them.
    let mut kinds = Vec::new();
    for _ in 0..2 {
        let report = client
            .recv()
            .expect("read")
            .expect("watchdog must answer; never wedge the client");
        assert_eq!(report.get("type").and_then(Json::as_str), Some("report"));
        assert_eq!(report.get("ok").and_then(Json::as_bool), Some(false));
        kinds.push(
            report
                .get("error_kind")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        );
    }
    assert_eq!(kinds, ["watchdog_timeout", "watchdog_timeout"]);

    let stats = handle.stats();
    assert_eq!(stats.watchdog_timeouts, 2);
    assert!(
        stats.workers_replaced >= 1,
        "a replacement worker must have been spawned: {stats:?}"
    );

    // Drain completes even though the original worker (and possibly its
    // replacement) are still wedged inside the gate.
    client.finish().expect("half-close");
    handle.shutdown();
    let final_stats = runner
        .join()
        .expect("drain must not wait for wedged workers");
    assert_eq!(final_stats.watchdog_timeouts, 2);
    assert_eq!(final_stats.completed, 0);

    // Unwedge the blocked threads so they exit before the process does.
    gate.open();
}

/// A client that disconnects mid-stream gets its still-queued jobs
/// cancelled instead of compiled for nobody: the server detects the dead
/// connection at the first failed write and skips the rest.
#[test]
fn dead_connection_cancels_queued_jobs() {
    let gate = GatePass::default();
    let engine = BatchEngine::new(gated_pipeline(&gate), Target::FaultTolerant)
        .without_cache()
        .with_threads(1);
    let (addr, handle, runner) = spawn_server(engine, ServeConfig::default());

    let mut client = Connection::connect(addr).expect("connect");
    const JOBS: u64 = 8;
    for i in 0..JOBS {
        client
            .send(&Request::Compile(compile_req(
                i + 1,
                &distinct_ir(i as usize),
            )))
            .expect("send");
    }
    // First job inside the (blocked) worker, the rest queued behind it.
    wait_for(|| gate.entered() >= 1, "first job to enter the worker");
    wait_for(
        || handle.queued() as u64 == JOBS - 1,
        "remaining jobs to queue",
    );

    // The client vanishes. Give the RST a moment to land, then let the
    // worker run: its report writes start failing, which marks the
    // connection dead and cancels the queued jobs after it.
    drop(client);
    thread::sleep(Duration::from_millis(50));
    gate.open();

    handle.shutdown();
    let stats = runner.join().expect("server drains");
    assert_eq!(
        stats.completed + stats.cancelled,
        JOBS,
        "every accepted job answered exactly once: {stats:?}"
    );
    // TCP may swallow the first write or two after the peer closes (the
    // RST races the write), so the exact completed/cancelled split is
    // platform-dependent — but most of the queue must have been skipped.
    assert!(
        stats.cancelled >= JOBS / 2,
        "queued jobs for the dead connection must be cancelled: {stats:?}"
    );
}

/// The `health` request reports degradation: a failing disk tier flips
/// `disk_tier` to `disabled` and the overall status to `degraded`, while
/// a healthy server reports `ok`.
#[test]
fn health_reports_disk_degradation() {
    // Healthy server, no disk tier.
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant);
    let (addr, _handle, runner) = spawn_server(engine, ServeConfig::default());
    let mut client = Connection::connect(addr).expect("connect");
    client.send(&Request::Health).expect("send");
    let health = client.recv().expect("read").expect("health answer");
    assert_eq!(health.get("type").and_then(Json::as_str), Some("health"));
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("disk_tier").and_then(Json::as_str), Some("none"));
    client.send(&Request::Shutdown).expect("send");
    runner.join().expect("drain");

    // Degraded server: every disk op fails, threshold 1.
    let dir = scratch("health");
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant)
        .with_cache_config(CacheConfig {
            disk_dir: Some(dir),
            disk_error_threshold: 1,
            disk_reprobe: Duration::from_secs(3600),
            ..CacheConfig::default()
        })
        .with_fault(Fault::seeded(
            FaultPlan::parse("seed=5,disk.read=1.0,disk.write=1.0").unwrap(),
        ));
    let (addr, _handle, runner) = spawn_server(engine, ServeConfig::default());
    let mut client = Connection::connect(addr).expect("connect");
    client
        .send(&Request::Compile(compile_req(1, TINY_IR)))
        .expect("send");
    let report = client.recv().expect("read").expect("report");
    assert_eq!(
        report.get("ok").and_then(Json::as_bool),
        Some(true),
        "disk faults must not fail the compile: {}",
        report.to_compact()
    );
    client.send(&Request::Health).expect("send");
    let health = client.recv().expect("read").expect("health answer");
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded"),
        "{}",
        health.to_compact()
    );
    assert_eq!(
        health.get("disk_tier").and_then(Json::as_str),
        Some("disabled")
    );
    let cache = health.get("cache").expect("cache object");
    assert_eq!(
        cache.get("disk_disabled").and_then(Json::as_bool),
        Some(true)
    );
    client.send(&Request::Shutdown).expect("send");
    runner.join().expect("drain");
}
