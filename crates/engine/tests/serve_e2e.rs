//! End-to-end tests of the compile service: wire-level bit-identity with
//! in-process compilation over the full Table 1 suite, incremental report
//! streaming, backpressure, deadlines, graceful drain, and errors (including
//! panics) delivered as values without killing the server.

use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use paulihedral::parse::{parse_program, print_program};
use paulihedral::{CompileError, Scheduler};
use ph_engine::json::Json;
use ph_engine::proto::{self, CompileRequest, Request};
use ph_engine::{
    BatchEngine, CompileJob, CompileUnit, Connection, Engine, Pass, PassContext, Pipeline,
    ServeConfig, ServeStats, Server, ServerHandle, Target,
};
use workloads::suite::{self, BackendClass};

const TINY_IR: &str = "{(ZZY, 0.5), 1.0};\n{(XXI, 0.3), 1.0};\n";

/// Binds an ephemeral-port server, runs it on a background thread, and
/// returns everything a test needs to drive and drain it.
fn spawn_server(
    engine: BatchEngine,
    config: ServeConfig,
) -> (SocketAddr, ServerHandle, JoinHandle<ServeStats>) {
    let server = Server::bind("127.0.0.1:0", engine, config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = server.handle();
    let runner = thread::spawn(move || server.run());
    (addr, handle, runner)
}

fn compile_req(id: u64, ir: &str) -> Request {
    Request::Compile(CompileRequest {
        id,
        name: None,
        ir: ir.to_string(),
        backend: None,
        scheduler: None,
        deadline_ms: None,
        artifact: false,
    })
}

fn recv(client: &mut Connection) -> Json {
    client
        .recv()
        .expect("socket read")
        .expect("connection closed mid-test")
}

fn field_str<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string field `{key}` in {}", v.to_compact()))
}

fn field_u64(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing numeric field `{key}` in {}", v.to_compact()))
}

fn is_ok_report(v: &Json) -> bool {
    field_str(v, "type") == "report" && v.get("ok").and_then(Json::as_bool) == Some(true)
}

/// Polls `cond` for up to ~5 s — the tests gate on observable server state
/// instead of sleeping fixed amounts.
fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        thread::sleep(Duration::from_millis(2));
    }
}

/// A pass that blocks every compile until the test releases it, and counts
/// how many compiles have entered — the lever behind the backpressure and
/// deadline tests.
#[derive(Clone, Default)]
struct GatePass {
    entered: Arc<(Mutex<usize>, Condvar)>,
    release: Arc<(Mutex<bool>, Condvar)>,
}

impl GatePass {
    fn entered(&self) -> usize {
        *self.entered.0.lock().unwrap()
    }

    fn open(&self) {
        *self.release.0.lock().unwrap() = true;
        self.release.1.notify_all();
    }
}

impl Pass for GatePass {
    fn name(&self) -> &'static str {
        "gate"
    }

    fn signature(&self, _ctx: &PassContext<'_>) -> String {
        "gate".into()
    }

    fn run(&self, _unit: &mut CompileUnit, _ctx: &PassContext<'_>) -> Result<String, CompileError> {
        {
            let (count, cv) = &*self.entered;
            *count.lock().unwrap() += 1;
            cv.notify_all();
        }
        let (released, cv) = &*self.release;
        let mut open = released.lock().unwrap();
        while !*open {
            open = cv.wait(open).unwrap();
        }
        Ok(String::new())
    }
}

fn gated_pipeline(gate: &GatePass) -> Pipeline {
    Pipeline::builder()
        .pass(gate.clone())
        .schedule(Scheduler::Auto)
        .synthesize()
        .build()
}

/// A pass that always panics — the server must convert this to a
/// `panicked` report, not die.
struct PanicPass;

impl Pass for PanicPass {
    fn name(&self) -> &'static str {
        "panic"
    }

    fn signature(&self, _ctx: &PassContext<'_>) -> String {
        "panic".into()
    }

    fn run(&self, _unit: &mut CompileUnit, _ctx: &PassContext<'_>) -> Result<String, CompileError> {
        panic!("kaboom: injected test panic");
    }
}

/// The tentpole acceptance test: every Table 1 benchmark compiled over the
/// socket (with the artifact attached) is bit-identical to an in-process
/// compile of the same program, and reports arrive incrementally — the
/// first one lands while the server is still working on the rest.
#[test]
fn streamed_suite_reports_are_bit_identical_to_in_process_compiles() {
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant);
    let (addr, handle, runner) = spawn_server(engine, ServeConfig::default());
    let mut client = Connection::connect(addr).expect("connect");

    // Submit all 31 benchmarks up front; the wire carries the printed IR,
    // so the in-process reference compiles the *same* text.
    let names = suite::all_names();
    let mut programs = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let bench = suite::generate(name);
        let backend = match bench.class {
            BackendClass::Superconducting => "manhattan",
            BackendClass::FaultTolerant => "ft",
        };
        let ir_text = print_program(&bench.ir);
        client
            .send(&Request::Compile(CompileRequest {
                id: i as u64 + 1,
                name: Some(bench.name.clone()),
                ir: ir_text.clone(),
                backend: Some(backend.to_string()),
                scheduler: None,
                deadline_ms: None,
                artifact: true,
            }))
            .expect("send");
        programs.push((ir_text, backend));
    }

    let reference = Engine::new(Pipeline::auto(), Target::FaultTolerant);
    let mut seen = vec![false; names.len()];
    for received in 0..names.len() {
        let report = recv(&mut client);
        if received == 0 {
            // Incremental streaming: the first report arrives while most of
            // the suite is still queued or compiling.
            assert!(
                handle.stats().completed < names.len() as u64,
                "first report should precede batch completion"
            );
        }
        assert_eq!(field_str(&report, "type"), "report");
        let id = field_u64(&report, "id") as usize;
        assert!(!seen[id - 1], "duplicate report for id {id}");
        seen[id - 1] = true;
        assert!(
            is_ok_report(&report),
            "benchmark {} failed: {}",
            names[id - 1],
            report.to_compact()
        );

        let (ir_text, backend) = &programs[id - 1];
        let ir = parse_program(ir_text).expect("printed IR reparses");
        let target = Target::parse_spec(backend, ir.num_qubits()).expect("backend spec");
        let expected = reference
            .compile_with(&ir, Some(&target), None)
            .expect("in-process compile");

        let hex = field_str(&report, "artifact");
        let bytes = proto::hex_decode(hex).expect("artifact is valid hex");
        let entry = ph_engine::persist::decode_entry(&bytes).expect("artifact decodes");
        assert_eq!(
            entry.compiled.circuit,
            expected.compiled.circuit,
            "{}: circuit over the wire differs from in-process",
            names[id - 1]
        );
        assert_eq!(entry.compiled.emitted, expected.compiled.emitted);
        assert_eq!(entry.compiled.initial_l2p, expected.compiled.initial_l2p);
        assert_eq!(entry.compiled.final_l2p, expected.compiled.final_l2p);
        let stats = expected.compiled.circuit.mapped_stats();
        assert_eq!(field_u64(&report, "cnot"), stats.cnot as u64);
        assert_eq!(field_u64(&report, "depth"), stats.depth as u64);
    }
    assert!(seen.iter().all(|&s| s), "every benchmark reported");

    client.finish().expect("half-close");
    let bye = recv(&mut client);
    assert_eq!(field_str(&bye, "type"), "bye");
    assert_eq!(field_u64(&bye, "served"), names.len() as u64);

    handle.shutdown();
    let stats = runner.join().expect("server thread");
    assert_eq!(stats.completed, names.len() as u64);
    assert_eq!(stats.rejected, 0);
}

/// Reports stream per request — a client can submit, read the report, and
/// submit again on the same connection with no batch barrier in between.
#[test]
fn reports_stream_interactively_without_a_batch_barrier() {
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_threads(1);
    let (addr, handle, runner) = spawn_server(engine, ServeConfig::default());
    let mut client = Connection::connect(addr).expect("connect");

    client.send(&compile_req(1, TINY_IR)).expect("send");
    let first = recv(&mut client);
    assert!(is_ok_report(&first));
    assert_eq!(field_u64(&first, "id"), 1);

    // The first report is already in hand; only now does the second
    // request exist at all.
    client.send(&compile_req(2, TINY_IR)).expect("send");
    let second = recv(&mut client);
    assert!(is_ok_report(&second));
    assert_eq!(field_u64(&second, "id"), 2);
    assert_eq!(second.get("cache_hit").and_then(Json::as_bool), Some(true));

    client.send(&Request::Ping).expect("send");
    assert_eq!(field_str(&recv(&mut client), "type"), "pong");

    client.finish().expect("half-close");
    let bye = recv(&mut client);
    assert_eq!(field_u64(&bye, "served"), 2);
    handle.shutdown();
    runner.join().expect("server thread");
}

/// `shutdown` drains: every job accepted before the request still gets its
/// report before `run` returns, and the listener is gone afterwards.
#[test]
fn shutdown_drains_accepted_jobs_before_exiting() {
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_threads(1);
    let (addr, _handle, runner) = spawn_server(engine, ServeConfig::default());
    let mut client = Connection::connect(addr).expect("connect");

    for id in 1..=3 {
        client.send(&compile_req(id, TINY_IR)).expect("send");
    }
    client.send(&Request::Shutdown).expect("send");

    // Reports and the ack interleave freely; collect until the server
    // closes the connection.
    let mut reports = 0;
    let mut acked = false;
    while let Some(line) = client.recv_line().expect("read") {
        let v = Json::parse(&line).expect("response is JSON");
        match field_str(&v, "type") {
            "report" => {
                assert!(is_ok_report(&v), "drained job failed: {line}");
                reports += 1;
            }
            "shutdown_ack" => acked = true,
            "bye" => {}
            other => panic!("unexpected response type `{other}`"),
        }
    }
    assert!(acked, "shutdown was acknowledged");
    assert_eq!(reports, 3, "every accepted job reported during drain");

    let stats = runner.join().expect("server thread");
    assert_eq!(stats.completed, 3);
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must be gone after drain"
    );
}

/// A full queue answers immediately with `overloaded` instead of buffering
/// without bound, and the queued work still completes.
#[test]
fn full_queue_rejects_with_overloaded() {
    let gate = GatePass::default();
    let engine = BatchEngine::new(gated_pipeline(&gate), Target::FaultTolerant).with_threads(1);
    let config = ServeConfig {
        queue_depth: 1,
        ..ServeConfig::default()
    };
    let (addr, handle, runner) = spawn_server(engine, config);
    let mut client = Connection::connect(addr).expect("connect");

    // Job 1 occupies the worker (blocked inside the gate), job 2 fills the
    // queue, job 3 must bounce.
    client.send(&compile_req(1, TINY_IR)).expect("send");
    wait_for(|| gate.entered() >= 1, "worker to enter the gated compile");
    client.send(&compile_req(2, TINY_IR)).expect("send");
    wait_for(|| handle.queued() == 1, "job 2 to be queued");
    client.send(&compile_req(3, TINY_IR)).expect("send");

    let reject = recv(&mut client);
    assert_eq!(field_u64(&reject, "id"), 3);
    assert_eq!(reject.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(field_str(&reject, "error_kind"), "overloaded");

    gate.open();
    for expected_id in [1, 2] {
        let report = recv(&mut client);
        assert_eq!(field_u64(&report, "id"), expected_id);
        assert!(is_ok_report(&report));
    }
    assert_eq!(handle.stats().rejected, 1);

    handle.shutdown();
    runner.join().expect("server thread");
}

/// A job whose deadline passes while it waits in the queue is answered
/// with `deadline_exceeded` instead of compiling stale work.
#[test]
fn queued_jobs_past_their_deadline_are_expired() {
    let gate = GatePass::default();
    let engine = BatchEngine::new(gated_pipeline(&gate), Target::FaultTolerant).with_threads(1);
    let (addr, handle, runner) = spawn_server(engine, ServeConfig::default());
    let mut client = Connection::connect(addr).expect("connect");

    client.send(&compile_req(1, TINY_IR)).expect("send");
    wait_for(|| gate.entered() >= 1, "worker to enter the gated compile");
    client
        .send(&Request::Compile(CompileRequest {
            id: 2,
            name: None,
            ir: TINY_IR.to_string(),
            backend: None,
            scheduler: None,
            deadline_ms: Some(1),
            artifact: false,
        }))
        .expect("send");
    wait_for(|| handle.queued() == 1, "job 2 to be queued");
    thread::sleep(Duration::from_millis(30)); // let the 1 ms deadline lapse
    gate.open();

    let first = recv(&mut client);
    assert_eq!(field_u64(&first, "id"), 1);
    assert!(is_ok_report(&first));
    let expired = recv(&mut client);
    assert_eq!(field_u64(&expired, "id"), 2);
    assert_eq!(field_str(&expired, "error_kind"), "deadline_exceeded");
    assert_eq!(handle.stats().deadline_misses, 1);

    handle.shutdown();
    runner.join().expect("server thread");
}

/// Malformed lines, unparseable IR, impossible targets, and bad backend
/// specs are all answered on the wire — the connection stays usable
/// through every one of them.
#[test]
fn errors_are_values_and_the_connection_survives_them() {
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_threads(2);
    let (addr, handle, runner) = spawn_server(engine, ServeConfig::default());
    let mut client = Connection::connect(addr).expect("connect");

    client.send_raw("this is not json").expect("send");
    let err = recv(&mut client);
    assert_eq!(field_str(&err, "type"), "error");
    assert_eq!(field_str(&err, "error_kind"), "bad_request");

    client
        .send(&compile_req(1, "not a pauli program"))
        .expect("send");
    let bad_ir = recv(&mut client);
    assert_eq!(field_u64(&bad_ir, "id"), 1);
    assert_eq!(field_str(&bad_ir, "error_kind"), "bad_request");

    // 20 qubits onto the 16-qubit Melbourne ladder: a compiler-side error.
    let wide = format!("{{({}, 1.0), 1.0}};", "Z".repeat(20));
    client
        .send(&Request::Compile(CompileRequest {
            id: 2,
            name: None,
            ir: wide,
            backend: Some("melbourne".into()),
            scheduler: None,
            deadline_ms: None,
            artifact: false,
        }))
        .expect("send");
    let too_small = recv(&mut client);
    assert_eq!(field_u64(&too_small, "id"), 2);
    assert_eq!(field_str(&too_small, "error_kind"), "device_too_small");

    client
        .send(&Request::Compile(CompileRequest {
            id: 3,
            name: None,
            ir: TINY_IR.to_string(),
            backend: Some("bogus-device".into()),
            scheduler: None,
            deadline_ms: None,
            artifact: false,
        }))
        .expect("send");
    let bad_backend = recv(&mut client);
    assert_eq!(field_u64(&bad_backend, "id"), 3);
    assert_eq!(field_str(&bad_backend, "error_kind"), "bad_request");

    // After all of that, a normal compile still works on the same socket.
    client.send(&compile_req(4, TINY_IR)).expect("send");
    let good = recv(&mut client);
    assert_eq!(field_u64(&good, "id"), 4);
    assert!(is_ok_report(&good));

    client.finish().expect("half-close");
    let bye = recv(&mut client);
    assert_eq!(field_u64(&bye, "served"), 4);
    handle.shutdown();
    runner.join().expect("server thread");
}

/// A panic inside a pass becomes a `panicked` report for that job only;
/// the worker, the connection, and the server all survive.
#[test]
fn a_panicking_pass_is_reported_not_fatal() {
    let pipeline = Pipeline::builder()
        .pass(PanicPass)
        .schedule(Scheduler::Auto)
        .synthesize()
        .build();
    let engine = BatchEngine::new(pipeline, Target::FaultTolerant).with_threads(1);
    let (addr, handle, runner) = spawn_server(engine, ServeConfig::default());
    let mut client = Connection::connect(addr).expect("connect");

    client.send(&compile_req(1, TINY_IR)).expect("send");
    let report = recv(&mut client);
    assert_eq!(field_str(&report, "error_kind"), "panicked");
    assert!(
        field_str(&report, "error").contains("kaboom"),
        "panic message survives to the wire: {}",
        report.to_compact()
    );

    // The same worker thread is still alive and serving.
    client.send(&Request::Ping).expect("send");
    assert_eq!(field_str(&recv(&mut client), "type"), "pong");
    client.send(&compile_req(2, TINY_IR)).expect("send");
    assert_eq!(field_str(&recv(&mut client), "error_kind"), "panicked");

    assert_eq!(handle.stats().completed, 2);
    handle.shutdown();
    runner.join().expect("server thread");
}

/// The batch driver gives panics the same treatment: per-job
/// [`CompileError::Panicked`] values, with the rest of the batch intact.
#[test]
fn batch_jobs_that_panic_become_per_job_errors() {
    let pipeline = Pipeline::builder()
        .pass(PanicPass)
        .schedule(Scheduler::Auto)
        .synthesize()
        .build();
    let engine = BatchEngine::new(pipeline, Target::FaultTolerant)
        .without_cache()
        .with_threads(2);
    let ir = parse_program(TINY_IR).expect("parse");
    let results = engine.compile_all(vec![
        CompileJob::named("a", ir.clone()),
        CompileJob::named("b", ir),
    ]);
    assert_eq!(results.len(), 2);
    for r in &results {
        match &r.outcome {
            Err(CompileError::Panicked(msg)) => assert!(msg.contains("kaboom")),
            other => panic!("{}: expected Panicked, got {other:?}", r.name),
        }
    }
}

/// `stats` over the wire reflects both service counters and the shared
/// cache.
#[test]
fn wire_stats_expose_service_and_cache_counters() {
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_threads(1);
    let (addr, handle, runner) = spawn_server(engine, ServeConfig::default());
    let mut client = Connection::connect(addr).expect("connect");

    client.send(&compile_req(1, TINY_IR)).expect("send");
    assert!(is_ok_report(&recv(&mut client)));
    client.send(&compile_req(2, TINY_IR)).expect("send");
    assert!(is_ok_report(&recv(&mut client)));

    client.send(&Request::Stats).expect("send");
    let stats = recv(&mut client);
    assert_eq!(field_str(&stats, "type"), "stats");
    let serve = stats.get("serve").expect("serve object");
    assert_eq!(field_u64(serve, "requests"), 2);
    assert_eq!(field_u64(serve, "completed"), 2);
    let cache = stats.get("cache").expect("cache object");
    assert_eq!(field_u64(cache, "misses"), 1);
    assert_eq!(field_u64(cache, "hits"), 1);

    handle.shutdown();
    runner.join().expect("server thread");
}
