//! Process-level tests of the `phc` binary: batch exit codes, and two
//! processes sharing one `--cache-dir` through the serve/submit pair.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ph_engine::json::Json;

const PHC: &str = env!("CARGO_BIN_EXE_phc");

/// A scratch directory unique to one test (process id + label), cleaned
/// before use so reruns start fresh.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phc_cli_{label}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn write_program(dir: &std::path::Path, name: &str, text: &str) -> String {
    let path = dir.join(name);
    std::fs::write(&path, text).expect("write program");
    path.to_string_lossy().into_owned()
}

/// Waits for a child with a hard timeout so a wedged server fails the test
/// instead of hanging the suite.
fn wait_with_timeout(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("child process did not exit within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn batch_exits_nonzero_when_any_job_fails() {
    let dir = scratch("batch_fail");
    let good = write_program(&dir, "good.pauli", "{(ZZY, 0.5), 1.0};\n");
    // 20 qubits cannot fit the 16-qubit Melbourne ladder.
    let bad = write_program(
        &dir,
        "bad.pauli",
        &format!("{{({}, 1.0), 1.0}};\n", "Z".repeat(20)),
    );

    let failing = Command::new(PHC)
        .args(["batch", &good, &bad, "--backend", "melbourne"])
        .output()
        .expect("run phc batch");
    assert!(
        !failing.status.success(),
        "batch with a failing job must exit nonzero"
    );
    let report = Json::parse(&String::from_utf8_lossy(&failing.stdout))
        .expect("batch report is JSON even on failure");
    let jobs = report
        .get("jobs")
        .and_then(Json::as_arr)
        .expect("jobs array");
    let oks: Vec<_> = jobs
        .iter()
        .map(|j| j.get("ok").and_then(Json::as_bool).unwrap())
        .collect();
    assert_eq!(oks, [true, false], "only the oversized job fails");

    // Control: the same invocation minus the bad job exits cleanly.
    let passing = Command::new(PHC)
        .args(["batch", &good, "--backend", "melbourne"])
        .output()
        .expect("run phc batch");
    assert!(passing.status.success(), "all-good batch must exit zero");
}

/// The ISSUE's two-process scenario: a `phc batch` warms a `--cache-dir`,
/// a separate `phc serve` process opens the same directory, and a `phc
/// submit` against it is served from the disk tier (`cache_hit: true`,
/// `disk_hits >= 1`) before a clean shutdown.
#[test]
fn serve_and_submit_share_a_cache_dir_across_processes() {
    let dir = scratch("shared_cache");
    let cache_dir = dir.join("cache").to_string_lossy().into_owned();
    let prog = write_program(
        &dir,
        "prog.pauli",
        "{(ZZY, 0.5), 1.0};\n{(XXI, 0.3), 1.0};\n",
    );

    // Process 1: warm the disk tier.
    let warm = Command::new(PHC)
        .args(["batch", &prog, "--cache-dir", &cache_dir])
        .output()
        .expect("run phc batch");
    assert!(warm.status.success(), "warmup batch failed");

    // Process 2: a server over the same directory, on an ephemeral port.
    let mut serve = Command::new(PHC)
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--cache-dir",
            &cache_dir,
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn phc serve");
    let mut serve_stdout = BufReader::new(serve.stdout.take().expect("serve stdout"));
    let mut listening = String::new();
    serve_stdout
        .read_line(&mut listening)
        .expect("read listening line");
    let listening = Json::parse(listening.trim()).expect("listening line is JSON");
    assert_eq!(
        listening.get("type").and_then(Json::as_str),
        Some("listening")
    );
    let addr = listening
        .get("addr")
        .and_then(Json::as_str)
        .expect("addr field")
        .to_string();

    // Process 3: submit the same program, then stats, then shutdown.
    let submit = Command::new(PHC)
        .args(["submit", &addr, &prog, "--stats", "--shutdown"])
        .output()
        .expect("run phc submit");
    assert!(
        submit.status.success(),
        "submit failed: {}",
        String::from_utf8_lossy(&submit.stderr)
    );
    let stdout = String::from_utf8_lossy(&submit.stdout);
    let lines: Vec<Json> = stdout
        .lines()
        .map(|l| Json::parse(l).expect("every submit output line is JSON"))
        .collect();

    let report = lines
        .iter()
        .find(|l| l.get("type").and_then(Json::as_str) == Some("report"))
        .expect("a report line");
    assert_eq!(report.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        report.get("cache_hit").and_then(Json::as_bool),
        Some(true),
        "fresh server process must hit the shared disk tier"
    );

    let stats = lines
        .iter()
        .find(|l| l.get("type").and_then(Json::as_str) == Some("stats"))
        .expect("a stats line");
    let disk_hits = stats
        .get("cache")
        .and_then(|c| c.get("disk_hits"))
        .and_then(Json::as_u64)
        .expect("disk_hits counter");
    assert!(
        disk_hits >= 1,
        "expected a disk hit, stats: {}",
        stats.to_compact()
    );

    // The shutdown request drains the server to a clean exit.
    let status = wait_with_timeout(&mut serve, Duration::from_secs(30));
    assert!(status.success(), "serve must exit zero after drain");
}
