//! The compile-service wire protocol: newline-delimited JSON.
//!
//! One request or response per line, every line a complete JSON object
//! with a `type` field. Requests (client → server):
//!
//! ```text
//! {"type": "compile", "id": 1, "ir": "{(ZZ, 1.0), 1.0};",
//!  "name": "job-a", "backend": "ft", "scheduler": "auto",
//!  "deadline_ms": 5000, "artifact": true}
//! {"type": "ping"}
//! {"type": "stats"}
//! {"type": "health"}
//! {"type": "shutdown"}
//! ```
//!
//! Responses (server → client): `report` (one per compile request, as it
//! finishes — success and failure are both values carrying the request
//! `id`), `pong`, `stats`, `health` (queue depth, worker liveness, cache
//! tier status), `shutdown_ack`, `bye` (end of connection), and `error`
//! (a line the server could not attribute to a request).
//!
//! Error taxonomy on `ok: false` reports (`error_kind`): the compiler's
//! own rejections (`empty_program`, `device_too_small`,
//! `device_disconnected`, `panicked`) plus the service's
//! (`bad_request`, `overloaded`, `draining`, `deadline_exceeded`,
//! `request_too_large`, `watchdog_timeout`). Every accepted compile
//! request gets exactly one report; a client can therefore count reports
//! against submissions. `panicked`, `overloaded`, and `watchdog_timeout`
//! are *retryable*: re-submitting the same id is safe (compiles are
//! content-addressed and cached, so a duplicate submission of work that
//! already succeeded is a cache hit, not a recompute) — this is what
//! [`crate::client::Client`] automates.
//!
//! This module owns the JSON shapes shared by the server ([`crate::serve`]),
//! the `phc submit` client, and the `phc batch` report, so the wire format
//! and the report file can never drift apart.

use std::time::Duration;

use paulihedral::{CompileError, Scheduler};
use ph_telemetry::json::Json;

use crate::batch::BatchResult;
use crate::cache::CacheStats;
use crate::engine::EngineOutput;

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Compile one program; answered by exactly one `report` line.
    Compile(CompileRequest),
    /// Liveness probe; answered by `pong`.
    Ping,
    /// Server + cache counters; answered by `stats`.
    Stats,
    /// Queue depth, worker liveness, and cache tier status; answered by
    /// `health`. Cheap enough for load-balancer probes.
    Health,
    /// Begin graceful drain; answered by `shutdown_ack`.
    Shutdown,
}

/// The payload of a `compile` request.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileRequest {
    /// Client-chosen correlation id, echoed on the report. Reports stream
    /// back in completion order, not submission order — the id is how a
    /// client matches them up.
    pub id: u64,
    /// Optional display name (defaults to `job-<id>` in reports).
    pub name: Option<String>,
    /// The program, in the `.pauli` text format ([`paulihedral::parse`]).
    pub ir: String,
    /// Backend spec (see [`crate::Target::parse_spec`]); `None` uses the
    /// server's default target.
    pub backend: Option<String>,
    /// Scheduler override; `None` uses the server pipeline's scheduler.
    pub scheduler: Option<Scheduler>,
    /// Per-request deadline in milliseconds, measured from acceptance. A
    /// job still queued when it expires is answered with a
    /// `deadline_exceeded` report instead of compiling.
    pub deadline_ms: Option<u64>,
    /// When `true`, the report carries the full compiled artifact
    /// (hex-encoded [`crate::persist`] bytes) in an `artifact` field.
    pub artifact: bool,
}

impl CompileRequest {
    /// The name shown in reports: the client's, or `job-<id>`.
    pub fn display_name(&self) -> String {
        self.name
            .clone()
            .unwrap_or_else(|| format!("job-{}", self.id))
    }
}

/// Parses a scheduler spec (`auto`, `gco`, `do`) — the one vocabulary
/// shared by the CLI flags and the wire protocol.
///
/// # Errors
///
/// Returns a human-readable message for anything else.
pub fn parse_scheduler_spec(spec: &str) -> Result<Scheduler, String> {
    match spec {
        "auto" => Ok(Scheduler::Auto),
        "gco" => Ok(Scheduler::GateCount),
        "do" => Ok(Scheduler::Depth),
        other => Err(format!("unknown scheduler `{other}` (auto|gco|do)")),
    }
}

fn scheduler_spec(s: Scheduler) -> &'static str {
    match s {
        Scheduler::Auto => "auto",
        Scheduler::GateCount => "gco",
        Scheduler::Depth => "do",
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns the `bad_request` message to send back: malformed JSON, a
    /// missing/unknown `type`, or a `compile` payload missing `id`/`ir`.
    pub fn from_line(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("missing `type` field")?;
        match ty {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "health" => Ok(Request::Health),
            "shutdown" => Ok(Request::Shutdown),
            "compile" => {
                let id = v
                    .get("id")
                    .and_then(Json::as_u64)
                    .ok_or("compile request needs a numeric `id`")?;
                let ir = v
                    .get("ir")
                    .and_then(Json::as_str)
                    .ok_or("compile request needs an `ir` string")?
                    .to_string();
                let scheduler = match v.get("scheduler").and_then(Json::as_str) {
                    None => None,
                    Some(s) => Some(parse_scheduler_spec(s)?),
                };
                Ok(Request::Compile(CompileRequest {
                    id,
                    name: v.get("name").and_then(Json::as_str).map(String::from),
                    ir,
                    backend: v.get("backend").and_then(Json::as_str).map(String::from),
                    scheduler,
                    deadline_ms: v.get("deadline_ms").and_then(Json::as_u64),
                    artifact: v.get("artifact").and_then(Json::as_bool).unwrap_or(false),
                }))
            }
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// Renders the request as a JSON value (the client side of
    /// [`Request::from_line`]).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Ping => Json::obj([("type", Json::str("ping"))]),
            Request::Stats => Json::obj([("type", Json::str("stats"))]),
            Request::Health => Json::obj([("type", Json::str("health"))]),
            Request::Shutdown => Json::obj([("type", Json::str("shutdown"))]),
            Request::Compile(c) => {
                let mut fields = vec![
                    ("type".to_string(), Json::str("compile")),
                    ("id".to_string(), Json::U64(c.id)),
                ];
                if let Some(name) = &c.name {
                    fields.push(("name".to_string(), Json::str(name)));
                }
                fields.push(("ir".to_string(), Json::str(&c.ir)));
                if let Some(backend) = &c.backend {
                    fields.push(("backend".to_string(), Json::str(backend)));
                }
                if let Some(s) = c.scheduler {
                    fields.push(("scheduler".to_string(), Json::str(scheduler_spec(s))));
                }
                if let Some(ms) = c.deadline_ms {
                    fields.push(("deadline_ms".to_string(), Json::U64(ms)));
                }
                if c.artifact {
                    fields.push(("artifact".to_string(), Json::Bool(true)));
                }
                Json::Obj(fields)
            }
        }
    }

    /// The request as one wire line (compact JSON + newline).
    pub fn to_line(&self) -> String {
        let mut line = self.to_json().to_compact();
        line.push('\n');
        line
    }
}

/// The wire tag of a compiler-side error.
pub fn compile_error_kind(e: &CompileError) -> &'static str {
    match e {
        CompileError::EmptyProgram => "empty_program",
        CompileError::DeviceTooSmall { .. } => "device_too_small",
        CompileError::DeviceDisconnected => "device_disconnected",
        CompileError::Panicked(_) => "panicked",
    }
}

/// One job's result as a JSON object — the shape shared verbatim by the
/// `phc batch` report's `jobs` array and the service's `report` lines
/// (which prepend `type`/`id`). Success carries circuit metrics and the
/// per-pass table; failure carries `error` (message) and `error_kind`.
pub fn job_json(
    name: &str,
    outcome: &Result<EngineOutput, CompileError>,
    wall: Duration,
    queue_wait: Duration,
) -> Json {
    match outcome {
        Ok(o) => {
            let stats = o.compiled.circuit.mapped_stats();
            let passes: Vec<Json> = o
                .report
                .passes
                .iter()
                .map(|p| {
                    Json::obj([
                        ("name", Json::str(&p.name)),
                        ("wall_ms", Json::f64_rounded(p.wall.as_secs_f64() * 1e3, 3)),
                        ("cnot_delta", Json::I64(p.cnot_delta())),
                        ("single_delta", Json::I64(p.single_delta())),
                        ("depth_delta", Json::I64(p.depth_delta())),
                        ("note", Json::str(&p.note)),
                    ])
                })
                .collect();
            Json::obj([
                ("name", Json::str(name)),
                ("ok", Json::Bool(true)),
                ("cache_hit", Json::Bool(o.report.cache_hit)),
                ("key", Json::str(format!("{:016x}", o.report.key))),
                ("cnot", Json::U64(stats.cnot as u64)),
                ("single", Json::U64(stats.single as u64)),
                ("total", Json::U64(stats.total as u64)),
                ("depth", Json::U64(stats.depth as u64)),
                ("wall_ms", Json::f64_rounded(wall.as_secs_f64() * 1e3, 3)),
                (
                    "queue_wait_ms",
                    Json::f64_rounded(queue_wait.as_secs_f64() * 1e3, 3),
                ),
                ("passes", Json::Arr(passes)),
            ])
        }
        Err(e) => Json::obj([
            ("name", Json::str(name)),
            ("ok", Json::Bool(false)),
            ("error", Json::str(e.to_string())),
            ("error_kind", Json::str(compile_error_kind(e))),
        ]),
    }
}

/// [`job_json`] over a [`BatchResult`] (the `phc batch` report form).
pub fn batch_result_json(r: &BatchResult) -> Json {
    job_json(&r.name, &r.outcome, r.wall, r.queue_wait)
}

/// Wraps a [`job_json`] object into a `report` response line, optionally
/// attaching the hex-encoded compiled artifact.
pub fn report_json(id: u64, job: Json, artifact_hex: Option<String>) -> Json {
    let mut fields = vec![
        ("type".to_string(), Json::str("report")),
        ("id".to_string(), Json::U64(id)),
    ];
    if let Json::Obj(job_fields) = job {
        fields.extend(job_fields);
    }
    if let Some(hex) = artifact_hex {
        fields.push(("artifact".to_string(), Json::Str(hex)));
    }
    Json::Obj(fields)
}

/// A service-side rejection of one compile request, as a `report` line
/// (`ok: false`) so the per-request invariant — one report per accepted
/// id — holds for rejections too.
pub fn reject_json(id: u64, name: &str, kind: &str, message: &str) -> Json {
    Json::obj([
        ("type", Json::str("report")),
        ("id", Json::U64(id)),
        ("name", Json::str(name)),
        ("ok", Json::Bool(false)),
        ("error", Json::str(message)),
        ("error_kind", Json::str(kind)),
    ])
}

/// A connection-level `error` line for input the server could not
/// attribute to a request id (malformed JSON, oversized line, …).
pub fn error_json(kind: &str, message: &str) -> Json {
    Json::obj([
        ("type", Json::str("error")),
        ("error_kind", Json::str(kind)),
        ("error", Json::str(message)),
    ])
}

/// [`CacheStats`] as a JSON object — shared by the `phc batch` report's
/// `cache` object and the service's `stats` response.
pub fn cache_json(cs: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::U64(cs.hits)),
        ("misses", Json::U64(cs.misses)),
        ("disk_hits", Json::U64(cs.disk_hits)),
        ("coalesced", Json::U64(cs.coalesced)),
        ("evictions", Json::U64(cs.evictions)),
        ("tmp_swept", Json::U64(cs.tmp_swept)),
        ("entries", Json::U64(cs.entries as u64)),
        ("resident_bytes", Json::U64(cs.resident_bytes as u64)),
        ("disk_errors", Json::U64(cs.disk_errors)),
        ("disk_heals", Json::U64(cs.disk_heals)),
        ("disk_disabled", Json::Bool(cs.disk_disabled)),
    ])
}

/// Lowercase hex encoding (artifact transport).
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Inverse of [`hex_encode`]; `None` on odd length or non-hex digits.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push(digit(pair[0])? * 16 + digit(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_request_round_trips_through_the_wire_form() {
        let req = Request::Compile(CompileRequest {
            id: 7,
            name: Some("bh_10".into()),
            ir: "{(ZZ, 1.0), 1.0};".into(),
            backend: Some("manhattan".into()),
            scheduler: Some(Scheduler::Depth),
            deadline_ms: Some(2500),
            artifact: true,
        });
        let line = req.to_line();
        assert!(line.ends_with('\n'));
        assert_eq!(Request::from_line(line.trim_end()).unwrap(), req);
    }

    #[test]
    fn minimal_compile_request_defaults_the_options() {
        let req = Request::from_line(r#"{"type":"compile","id":1,"ir":"x"}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("expected compile");
        };
        assert_eq!(c.display_name(), "job-1");
        assert_eq!(
            (c.backend, c.scheduler, c.deadline_ms, c.artifact),
            (None, None, None, false)
        );
    }

    #[test]
    fn control_requests_round_trip() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Health,
            Request::Shutdown,
        ] {
            assert_eq!(Request::from_line(req.to_line().trim_end()).unwrap(), req);
        }
    }

    #[test]
    fn bad_request_lines_return_messages_not_panics() {
        for (line, needle) in [
            ("not json", "malformed JSON"),
            ("{}", "missing `type`"),
            (r#"{"type":"frobnicate"}"#, "unknown request type"),
            (r#"{"type":"compile","ir":"x"}"#, "numeric `id`"),
            (r#"{"type":"compile","id":1}"#, "`ir` string"),
            (
                r#"{"type":"compile","id":1,"ir":"x","scheduler":"bogus"}"#,
                "unknown scheduler",
            ),
        ] {
            let err = Request::from_line(line).unwrap_err();
            assert!(err.contains(needle), "line {line:?} gave {err:?}");
        }
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert_eq!(hex_encode(&[0x0f, 0xa0]), "0fa0");
        assert_eq!(hex_decode("abc"), None, "odd length");
        assert_eq!(hex_decode("zz"), None, "non-hex digit");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn every_compile_error_has_a_wire_kind() {
        assert_eq!(
            compile_error_kind(&CompileError::EmptyProgram),
            "empty_program"
        );
        assert_eq!(
            compile_error_kind(&CompileError::DeviceTooSmall {
                device: 5,
                program: 9
            }),
            "device_too_small"
        );
        assert_eq!(
            compile_error_kind(&CompileError::DeviceDisconnected),
            "device_disconnected"
        );
        assert_eq!(
            compile_error_kind(&CompileError::Panicked("boom".into())),
            "panicked"
        );
    }
}
