//! Content-addressed compilation cache.
//!
//! Keys are canonical 64-bit FNV-1a fingerprints of the complete request:
//! the Pauli IR (operator words, weights, parameters), the pipeline
//! configuration (pass signature sequence), and the target (device edges
//! and noise figures). Identical requests — repeated Trotter steps,
//! re-compiled suite benchmarks — are served from memory and counted.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use paulihedral::ir::PauliIR;
use paulihedral::Compiled;

use crate::report::CompileReport;

/// Streaming 64-bit FNV-1a hasher.
///
/// Deliberately *not* `std::hash::DefaultHasher`: FNV-1a is specified, so
/// keys are stable across processes and Rust releases — a prerequisite for
/// the ROADMAP's cross-process cache follow-on.
#[derive(Clone, Debug)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fingerprint {
        Fingerprint(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` (widened to `u64` for cross-platform stability).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` by bit pattern (distinguishes `-0.0` from `0.0`;
    /// canonical for every value a compilation request can contain).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated 64-bit key.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// Feeds a canonical encoding of the IR into the fingerprint: qubit count,
/// block structure, operator words, weights, and parameters.
pub fn fingerprint_ir(ir: &PauliIR, h: &mut Fingerprint) {
    h.write_usize(ir.num_qubits());
    h.write_usize(ir.num_blocks());
    for block in ir.blocks() {
        h.write_usize(block.terms.len());
        for term in &block.terms {
            for &w in term.string.x_words() {
                h.write_u64(w);
            }
            for &w in term.string.z_words() {
                h.write_u64(w);
            }
            h.write_f64(term.weight);
        }
        match &block.parameter.name {
            Some(name) => h.write_str(name),
            None => h.write_str(""),
        }
        h.write_f64(block.parameter.value);
    }
}

/// What one cache entry stores: the compiled artifact plus the report of
/// the compilation that produced it.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The compiled artifact (shared, never copied out).
    pub compiled: Arc<Compiled>,
    /// The per-pass report of the original compilation.
    pub report: CompileReport,
}

/// Cache effectiveness counters, exposed through
/// [`crate::Engine::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the cache.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

/// A thread-safe, content-addressed map from request fingerprints to
/// compiled artifacts.
#[derive(Debug, Default)]
pub struct CompileCache {
    entries: Mutex<HashMap<u64, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CompileCache {
    /// An empty cache.
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// Looks up a key, bumping the hit/miss counters.
    pub fn lookup(&self, key: u64) -> Option<CacheEntry> {
        let entry = self
            .entries
            .lock()
            .expect("cache poisoned")
            .get(&key)
            .cloned();
        match &entry {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        entry
    }

    /// Stores a compilation result. Concurrent duplicate inserts (two
    /// workers racing on the same key) are benign: both values are
    /// identical by construction, the second simply wins.
    pub fn insert(&self, key: u64, entry: CacheEntry) {
        self.entries
            .lock()
            .expect("cache poisoned")
            .insert(key, entry);
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache poisoned").len(),
        }
    }

    /// Drops all entries (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = Fingerprint::new();
        h.write_bytes(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fingerprint::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fingerprint::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn ir_fingerprint_is_sensitive_to_every_field() {
        use paulihedral::parse::parse_program;
        let key = |text: &str| {
            let ir = parse_program(text).unwrap();
            let mut h = Fingerprint::new();
            fingerprint_ir(&ir, &mut h);
            h.finish()
        };
        let base = key("{(ZZY, 0.5), 1.0}; {(ZZI, 0.3), 1.0};");
        assert_eq!(base, key("{(ZZY, 0.5), 1.0}; {(ZZI, 0.3), 1.0};"));
        // Operator, weight, parameter, and block-structure changes all
        // produce different keys.
        assert_ne!(base, key("{(ZZX, 0.5), 1.0}; {(ZZI, 0.3), 1.0};"));
        assert_ne!(base, key("{(ZZY, 0.25), 1.0}; {(ZZI, 0.3), 1.0};"));
        assert_ne!(base, key("{(ZZY, 0.5), 2.0}; {(ZZI, 0.3), 1.0};"));
        assert_ne!(base, key("{(ZZY, 0.5), (ZZI, 0.3), 1.0};"));
        assert_ne!(base, key("{(ZZY, 0.5), theta}; {(ZZI, 0.3), 1.0};"));
    }

    #[test]
    fn counters_track_lookups() {
        let cache = CompileCache::new();
        assert!(cache.lookup(42).is_none());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                entries: 0
            }
        );
    }
}
