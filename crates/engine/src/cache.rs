//! Content-addressed compilation cache: bounded LRU memory tier, optional
//! persistent disk tier, single-flight miss coalescing.
//!
//! Keys are canonical 64-bit FNV-1a fingerprints of the complete request:
//! the Pauli IR (operator words, weights, parameters), the pipeline
//! configuration (pass signature sequence), and the target (device edges
//! and noise figures). Identical requests — repeated Trotter steps,
//! re-compiled suite benchmarks — are served from memory and counted.
//!
//! Serving-tier behavior:
//!
//! * **Bounded.** The memory tier is an LRU map with optional entry-count
//!   and approximate-byte budgets ([`CacheConfig`]); evictions are counted
//!   in [`CacheStats`] and the resident footprint never exceeds the budget.
//! * **Persistent.** With [`CacheConfig::disk_dir`] set, every compiled
//!   entry is also written to `<dir>/<key:016x>.phc` (atomically, via a
//!   temp file + rename) and memory misses are filled from disk. Keys are
//!   process-stable, so a cache directory is shared across runs and across
//!   machines of the same endianness-independent encoding. Corrupt or
//!   partial files are treated as misses, never as errors.
//! * **Single-flight.** Concurrent requests for one key compile it once:
//!   followers block on the leader's in-flight compilation and share the
//!   resulting `Arc` ([`CacheStats::coalesced`] counts the waits).
//! * **Degrading.** The disk tier is an accelerator, not a store of
//!   record: after [`CacheConfig::disk_error_threshold`] *consecutive*
//!   real I/O errors (injected or organic — `NotFound` and corrupt files
//!   don't count) the cache flips to memory-only
//!   ([`CacheStats::disk_disabled`], `cache.disk_disabled` telemetry
//!   instant) and re-probes the tier every
//!   [`CacheConfig::disk_reprobe`], healing automatically when the disk
//!   recovers (`cache.disk_recovered`).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use paulihedral::ir::PauliIR;
use paulihedral::Compiled;
use ph_telemetry::Telemetry;

use crate::fault::{DiskReadFault, DiskWriteFault, Fault};
use crate::persist;
use crate::report::CompileReport;

/// Streaming 64-bit FNV-1a hasher.
///
/// Deliberately *not* `std::hash::DefaultHasher`: FNV-1a is specified, so
/// keys are stable across processes and Rust releases — the property the
/// disk tier relies on to share entries across runs.
#[derive(Clone, Debug)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Fingerprint {
        Fingerprint(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` (widened to `u64` for cross-platform stability).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs an `f64` by bit pattern (distinguishes `-0.0` from `0.0`;
    /// canonical for every value a compilation request can contain).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorbs a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated 64-bit key.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

/// Feeds a canonical encoding of the IR into the fingerprint: qubit count,
/// block structure, operator words, weights, and parameters.
pub fn fingerprint_ir(ir: &PauliIR, h: &mut Fingerprint) {
    h.write_usize(ir.num_qubits());
    h.write_usize(ir.num_blocks());
    for block in ir.blocks() {
        h.write_usize(block.terms.len());
        for term in &block.terms {
            for &w in term.string.x_words() {
                h.write_u64(w);
            }
            for &w in term.string.z_words() {
                h.write_u64(w);
            }
            h.write_f64(term.weight);
        }
        match &block.parameter.name {
            Some(name) => h.write_str(name),
            None => h.write_str(""),
        }
        h.write_f64(block.parameter.value);
    }
}

/// What one cache entry stores: the compiled artifact plus the report of
/// the compilation that produced it.
#[derive(Clone, Debug)]
pub struct CacheEntry {
    /// The compiled artifact (shared, never copied out).
    pub compiled: Arc<Compiled>,
    /// The per-pass report of the original compilation.
    pub report: CompileReport,
}

impl CacheEntry {
    /// Approximate resident size of this entry in bytes, charged against
    /// [`CacheConfig::max_bytes`]. Counts the dominant heap blocks (gate
    /// list, emitted strings, layouts, per-pass records); allocator
    /// overhead is ignored.
    pub fn approx_bytes(&self) -> usize {
        let c = &self.compiled;
        let mut bytes = std::mem::size_of::<CacheEntry>() + std::mem::size_of::<Compiled>();
        bytes += c.circuit.len() * std::mem::size_of::<qcircuit::Gate>();
        for (s, _theta) in &c.emitted {
            // Two bit planes plus the (string, f64) tuple shell.
            bytes += 16 * s.x_words().len() + 24;
        }
        for l2p in [&c.initial_l2p, &c.final_l2p].into_iter().flatten() {
            bytes += l2p.len() * std::mem::size_of::<usize>();
        }
        for p in &self.report.passes {
            bytes += std::mem::size_of_val(p) + p.name.len() + p.note.len();
        }
        bytes
    }
}

/// Memory- and disk-tier configuration of a [`CompileCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Maximum number of entries resident in memory (`None` = unbounded).
    pub max_entries: Option<usize>,
    /// Approximate memory-tier byte budget (`None` = unbounded). An entry
    /// larger than the whole budget is never admitted, so the resident
    /// footprint stays within the budget instead of thrashing to zero.
    pub max_bytes: Option<usize>,
    /// Directory of the persistent tier (`None` = memory only). Created on
    /// first write; shared between processes.
    pub disk_dir: Option<PathBuf>,
    /// Consecutive disk I/O errors before the disk tier is disabled and
    /// the cache degrades to memory-only. `NotFound` reads and corrupt
    /// files are misses, not errors, and never trip this.
    pub disk_error_threshold: u32,
    /// How often a disabled disk tier lets one operation through as a
    /// health probe; a probe that succeeds re-enables the tier.
    pub disk_reprobe: Duration,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            max_entries: None,
            max_bytes: None,
            disk_dir: None,
            disk_error_threshold: 3,
            disk_reprobe: Duration::from_secs(5),
        }
    }
}

impl CacheConfig {
    /// Memory-only, unbounded — the historical default.
    pub fn unbounded() -> CacheConfig {
        CacheConfig::default()
    }
}

/// Cache effectiveness counters, exposed through
/// [`crate::Engine::cache_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests served from the memory tier.
    pub hits: u64,
    /// Requests that had to compile.
    pub misses: u64,
    /// Memory misses served from the disk tier.
    pub disk_hits: u64,
    /// Requests that waited on another worker's in-flight compilation of
    /// the same key instead of compiling it again.
    pub coalesced: u64,
    /// Entries evicted from the memory tier to stay within budget.
    pub evictions: u64,
    /// Orphaned `*.tmp` files swept from the disk tier when the cache
    /// opened (left behind by writers that crashed between temp-file
    /// creation and the atomic rename).
    pub tmp_swept: u64,
    /// Real disk-tier I/O errors observed (`NotFound` and corrupt files
    /// excluded — those are misses).
    pub disk_errors: u64,
    /// Times a disabled disk tier healed after a successful re-probe.
    pub disk_heals: u64,
    /// `true` while the disk tier is disabled after
    /// [`CacheConfig::disk_error_threshold`] consecutive I/O errors (the
    /// cache is serving memory-only and re-probing periodically).
    pub disk_disabled: bool,
    /// Entries currently resident in memory.
    pub entries: usize,
    /// Approximate bytes currently resident in memory.
    pub resident_bytes: usize,
}

/// How [`CompileCache::get_or_compute`] satisfied a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the memory tier.
    MemoryHit,
    /// Served from the disk tier (and promoted to memory).
    DiskHit,
    /// Waited for another worker's in-flight compilation of the same key.
    Coalesced,
    /// Compiled by this request.
    Compiled,
}

/// A poison-tolerant lock: a worker that panicked while holding the lock
/// never wrote a half-updated state (the critical sections below only
/// swap complete values), so later jobs recover the guard instead of
/// propagating the panic forever.
pub(crate) fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One LRU slot: the entry, its charged cost, and its neighbors in the
/// recency list (an intrusive doubly-linked list threaded through the map
/// by key, so touch/evict are O(1)).
#[derive(Debug)]
struct Slot {
    entry: CacheEntry,
    cost: usize,
    prev: Option<u64>, // toward most-recent
    next: Option<u64>, // toward least-recent
}

/// The memory tier: a HashMap with an intrusive recency list.
#[derive(Debug, Default)]
struct LruMap {
    slots: HashMap<u64, Slot>,
    head: Option<u64>, // most recently used
    tail: Option<u64>, // least recently used
    bytes: usize,
}

impl LruMap {
    fn unlink(&mut self, key: u64) {
        let (prev, next) = {
            let s = &self.slots[&key];
            (s.prev, s.next)
        };
        match prev {
            Some(p) => self.slots.get_mut(&p).expect("linked prev exists").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slots.get_mut(&n).expect("linked next exists").prev = prev,
            None => self.tail = prev,
        }
    }

    fn push_front(&mut self, key: u64) {
        let old_head = self.head;
        {
            let s = self.slots.get_mut(&key).expect("pushed slot exists");
            s.prev = None;
            s.next = old_head;
        }
        if let Some(h) = old_head {
            self.slots.get_mut(&h).expect("old head exists").prev = Some(key);
        }
        self.head = Some(key);
        if self.tail.is_none() {
            self.tail = Some(key);
        }
    }

    /// Gets and marks the entry as most recently used.
    fn touch(&mut self, key: u64) -> Option<CacheEntry> {
        if !self.slots.contains_key(&key) {
            return None;
        }
        self.unlink(key);
        self.push_front(key);
        Some(self.slots[&key].entry.clone())
    }

    /// Inserts (or replaces) an entry as most recently used.
    fn insert(&mut self, key: u64, entry: CacheEntry, cost: usize) {
        if let Some(old_cost) = self.slots.get(&key).map(|s| s.cost) {
            self.unlink(key);
            let slot = self.slots.get_mut(&key).expect("replaced slot exists");
            self.bytes = self.bytes - old_cost + cost;
            slot.entry = entry;
            slot.cost = cost;
        } else {
            self.slots.insert(
                key,
                Slot {
                    entry,
                    cost,
                    prev: None,
                    next: None,
                },
            );
            self.bytes += cost;
        }
        self.push_front(key);
    }

    /// Removes and returns the least recently used key, if any.
    fn pop_lru(&mut self) -> Option<u64> {
        let key = self.tail?;
        self.unlink(key);
        let slot = self.slots.remove(&key).expect("tail slot exists");
        self.bytes -= slot.cost;
        Some(key)
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.head = None;
        self.tail = None;
        self.bytes = 0;
    }
}

/// One in-flight compilation other workers can wait on.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

#[derive(Debug)]
enum FlightState {
    Pending,
    Done(CacheEntry),
    /// The leader's compilation returned an error (or panicked): waiters
    /// retry — and become the new leader — instead of sharing a failure
    /// that may have been request-specific.
    Failed,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }
}

/// Publishes `Failed` if the leader unwinds before publishing a result, so
/// coalesced waiters never hang on a panicked compilation.
struct FlightGuard<'a> {
    cache: &'a CompileCache,
    key: u64,
    flight: Arc<Flight>,
    published: bool,
}

impl FlightGuard<'_> {
    fn publish(&mut self, state: FlightState) {
        self.published = true;
        relock(&self.cache.inflight).remove(&self.key);
        *relock(&self.flight.state) = state;
        self.flight.done.notify_all();
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.publish(FlightState::Failed);
        }
    }
}

/// Disk-tier health: a consecutive-error counter that trips a disabled
/// flag, plus the re-probe gate that lets the tier heal.
#[derive(Debug, Default)]
struct DiskHealth {
    consecutive: AtomicU32,
    disabled: AtomicBool,
    /// Earliest instant the next health probe may run while disabled.
    next_probe: Mutex<Option<Instant>>,
}

/// A thread-safe, content-addressed map from request fingerprints to
/// compiled artifacts: bounded LRU in memory, optionally persistent on
/// disk, with single-flight miss coalescing.
#[derive(Debug, Default)]
pub struct CompileCache {
    config: CacheConfig,
    entries: Mutex<LruMap>,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    tmp_swept: AtomicU64,
    disk_errors: AtomicU64,
    disk_heals: AtomicU64,
    health: DiskHealth,
    tmp_sweep_reported: AtomicBool,
    telemetry: Telemetry,
    fault: Fault,
}

impl CompileCache {
    /// An empty, unbounded, memory-only cache.
    pub fn new() -> CompileCache {
        CompileCache::default()
    }

    /// An empty cache with the given bounds and disk tier. Opening a disk
    /// tier sweeps orphaned `*.tmp` files (a writer that crashed between
    /// temp-file creation and the atomic rename would otherwise leak them
    /// forever); [`CacheStats::tmp_swept`] counts the removals.
    pub fn with_config(config: CacheConfig) -> CompileCache {
        let cache = CompileCache {
            config,
            ..CompileCache::default()
        };
        cache.sweep_tmp();
        cache
    }

    /// Removes every `*.tmp` file in the disk dir. Only called at open: a
    /// tmp file observable then belongs to a dead writer (or to a live one
    /// whose best-effort write-back harmlessly degrades to a dropped
    /// cache fill when its rename fails).
    fn sweep_tmp(&self) {
        let Some(dir) = self.config.disk_dir.as_deref() else {
            return;
        };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut swept = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tmp") && std::fs::remove_file(&path).is_ok() {
                swept += 1;
            }
        }
        self.tmp_swept.store(swept, Ordering::Relaxed);
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Attaches a telemetry handle: every counter bump also emits a
    /// same-named trace event (`cache.hit`, `cache.miss`,
    /// `cache.disk_read`, `cache.disk_write`, `cache.eviction`,
    /// `cache.coalesce`), so trace event counts always equal
    /// [`CacheStats`] counters, and waits on the entries lock feed the
    /// `cache.lock_wait_ns` histogram.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        // The open-time tmp sweep ran before any handle was attached;
        // report it now, exactly once even if re-attached.
        let swept = self.tmp_swept.load(Ordering::Relaxed);
        if swept > 0
            && self.telemetry.is_enabled()
            && !self.tmp_sweep_reported.swap(true, Ordering::Relaxed)
        {
            self.telemetry
                .mark("cache.tmp_sweep", &[("files", swept.into())]);
        }
    }

    /// Attaches a fault-injection handle (disk reads/writes consult it).
    /// The default [`Fault::disabled`] handle costs one `Option` check.
    pub fn set_fault(&mut self, fault: Fault) {
        self.fault = fault;
    }

    /// Whether the disk tier may be touched right now: yes while healthy;
    /// while disabled, yes for exactly one operation per
    /// [`CacheConfig::disk_reprobe`] window (that operation *is* the
    /// health probe — its success heals the tier, its failure pushes the
    /// next probe out another window).
    fn disk_gate(&self) -> bool {
        if !self.health.disabled.load(Ordering::SeqCst) {
            return true;
        }
        let now = Instant::now();
        let mut next = relock(&self.health.next_probe);
        match *next {
            Some(t) if now < t => false,
            _ => {
                *next = Some(now + self.config.disk_reprobe);
                true
            }
        }
    }

    /// Records a successful disk operation: resets the error streak and
    /// heals a disabled tier.
    fn disk_ok(&self) {
        self.health.consecutive.store(0, Ordering::SeqCst);
        if self.health.disabled.swap(false, Ordering::SeqCst) {
            self.disk_heals.fetch_add(1, Ordering::Relaxed);
            self.telemetry.mark("cache.disk_recovered", &[]);
        }
    }

    /// Records a real disk I/O error; at
    /// [`CacheConfig::disk_error_threshold`] consecutive errors the tier
    /// is disabled and the cache degrades to memory-only.
    fn disk_error(&self) {
        self.disk_errors.fetch_add(1, Ordering::Relaxed);
        self.telemetry.mark("cache.disk_error", &[]);
        let streak = self.health.consecutive.fetch_add(1, Ordering::SeqCst) + 1;
        if streak >= self.config.disk_error_threshold
            && !self.health.disabled.swap(true, Ordering::SeqCst)
        {
            *relock(&self.health.next_probe) = Some(Instant::now() + self.config.disk_reprobe);
            self.telemetry.mark(
                "cache.disk_disabled",
                &[("consecutive_errors", u64::from(streak).into())],
            );
        }
    }

    /// Locks the memory tier, recording how long the lock was contended.
    fn lock_entries(&self) -> MutexGuard<'_, LruMap> {
        if self.telemetry.is_enabled() {
            let t0 = Instant::now();
            let guard = relock(&self.entries);
            self.telemetry
                .record_duration("cache.lock_wait_ns", t0.elapsed());
            guard
        } else {
            relock(&self.entries)
        }
    }

    /// The disk-tier path of a key.
    fn disk_path(dir: &Path, key: u64) -> PathBuf {
        dir.join(format!("{key:016x}.phc"))
    }

    /// Probes both tiers without touching the hit/miss counters. A disk
    /// hit is promoted into the memory tier.
    fn probe(&self, key: u64) -> Option<(CacheEntry, CacheOutcome)> {
        if let Some(entry) = self.lock_entries().touch(key) {
            self.telemetry.mark("cache.hit", &[]);
            return Some((entry, CacheOutcome::MemoryHit));
        }
        let dir = self.config.disk_dir.as_deref()?;
        if !self.disk_gate() {
            return None;
        }
        let t0 = Instant::now();
        let path = Self::disk_path(dir, key);
        let read = match self.fault.disk_read() {
            DiskReadFault::Error(kind) => Err(std::io::Error::from(kind)),
            DiskReadFault::BitFlip => std::fs::read(&path).map(|mut b| {
                self.fault.corrupt(&mut b);
                b
            }),
            DiskReadFault::None => std::fs::read(&path),
        };
        let bytes = match read {
            Ok(b) => {
                self.disk_ok();
                b
            }
            // A missing file is a healthy miss — the tier answered.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.disk_ok();
                return None;
            }
            Err(_) => {
                self.disk_error();
                return None;
            }
        };
        // Corrupt, truncated, or foreign files are misses, not errors.
        let entry = persist::decode_entry(&bytes).ok()?;
        self.telemetry.mark(
            "cache.disk_read",
            &[
                ("bytes", bytes.len().into()),
                (
                    "read_us",
                    u64::try_from(t0.elapsed().as_micros())
                        .unwrap_or(u64::MAX)
                        .into(),
                ),
            ],
        );
        self.admit(key, entry.clone());
        Some((entry, CacheOutcome::DiskHit))
    }

    /// Inserts into the memory tier, evicting LRU entries until the
    /// configured budgets hold again.
    fn admit(&self, key: u64, entry: CacheEntry) {
        let cost = entry.approx_bytes();
        if self.config.max_bytes.is_some_and(|budget| cost > budget) {
            // Admitting would force the tier to exceed its budget or hold
            // nothing else; serve this entry un-cached instead.
            return;
        }
        let mut evicted = 0;
        let (entries, resident_bytes) = {
            let mut map = self.lock_entries();
            map.insert(key, entry, cost);
            let over = |map: &LruMap| {
                self.config.max_entries.is_some_and(|m| map.len() > m)
                    || self.config.max_bytes.is_some_and(|m| map.bytes > m)
            };
            while over(&map) && map.pop_lru().is_some() {
                evicted += 1;
            }
            (map.len(), map.bytes)
        };
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        for _ in 0..evicted {
            self.telemetry.mark("cache.eviction", &[]);
        }
        self.telemetry.gauge("cache.entries", entries as f64);
        self.telemetry
            .gauge("cache.resident_bytes", resident_bytes as f64);
    }

    /// Best-effort write-back to the disk tier (atomic via temp + rename;
    /// IO failures never fail the request — the cache is an accelerator,
    /// not a store of record — but they do feed the disk-health streak).
    fn write_back(&self, key: u64, entry: &CacheEntry) {
        let Some(dir) = self.config.disk_dir.as_deref() else {
            return;
        };
        if !self.disk_gate() {
            return;
        }
        if std::fs::create_dir_all(dir).is_err() {
            self.disk_error();
            return;
        }
        // Overwrite unconditionally: write-back only runs after both tiers
        // missed, so an existing file is either corrupt (heal it) or a
        // concurrent writer's identical bytes (rename keeps it atomic).
        let path = Self::disk_path(dir, key);
        let bytes = persist::encode_entry(entry);
        let tmp = dir.join(format!("{key:016x}.{}.tmp", std::process::id()));
        let t0 = Instant::now();
        let written = match self.fault.disk_write() {
            DiskWriteFault::Error(kind) => Err(std::io::Error::from(kind)),
            // A torn write that still renames into place: the trailing
            // checksum turns it into a miss on the next read.
            DiskWriteFault::Short => std::fs::write(&tmp, &bytes[..bytes.len() / 2]),
            DiskWriteFault::None => std::fs::write(&tmp, &bytes),
        };
        match written {
            Ok(()) => {
                if std::fs::rename(&tmp, &path).is_ok() {
                    self.disk_ok();
                } else {
                    let _ = std::fs::remove_file(&tmp);
                    self.disk_error();
                }
            }
            Err(_) => {
                let _ = std::fs::remove_file(&tmp);
                self.disk_error();
            }
        }
        self.telemetry.mark(
            "cache.disk_write",
            &[
                ("bytes", bytes.len().into()),
                (
                    "write_us",
                    u64::try_from(t0.elapsed().as_micros())
                        .unwrap_or(u64::MAX)
                        .into(),
                ),
            ],
        );
    }

    /// Looks up a key in both tiers, bumping the hit/miss counters.
    pub fn lookup(&self, key: u64) -> Option<CacheEntry> {
        match self.probe(key) {
            Some((entry, CacheOutcome::MemoryHit)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            Some((entry, _)) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.telemetry.mark("cache.miss", &[]);
                None
            }
        }
    }

    /// Stores a compilation result in both tiers. Concurrent duplicate
    /// inserts (two workers racing on the same key) are benign: both
    /// values are identical by construction, the second simply wins.
    pub fn insert(&self, key: u64, entry: CacheEntry) {
        self.write_back(key, &entry);
        self.admit(key, entry);
    }

    /// Returns the cached entry for `key`, computing (and caching) it with
    /// `compute` on a miss. Concurrent calls for the same key run
    /// `compute` exactly once: one caller leads, the rest block until the
    /// leader publishes and then share its `Arc`. If the leader fails or
    /// panics, one waiter takes over and retries.
    pub fn get_or_compute<E>(
        &self,
        key: u64,
        compute: impl FnOnce() -> Result<CacheEntry, E>,
    ) -> Result<(CacheEntry, CacheOutcome), E> {
        loop {
            if let Some((entry, outcome)) = self.probe(key) {
                match outcome {
                    CacheOutcome::MemoryHit => self.hits.fetch_add(1, Ordering::Relaxed),
                    _ => self.disk_hits.fetch_add(1, Ordering::Relaxed),
                };
                return Ok((entry, outcome));
            }

            let (flight, leader) = {
                let mut inflight = relock(&self.inflight);
                match inflight.get(&key) {
                    Some(f) => (Arc::clone(f), false),
                    None => {
                        let f = Arc::new(Flight::new());
                        inflight.insert(key, Arc::clone(&f));
                        (f, true)
                    }
                }
            };

            if !leader {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                self.telemetry.mark("cache.coalesce", &[]);
                let mut state = relock(&flight.state);
                while matches!(*state, FlightState::Pending) {
                    state = flight
                        .done
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
                match &*state {
                    FlightState::Done(entry) => {
                        return Ok((entry.clone(), CacheOutcome::Coalesced))
                    }
                    // Leader failed — retry (and likely lead) from the top.
                    _ => continue,
                }
            }

            let mut guard = FlightGuard {
                cache: self,
                key,
                flight,
                published: false,
            };
            // Double-check under leadership: a previous leader may have
            // published between our probe and our registration.
            if let Some((entry, outcome)) = self.probe(key) {
                match outcome {
                    CacheOutcome::MemoryHit => self.hits.fetch_add(1, Ordering::Relaxed),
                    _ => self.disk_hits.fetch_add(1, Ordering::Relaxed),
                };
                guard.publish(FlightState::Done(entry.clone()));
                return Ok((entry, outcome));
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.telemetry.mark("cache.miss", &[]);
            return match compute() {
                Ok(entry) => {
                    self.insert(key, entry.clone());
                    guard.publish(FlightState::Done(entry.clone()));
                    Ok((entry, CacheOutcome::Compiled))
                }
                Err(e) => {
                    guard.publish(FlightState::Failed);
                    Err(e)
                }
            };
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        let (entries, resident_bytes) = {
            let map = self.lock_entries();
            (map.len(), map.bytes)
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            tmp_swept: self.tmp_swept.load(Ordering::Relaxed),
            disk_errors: self.disk_errors.load(Ordering::Relaxed),
            disk_heals: self.disk_heals.load(Ordering::Relaxed),
            disk_disabled: self.health.disabled.load(Ordering::SeqCst),
            entries,
            resident_bytes,
        }
    }

    /// Drops all memory-tier entries (counters and disk files are kept).
    pub fn clear(&self) {
        relock(&self.entries).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = Fingerprint::new();
        h.write_bytes(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fingerprint::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fingerprint::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn ir_fingerprint_is_sensitive_to_every_field() {
        use paulihedral::parse::parse_program;
        let key = |text: &str| {
            let ir = parse_program(text).unwrap();
            let mut h = Fingerprint::new();
            fingerprint_ir(&ir, &mut h);
            h.finish()
        };
        let base = key("{(ZZY, 0.5), 1.0}; {(ZZI, 0.3), 1.0};");
        assert_eq!(base, key("{(ZZY, 0.5), 1.0}; {(ZZI, 0.3), 1.0};"));
        // Operator, weight, parameter, and block-structure changes all
        // produce different keys.
        assert_ne!(base, key("{(ZZX, 0.5), 1.0}; {(ZZI, 0.3), 1.0};"));
        assert_ne!(base, key("{(ZZY, 0.25), 1.0}; {(ZZI, 0.3), 1.0};"));
        assert_ne!(base, key("{(ZZY, 0.5), 2.0}; {(ZZI, 0.3), 1.0};"));
        assert_ne!(base, key("{(ZZY, 0.5), (ZZI, 0.3), 1.0};"));
        assert_ne!(base, key("{(ZZY, 0.5), theta}; {(ZZI, 0.3), 1.0};"));
    }

    /// A small synthetic entry (`gates` scales its byte cost).
    fn entry_with(gates: usize) -> CacheEntry {
        let mut circuit = qcircuit::Circuit::new(2);
        for _ in 0..gates {
            circuit.push(qcircuit::Gate::Cx(0, 1));
        }
        CacheEntry {
            compiled: Arc::new(Compiled {
                circuit,
                emitted: Vec::new(),
                initial_l2p: None,
                final_l2p: None,
            }),
            report: CompileReport::default(),
        }
    }

    #[test]
    fn counters_track_lookups() {
        let cache = CompileCache::new();
        assert!(cache.lookup(42).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 0));
        cache.insert(42, entry_with(1));
        assert!(cache.lookup(42).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn lru_evicts_in_recency_order() {
        let cache = CompileCache::with_config(CacheConfig {
            max_entries: Some(2),
            ..CacheConfig::default()
        });
        cache.insert(1, entry_with(1));
        cache.insert(2, entry_with(1));
        // Touch 1 so 2 becomes least recently used.
        assert!(cache.lookup(1).is_some());
        cache.insert(3, entry_with(1));
        assert!(cache.lookup(2).is_none(), "LRU key must be evicted");
        assert!(cache.lookup(1).is_some());
        assert!(cache.lookup(3).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn byte_budget_is_never_exceeded() {
        let unit = entry_with(1).approx_bytes();
        let cache = CompileCache::with_config(CacheConfig {
            max_bytes: Some(3 * unit),
            ..CacheConfig::default()
        });
        for key in 0..10 {
            cache.insert(key, entry_with(1));
            assert!(cache.stats().resident_bytes <= 3 * unit);
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 7);
        // An entry bigger than the whole budget is served un-cached.
        cache.insert(100, entry_with(10_000));
        assert!(cache.stats().resident_bytes <= 3 * unit);
        assert!(cache.lookup(100).is_none());
    }

    #[test]
    fn replacing_a_key_updates_cost_not_count() {
        let cache = CompileCache::new();
        cache.insert(7, entry_with(100));
        let big = cache.stats().resident_bytes;
        cache.insert(7, entry_with(1));
        let small = cache.stats().resident_bytes;
        assert_eq!(cache.stats().entries, 1);
        assert!(small < big, "replacement must release the old cost");
    }

    /// Regression test for the poisoned-lock bug: one panicking worker
    /// used to poison the entries mutex, after which every later job died
    /// in `.lock().expect("cache poisoned")`. The cache now recovers the
    /// guard (critical sections only ever swap complete values).
    #[test]
    fn survives_a_poisoned_lock() {
        let cache = CompileCache::new();
        cache.insert(1, entry_with(1));
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _guard = cache.entries.lock().unwrap();
            panic!("worker died while holding the cache lock");
        }));
        assert!(result.is_err());
        assert!(cache.entries.is_poisoned(), "test must actually poison");
        // Every hot-path operation still works.
        assert!(cache.lookup(1).is_some());
        cache.insert(2, entry_with(1));
        assert_eq!(cache.stats().entries, 2);
        let (_, outcome) = cache
            .get_or_compute::<()>(3, || Ok(entry_with(1)))
            .expect("compute succeeds");
        assert_eq!(outcome, CacheOutcome::Compiled);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn single_flight_coalesces_concurrent_misses() {
        use std::sync::mpsc;

        let cache = Arc::new(CompileCache::new());
        let key = 99;
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();

        let leader = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache.get_or_compute::<()>(key, || {
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    Ok(entry_with(1))
                })
            })
        };
        // The leader is inside its compute closure; a second request for
        // the same key must wait, not compile.
        started_rx.recv().unwrap();
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache.get_or_compute::<()>(key, || panic!("duplicate compile of an in-flight key"))
            })
        };
        // Deterministic rendezvous: wait until the follower is counted as
        // coalesced before letting the leader finish.
        while cache.stats().coalesced == 0 {
            std::thread::yield_now();
        }
        release_tx.send(()).unwrap();

        let (leader_entry, leader_outcome) = leader.join().unwrap().unwrap();
        let (follower_entry, follower_outcome) = follower.join().unwrap().unwrap();
        assert_eq!(leader_outcome, CacheOutcome::Compiled);
        assert_eq!(follower_outcome, CacheOutcome::Coalesced);
        assert!(Arc::ptr_eq(
            &leader_entry.compiled,
            &follower_entry.compiled
        ));
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.coalesced), (1, 1));
    }

    #[test]
    fn opening_a_disk_tier_sweeps_orphan_tmp_files() {
        let dir = std::env::temp_dir().join(format!("ph_cache_tmp_sweep_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Seed a valid entry plus two crashed-writer orphans.
        {
            let cache = CompileCache::with_config(CacheConfig {
                disk_dir: Some(dir.clone()),
                ..CacheConfig::default()
            });
            cache.insert(42, entry_with(1));
            assert_eq!(cache.stats().tmp_swept, 0, "clean dir has nothing to sweep");
        }
        std::fs::write(dir.join("00000000000000ff.12345.tmp"), b"partial").unwrap();
        std::fs::write(dir.join("00000000000000aa.99.tmp"), b"partial").unwrap();

        let cache = CompileCache::with_config(CacheConfig {
            disk_dir: Some(dir.clone()),
            ..CacheConfig::default()
        });
        assert_eq!(cache.stats().tmp_swept, 2);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "orphans must be removed");
        // The completed entry survives the sweep and still decodes.
        assert!(cache.lookup(42).is_some());
        assert_eq!(cache.stats().disk_hits, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_leader_hands_over_to_a_waiter() {
        use std::sync::mpsc;

        let cache = Arc::new(CompileCache::new());
        let key = 7;
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();

        let leader = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache.get_or_compute::<&str>(key, || {
                    started_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    Err("compile error")
                })
            })
        };
        started_rx.recv().unwrap();
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.get_or_compute::<&str>(key, || Ok(entry_with(1))))
        };
        while cache.stats().coalesced == 0 {
            std::thread::yield_now();
        }
        release_tx.send(()).unwrap();

        assert_eq!(leader.join().unwrap().unwrap_err(), "compile error");
        // The waiter retried, took over leadership, and compiled.
        let (_, outcome) = follower.join().unwrap().expect("retry succeeds");
        assert_eq!(outcome, CacheOutcome::Compiled);
        assert_eq!(cache.stats().misses, 2);
    }
}
