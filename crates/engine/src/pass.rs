//! The [`Pass`] trait and the concrete passes wrapping the core crate's
//! scheduling, synthesis, and circuit clean-up machinery.

use std::sync::Arc;

use paulihedral::synth::par::Intra;
use paulihedral::{synth, Backend, CompileError, Scheduler};
use qcircuit::{fusion, peephole};
use qdevice::{CouplingMap, NoiseModel};

use crate::cache::Fingerprint;
use crate::unit::CompileUnit;

/// The technology target of a compilation — the owned counterpart of the
/// core crate's borrowed [`Backend`], so it can be shared across worker
/// threads and hashed into cache keys.
#[derive(Clone, Debug)]
pub enum Target {
    /// Fault-tolerant backend: mapping is free, maximize cancellation.
    FaultTolerant,
    /// Near-term superconducting backend: coupling-constrained synthesis.
    Superconducting {
        /// The device coupling map.
        device: Arc<CouplingMap>,
        /// Optional calibration for error-aware routing decisions.
        noise: Option<Arc<NoiseModel>>,
    },
}

impl Target {
    /// A superconducting target without calibration data.
    pub fn superconducting(device: CouplingMap) -> Target {
        Target::Superconducting {
            device: Arc::new(device),
            noise: None,
        }
    }

    /// A superconducting target with a noise model for error-aware routing.
    pub fn superconducting_noisy(device: CouplingMap, noise: NoiseModel) -> Target {
        Target::Superconducting {
            device: Arc::new(device),
            noise: Some(Arc::new(noise)),
        }
    }

    /// Parses a backend spec as used by the `phc` CLI and the compile
    /// service wire protocol: `ft`, `manhattan`, `melbourne`, `linear:N`,
    /// or `grid:RxC`. A `linear:` device is widened to at least
    /// `n_program` qubits so a program never fails for want of a wire.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown or malformed spec.
    pub fn parse_spec(spec: &str, n_program: usize) -> Result<Target, String> {
        match spec {
            "ft" => Ok(Target::FaultTolerant),
            "manhattan" => Ok(Target::superconducting(qdevice::devices::manhattan_65())),
            "melbourne" => Ok(Target::superconducting(qdevice::devices::melbourne_16())),
            other => {
                if let Some(n) = other.strip_prefix("linear:") {
                    let n: usize = n.parse().map_err(|_| format!("bad linear size `{n}`"))?;
                    return Ok(Target::superconducting(qdevice::devices::linear(
                        n.max(n_program),
                    )));
                }
                if let Some(dims) = other.strip_prefix("grid:") {
                    let (r, c) = dims
                        .split_once('x')
                        .ok_or_else(|| format!("bad grid spec `{dims}`, expected RxC"))?;
                    let r: usize = r.parse().map_err(|_| format!("bad grid rows `{r}`"))?;
                    let c: usize = c.parse().map_err(|_| format!("bad grid cols `{c}`"))?;
                    return Ok(Target::superconducting(qdevice::devices::grid(r, c)));
                }
                Err(format!(
                    "unknown backend `{other}` (ft|manhattan|melbourne|linear:N|grid:RxC)"
                ))
            }
        }
    }

    /// A borrowed [`Backend`] view for the core crate's entry points.
    pub fn as_backend(&self) -> Backend<'_> {
        match self {
            Target::FaultTolerant => Backend::FaultTolerant,
            Target::Superconducting { device, noise } => Backend::Superconducting {
                device,
                noise: noise.as_deref(),
            },
        }
    }

    /// Feeds the target's full configuration into a cache fingerprint:
    /// device size, every coupling edge, and (when present) the per-edge /
    /// per-qubit noise figures that steer SC routing.
    pub(crate) fn fingerprint(&self, h: &mut Fingerprint) {
        match self {
            Target::FaultTolerant => h.write_str("ft"),
            Target::Superconducting { device, noise } => {
                h.write_str("sc");
                h.write_usize(device.num_qubits());
                for &(a, b) in device.edges() {
                    h.write_usize(a);
                    h.write_usize(b);
                }
                match noise {
                    None => h.write_str("noiseless"),
                    Some(nm) => {
                        h.write_str("noise");
                        for &(a, b) in device.edges() {
                            h.write_f64(nm.cx_error(a, b));
                        }
                        for q in 0..device.num_qubits() {
                            h.write_f64(nm.sq_error(q));
                            h.write_f64(nm.readout_error(q));
                        }
                    }
                }
            }
        }
    }
}

/// Read-only context every pass receives: the target plus an optional
/// per-job scheduler override (used by the batch driver to steer one
/// pipeline across heterogeneous jobs).
#[derive(Clone, Debug)]
pub struct PassContext<'a> {
    /// The technology target.
    pub target: &'a Target,
    /// Overrides the scheduling pass's configured scheduler, if set.
    pub scheduler_override: Option<Scheduler>,
    /// Intra-compile parallelism context for the synthesis pass. Purely a
    /// wall-clock knob — the artifact is bit-identical for every worker
    /// budget — so it MUST NOT feed any pass [`Pass::signature`].
    pub intra: Intra<'a>,
}

/// One step of a [`crate::Pipeline`].
///
/// Passes must be `Send + Sync`: one pipeline instance drives all batch
/// worker threads.
pub trait Pass: Send + Sync {
    /// Display name (report tables, progress output).
    fn name(&self) -> &'static str;

    /// Configuration tag folded into the compilation cache key. Two
    /// pipelines with the same signature sequence must produce identical
    /// output for identical input.
    fn signature(&self, ctx: &PassContext<'_>) -> String;

    /// Transforms the unit in place. On success returns a one-line note
    /// describing what the pass did (recorded into the
    /// [`crate::PassRecord`]; may be empty).
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the unit cannot be compiled (the
    /// same conditions [`paulihedral::try_compile`] rejects).
    fn run(&self, unit: &mut CompileUnit, ctx: &PassContext<'_>) -> Result<String, CompileError>;
}

/// Technology-independent scheduling (paper §4): wraps
/// [`paulihedral::run_scheduler`], resolving [`Scheduler::Auto`] through
/// the §7 adaptive heuristic.
#[derive(Clone, Copy, Debug)]
pub struct SchedulePass {
    /// The configured scheduler ([`PassContext::scheduler_override`] wins).
    pub scheduler: Scheduler,
}

impl SchedulePass {
    fn effective(&self, ctx: &PassContext<'_>) -> Scheduler {
        ctx.scheduler_override.unwrap_or(self.scheduler)
    }
}

fn scheduler_tag(s: Scheduler) -> &'static str {
    match s {
        Scheduler::GateCount => "gco",
        Scheduler::Depth => "do",
        Scheduler::Auto => "auto",
    }
}

impl Pass for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }

    fn signature(&self, ctx: &PassContext<'_>) -> String {
        // `auto` is a sound cache tag: it resolves as a pure function of
        // the IR, which is hashed alongside this signature.
        format!("schedule:{}", scheduler_tag(self.effective(ctx)))
    }

    fn run(&self, unit: &mut CompileUnit, ctx: &PassContext<'_>) -> Result<String, CompileError> {
        let resolved = self.effective(ctx).resolve(&unit.ir);
        unit.layers = Some(paulihedral::run_scheduler(&unit.ir, resolved));
        unit.scheduler_used = Some(resolved);
        Ok(format!(
            "{} -> {} layers",
            scheduler_tag(resolved),
            unit.layers.as_ref().map_or(0, Vec::len)
        ))
    }
}

/// Technology-dependent block-wise synthesis (paper §5): Alg. 2 on the FT
/// target, Alg. 3 on the SC target. Produces the raw circuit; the final
/// clean-up lives in [`PeepholePass`] so its effect is instrumented
/// separately.
#[derive(Clone, Copy, Debug, Default)]
pub struct SynthesisPass;

impl Pass for SynthesisPass {
    fn name(&self) -> &'static str {
        "synthesis"
    }

    fn signature(&self, _ctx: &PassContext<'_>) -> String {
        "synthesis".into()
    }

    fn run(&self, unit: &mut CompileUnit, ctx: &PassContext<'_>) -> Result<String, CompileError> {
        let layers = unit
            .layers
            .as_ref()
            .expect("SynthesisPass needs scheduled layers — add a SchedulePass first");
        let n = unit.ir.num_qubits();
        match ctx.target {
            Target::FaultTolerant => {
                let r = synth::ft::synthesize_unoptimized_with(n, layers, ctx.intra);
                unit.circuit = Some(r.circuit);
                unit.emitted = r.emitted;
            }
            Target::Superconducting { device, noise } => {
                let r = synth::sc::synthesize_unoptimized_with(
                    n,
                    layers,
                    device,
                    noise.as_deref(),
                    ctx.intra,
                );
                unit.circuit = Some(r.circuit);
                unit.emitted = r.emitted;
                unit.initial_l2p = Some(r.initial_l2p);
                unit.final_l2p = Some(r.final_l2p);
            }
        }
        Ok(format!("{} strings emitted", unit.emitted.len()))
    }
}

/// Commutation-aware peephole cancellation ([`qcircuit::peephole`]) — the
/// clean-up [`paulihedral::compile`] runs as the tail of synthesis, split
/// out so the report shows what it cancelled.
#[derive(Clone, Copy, Debug, Default)]
pub struct PeepholePass;

impl Pass for PeepholePass {
    fn name(&self) -> &'static str {
        "peephole"
    }

    fn signature(&self, _ctx: &PassContext<'_>) -> String {
        "peephole".into()
    }

    fn run(&self, unit: &mut CompileUnit, _ctx: &PassContext<'_>) -> Result<String, CompileError> {
        let circuit = unit
            .circuit
            .as_mut()
            .expect("PeepholePass needs a circuit — add a SynthesisPass first");
        let r = peephole::optimize(circuit);
        Ok(format!(
            "cancelled {}, merged {}, zeroed {}, {} rounds",
            r.cancelled, r.merged, r.zero_rotations, r.rounds
        ))
    }
}

/// Single-qubit gate-run fusion ([`qcircuit::fusion`]). Not part of the
/// standard pipeline — [`paulihedral::compile`] does not run it — but
/// available for pipelines that trade a little compile time for shorter
/// single-qubit runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct FusionPass;

impl Pass for FusionPass {
    fn name(&self) -> &'static str {
        "fusion"
    }

    fn signature(&self, _ctx: &PassContext<'_>) -> String {
        "fusion".into()
    }

    fn run(&self, unit: &mut CompileUnit, _ctx: &PassContext<'_>) -> Result<String, CompileError> {
        let circuit = unit
            .circuit
            .as_mut()
            .expect("FusionPass needs a circuit — add a SynthesisPass first");
        let removed = fusion::fuse_single_qubit_runs(circuit);
        Ok(format!("fused away {removed} gates"))
    }
}
