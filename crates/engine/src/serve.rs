//! `ph_serve`: a TCP compile service over the batch engine.
//!
//! One [`Server`] owns a [`crate::BatchEngine`]: a listener thread accepts
//! connections, one reader thread per connection parses newline-delimited
//! JSON requests ([`crate::proto`]) into a bounded work queue, and the
//! engine's worker pool pulls jobs off the queue, compiles them through
//! the shared single-flight cache, and **streams each report back the
//! moment it finishes** — no batch barrier, and results from different
//! connections interleave freely.
//!
//! Robustness properties, all tested end-to-end (and under injected
//! faults by the chaos suite):
//!
//! * **Backpressure.** The queue is bounded ([`ServeConfig::queue_depth`]);
//!   a compile request arriving while it is full is answered immediately
//!   with an `overloaded` report instead of buffering without limit.
//! * **Deadlines.** A per-request (or server-default) deadline expires
//!   jobs still queued when it passes (`deadline_exceeded`), so a slow
//!   queue cannot serve stale work.
//! * **Errors as values.** Compiler rejections, panics inside a pass
//!   ([`crate::Engine::compile_caught`]), malformed requests, and
//!   oversized lines are all wire responses; none of them kill the
//!   connection, the worker, or the server.
//! * **Dead connections don't waste workers.** A client that vanishes
//!   mid-stream is detected at the first failed response write; that
//!   connection's still-queued jobs are cancelled instead of compiled
//!   ([`ServeStats::cancelled`], `serve.cancelled` telemetry).
//! * **Watchdog.** With [`ServeConfig::watchdog`] set, a job stuck in a
//!   worker past the threshold is force-answered with a typed
//!   `watchdog_timeout` report and a replacement worker is spawned, so
//!   one wedged compile can neither hold its client hostage nor wedge
//!   the drain. Each job is answered exactly once — a stuck compile that
//!   eventually finishes is discarded.
//! * **Graceful drain.** A `shutdown` request (or [`ServerHandle::shutdown`])
//!   stops accepting connections and new work, but every job already
//!   accepted is answered (compiled, cancelled, or timed out) before
//!   [`Server::run`] returns.
//!
//! Telemetry: each connection runs under a `conn` span, each job under a
//! `request` span (with `id`/`conn`/`queue_wait_us` args) that the
//! engine's `compile` span nests inside, plus `serve.request` /
//! `serve.reject` / `serve.deadline_miss` / `serve.cancelled` /
//! `serve.watchdog_timeout` instants and `serve.queue_wait_ns` /
//! `serve.request_ns` histograms.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use paulihedral::ir::PauliIR;
use paulihedral::parse::parse_program;
use ph_telemetry::json::Json;

use crate::batch::BatchEngine;
use crate::cache::{relock, CacheEntry};
use crate::fault::{ConnFault, Fault};
use crate::pass::Target;
use crate::persist;
use crate::proto::{self, CompileRequest, Request};

/// Tunables of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum jobs waiting for a worker before new compile requests are
    /// rejected with `overloaded`.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms` (`None` = no default deadline).
    pub default_deadline: Option<Duration>,
    /// Longest accepted request line in bytes; longer lines are answered
    /// with `request_too_large` and the connection is closed.
    pub max_line_bytes: usize,
    /// Stuck-job threshold: a job inside a worker longer than this is
    /// force-answered with a `watchdog_timeout` report and its worker is
    /// written off and replaced (`None` = no watchdog).
    pub watchdog: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_depth: 256,
            default_deadline: None,
            max_line_bytes: 16 * 1024 * 1024,
            watchdog: None,
        }
    }
}

/// Service counters, returned by [`Server::run`] and
/// [`ServerHandle::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Compile requests received (accepted or rejected).
    pub requests: u64,
    /// Compile requests answered with a compiled (or compiler-rejected)
    /// report.
    pub completed: u64,
    /// Compile requests rejected by the service itself (bad request,
    /// overloaded, draining).
    pub rejected: u64,
    /// Jobs whose deadline expired before a worker picked them up.
    pub deadline_misses: u64,
    /// Queued jobs skipped because their connection was already dead.
    pub cancelled: u64,
    /// Jobs force-answered by the watchdog after exceeding the
    /// stuck-threshold.
    pub watchdog_timeouts: u64,
    /// Replacement workers spawned for written-off stuck ones.
    pub workers_replaced: u64,
}

/// One accepted compile request's answer slot: which connection to write
/// to and the exactly-once latch both the worker and the watchdog race
/// for. Whoever swaps `answered` first writes the report; the loser's
/// result is discarded.
struct Ticket {
    conn: Arc<Conn>,
    id: u64,
    name: String,
    answered: AtomicBool,
}

/// One queued compile job, carrying everything the worker needs.
struct Job {
    ticket: Arc<Ticket>,
    req: CompileRequest,
    ir: PauliIR,
    target: Option<Target>,
    enqueued: Instant,
    deadline: Option<Instant>,
}

/// The writer half of one connection, shared between its reader thread
/// and every worker holding one of its jobs.
struct Conn {
    id: u64,
    writer: Mutex<TcpStream>,
    /// Jobs accepted from this connection and not yet answered.
    pending: Mutex<u64>,
    idle: Condvar,
    /// Report lines (success, failure, or reject) written so far.
    served: AtomicU64,
    closed: AtomicBool,
    /// Set on the first failed (or fault-injected) response write: the
    /// client is gone, so this connection's remaining queued jobs are
    /// cancelled instead of compiled.
    dead: AtomicBool,
    fault: Fault,
}

impl Conn {
    /// Writes one response line. A failed write marks the connection dead
    /// — the jobs already compiled stay compiled (and warm the shared
    /// cache), but queued ones will be cancelled rather than compiled for
    /// a client that can no longer receive them.
    fn write_line(&self, json: &Json) {
        if self.is_dead() {
            return;
        }
        let mut line = json.to_compact();
        line.push('\n');
        match self.fault.conn_write() {
            ConnFault::Drop => {
                self.dead.store(true, Ordering::SeqCst);
                self.close();
                return;
            }
            ConnFault::Truncate => {
                let cut = line.len() / 2;
                {
                    let mut stream = relock(&self.writer);
                    let _ = stream.write_all(&line.as_bytes()[..cut]);
                    let _ = stream.flush();
                }
                self.dead.store(true, Ordering::SeqCst);
                self.close();
                return;
            }
            ConnFault::Stall(d) => thread::sleep(d),
            ConnFault::None => {}
        }
        let mut stream = relock(&self.writer);
        let ok = stream.write_all(line.as_bytes()).is_ok() && stream.flush().is_ok();
        if !ok {
            self.dead.store(true, Ordering::SeqCst);
        }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn add_pending(&self) {
        *relock(&self.pending) += 1;
    }

    /// Counts one report line (success, failure, or reject) toward the
    /// `bye` tally.
    fn count_report(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one accepted job as answered, waking `wait_idle` at zero.
    fn complete(&self) {
        let mut pending = relock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.idle.notify_all();
        }
    }

    /// Blocks until every accepted job of this connection is answered.
    fn wait_idle(&self) {
        let mut pending = relock(&self.pending);
        while *pending > 0 {
            pending = self
                .idle
                .wait(pending)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the socket (both halves), once.
    fn close(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            let _ = relock(&self.writer).shutdown(Shutdown::Both);
        }
    }
}

/// Why [`Inner::push`] refused a job.
enum PushError {
    Full,
    Draining,
}

struct Inner {
    batch: BatchEngine,
    config: ServeConfig,
    addr: SocketAddr,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    /// Set once the drain has finished; stops the watchdog thread.
    done: AtomicBool,
    conns: Mutex<Vec<Arc<Conn>>>,
    /// Accepted compile requests not yet answered (the drain barrier:
    /// [`Server::run`] returns once draining is set and this hits zero).
    outstanding: Mutex<u64>,
    drained: Condvar,
    /// Jobs currently inside a worker, with their start instants — what
    /// the watchdog scans.
    running: Mutex<Vec<(Arc<Ticket>, Instant)>>,
    connections: AtomicU64,
    requests: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    deadline_misses: AtomicU64,
    cancelled: AtomicU64,
    watchdog_timeouts: AtomicU64,
    workers_replaced: AtomicU64,
}

impl Inner {
    fn stats(&self) -> ServeStats {
        ServeStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            watchdog_timeouts: self.watchdog_timeouts.load(Ordering::Relaxed),
            workers_replaced: self.workers_replaced.load(Ordering::Relaxed),
        }
    }

    fn queued(&self) -> usize {
        relock(&self.queue).len()
    }

    /// Enqueues a job; on refusal the (boxed, to keep the `Err` small)
    /// job is handed back so the caller can answer it.
    fn push(&self, job: Box<Job>) -> Result<(), (Box<Job>, PushError)> {
        let mut queue = relock(&self.queue);
        // Checked under the queue lock so a drain begun concurrently can
        // never strand a job the workers already stopped watching for.
        if self.draining.load(Ordering::SeqCst) {
            return Err((job, PushError::Draining));
        }
        if queue.len() >= self.config.queue_depth {
            return Err((job, PushError::Full));
        }
        queue.push_back(*job);
        self.queue_cv.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once draining and empty — the
    /// worker's signal to exit with every accepted job answered.
    fn pop(&self) -> Option<Job> {
        let mut queue = relock(&self.queue);
        loop {
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            if self.draining.load(Ordering::SeqCst) {
                return None;
            }
            queue = self
                .queue_cv
                .wait(queue)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Starts the graceful drain: no new connections or jobs, all queued
    /// work still runs to completion.
    fn begin_drain(&self) {
        {
            let _queue = relock(&self.queue);
            self.draining.store(true, Ordering::SeqCst);
        }
        self.queue_cv.notify_all();
        // The drain barrier may already hold (nothing outstanding).
        self.drained.notify_all();
        // Unblock the accept loop: it re-checks `draining` per connection,
        // so one throwaway local connect is enough to let it exit.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until draining is requested and every accepted job has been
    /// answered.
    fn wait_drained(&self) {
        let mut outstanding = relock(&self.outstanding);
        while *outstanding > 0 {
            outstanding = self
                .drained
                .wait(outstanding)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Claims one outstanding-answer slot for a just-accepted job.
    fn accept_one(&self, conn: &Conn) {
        conn.add_pending();
        *relock(&self.outstanding) += 1;
    }

    /// Answers one accepted job exactly once: writes the report line (if
    /// any — cancelled jobs write nothing), releases the connection's
    /// pending slot, and decrements the drain barrier. Returns `false`
    /// when someone else (worker vs. watchdog) answered first. The
    /// winner's outcome counter is bumped *before* the write, so a client
    /// that reads its report and immediately asks for `stats` sees it
    /// counted.
    fn answer(&self, ticket: &Ticket, line: Option<&Json>, counter: &AtomicU64) -> bool {
        if ticket.answered.swap(true, Ordering::SeqCst) {
            return false;
        }
        counter.fetch_add(1, Ordering::Relaxed);
        if let Some(line) = line {
            ticket.conn.write_line(line);
            ticket.conn.count_report();
        }
        ticket.conn.complete();
        let mut outstanding = relock(&self.outstanding);
        *outstanding -= 1;
        if *outstanding == 0 {
            self.drained.notify_all();
        }
        true
    }

    /// The `stats` response line.
    fn stats_json(&self) -> Json {
        let s = self.stats();
        Json::obj([
            ("type", Json::str("stats")),
            (
                "serve",
                Json::obj([
                    ("connections", Json::U64(s.connections)),
                    ("requests", Json::U64(s.requests)),
                    ("completed", Json::U64(s.completed)),
                    ("rejected", Json::U64(s.rejected)),
                    ("deadline_misses", Json::U64(s.deadline_misses)),
                    ("cancelled", Json::U64(s.cancelled)),
                    ("watchdog_timeouts", Json::U64(s.watchdog_timeouts)),
                    ("workers_replaced", Json::U64(s.workers_replaced)),
                    ("queued", Json::U64(self.queued() as u64)),
                ]),
            ),
            (
                "cache",
                proto::cache_json(&self.batch.engine().cache_stats()),
            ),
        ])
    }

    /// The `health` response line: queue depth, worker liveness, and
    /// cache tier status, cheap enough for load-balancer probes.
    fn health_json(&self) -> Json {
        let s = self.stats();
        let cache = self.batch.engine().cache_stats();
        let draining = self.draining.load(Ordering::SeqCst);
        let disk_tier = if self.batch.engine().cache_config().disk_dir.is_none() {
            "none"
        } else if cache.disk_disabled {
            "disabled"
        } else {
            "ok"
        };
        let status = if draining {
            "draining"
        } else if cache.disk_disabled || s.workers_replaced > 0 {
            "degraded"
        } else {
            "ok"
        };
        Json::obj([
            ("type", Json::str("health")),
            ("status", Json::str(status)),
            ("draining", Json::Bool(draining)),
            ("queued", Json::U64(self.queued() as u64)),
            ("queue_depth", Json::U64(self.config.queue_depth as u64)),
            ("workers", Json::U64(self.batch.threads() as u64)),
            ("workers_replaced", Json::U64(s.workers_replaced)),
            ("running", Json::U64(relock(&self.running).len() as u64)),
            ("watchdog_timeouts", Json::U64(s.watchdog_timeouts)),
            ("disk_tier", Json::str(disk_tier)),
            ("cache", proto::cache_json(&cache)),
        ])
    }

    /// Answers one compile request with a service-side rejection (before
    /// it was ever accepted — parse and validation failures).
    fn reject(&self, conn: &Conn, req: &CompileRequest, kind: &str, message: &str) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.batch.engine().telemetry().mark("serve.reject", &[]);
        conn.write_line(&proto::reject_json(
            req.id,
            &req.display_name(),
            kind,
            message,
        ));
        conn.count_report();
    }

    /// Validates and enqueues one compile request; every exit path writes
    /// exactly one report line (now, or later from a worker).
    fn submit(&self, conn: &Arc<Conn>, req: CompileRequest) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.batch.engine().telemetry().mark("serve.request", &[]);
        let ir = match parse_program(&req.ir) {
            Ok(ir) => ir,
            Err(e) => {
                self.reject(conn, &req, "bad_request", &format!("ir parse error: {e}"));
                return;
            }
        };
        let target = match &req.backend {
            None => None,
            Some(spec) => match Target::parse_spec(spec, ir.num_qubits()) {
                Ok(t) => Some(t),
                Err(msg) => {
                    self.reject(conn, &req, "bad_request", &msg);
                    return;
                }
            },
        };
        let deadline = req
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.config.default_deadline)
            .map(|d| Instant::now() + d);
        self.accept_one(conn);
        let ticket = Arc::new(Ticket {
            conn: Arc::clone(conn),
            id: req.id,
            name: req.display_name(),
            answered: AtomicBool::new(false),
        });
        let job = Job {
            ticket,
            req,
            ir,
            target,
            enqueued: Instant::now(),
            deadline,
        };
        if let Err((job, kind)) = self.push(Box::new(job)) {
            let (tag, message) = match kind {
                PushError::Full => (
                    "overloaded",
                    format!(
                        "work queue is full ({} jobs); retry later",
                        self.config.queue_depth
                    ),
                ),
                PushError::Draining => ("draining", "server is shutting down".to_string()),
            };
            self.batch.engine().telemetry().mark("serve.reject", &[]);
            let line = proto::reject_json(job.req.id, &job.ticket.name, tag, &message);
            self.answer(&job.ticket, Some(&line), &self.rejected);
        }
    }

    /// One worker: pull → liveness/deadline check → compile → stream the
    /// report (unless the watchdog already answered for us).
    fn worker(self: &Arc<Inner>) {
        let telemetry = self.batch.engine().telemetry().clone();
        while let Some(job) = self.pop() {
            let queue_wait = job.enqueued.elapsed();
            let span = telemetry.span_with(
                "request",
                vec![
                    ("id", job.req.id.into()),
                    ("conn", job.ticket.conn.id.into()),
                    (
                        "queue_wait_us",
                        u64::try_from(queue_wait.as_micros())
                            .unwrap_or(u64::MAX)
                            .into(),
                    ),
                ],
            );
            if job.ticket.conn.is_dead() {
                // The client vanished mid-stream; skip the compile rather
                // than burn a worker on a report nobody can receive.
                telemetry.mark("serve.cancelled", &[("conn", job.ticket.conn.id.into())]);
                self.answer(&job.ticket, None, &self.cancelled);
            } else if job.deadline.is_some_and(|d| Instant::now() > d) {
                telemetry.mark("serve.deadline_miss", &[]);
                let line = proto::reject_json(
                    job.req.id,
                    &job.ticket.name,
                    "deadline_exceeded",
                    "deadline expired before a worker picked the job up",
                );
                self.answer(&job.ticket, Some(&line), &self.deadline_misses);
            } else {
                relock(&self.running).push((Arc::clone(&job.ticket), Instant::now()));
                let t0 = Instant::now();
                let outcome = self.batch.engine().compile_caught(
                    &job.ir,
                    job.target.as_ref(),
                    job.req.scheduler,
                );
                let wall = t0.elapsed();
                relock(&self.running).retain(|(t, _)| !Arc::ptr_eq(t, &job.ticket));
                let artifact = match (&outcome, job.req.artifact) {
                    (Ok(o), true) => {
                        let entry = CacheEntry {
                            compiled: Arc::clone(&o.compiled),
                            report: o.report.clone(),
                        };
                        Some(proto::hex_encode(&persist::encode_entry(&entry)))
                    }
                    _ => None,
                };
                let line = proto::report_json(
                    job.req.id,
                    proto::job_json(&job.ticket.name, &outcome, wall, queue_wait),
                    artifact,
                );
                if !self.answer(&job.ticket, Some(&line), &self.completed) {
                    // The watchdog wrote this job off while we computed;
                    // the (late) result is discarded.
                    telemetry.mark("serve.late_result", &[("id", job.req.id.into())]);
                }
            }
            let wall = span.finish();
            telemetry.record_duration("serve.request_ns", wall);
            telemetry.record_duration("serve.queue_wait_ns", queue_wait);
        }
    }

    /// The watchdog loop: scan running jobs every quarter-threshold,
    /// force-answer any stuck past the threshold with `watchdog_timeout`,
    /// and spawn a replacement for each written-off worker (bounded, so a
    /// pathological workload cannot spawn threads without limit).
    fn watchdog(self: &Arc<Inner>, threshold: Duration) {
        let replacement_cap = (self.batch.threads() as u64) * 4;
        let tick = (threshold / 4).max(Duration::from_millis(1));
        let telemetry = self.batch.engine().telemetry().clone();
        while !self.done.load(Ordering::SeqCst) {
            thread::sleep(tick);
            let stuck: Vec<Arc<Ticket>> = {
                let mut running = relock(&self.running);
                let mut out = Vec::new();
                running.retain(|(ticket, started)| {
                    if started.elapsed() > threshold {
                        out.push(Arc::clone(ticket));
                        false
                    } else {
                        true
                    }
                });
                out
            };
            for ticket in stuck {
                let line = proto::reject_json(
                    ticket.id,
                    &ticket.name,
                    "watchdog_timeout",
                    &format!(
                        "job exceeded the {} ms stuck-job threshold",
                        threshold.as_millis()
                    ),
                );
                if !self.answer(&ticket, Some(&line), &self.watchdog_timeouts) {
                    // The worker finished in the gap between the scan and
                    // here — not stuck after all, nothing to replace.
                    continue;
                }
                telemetry.mark("serve.watchdog_timeout", &[("id", ticket.id.into())]);
                // The worker underneath is presumed wedged. Replace it so
                // queued jobs keep flowing; the wedged thread's eventual
                // result (if any) loses the answer race and is discarded.
                let replaced = self.workers_replaced.fetch_add(1, Ordering::SeqCst) + 1;
                if replaced <= replacement_cap {
                    let inner = Arc::clone(self);
                    thread::spawn(move || inner.worker());
                } else {
                    self.workers_replaced.fetch_sub(1, Ordering::SeqCst);
                }
            }
            // Safety valve once the replacement budget is spent: expire
            // queued jobs past the threshold directly so the drain still
            // terminates even if every worker is wedged.
            if self.workers_replaced.load(Ordering::SeqCst) >= replacement_cap {
                let expired: Vec<Arc<Ticket>> = {
                    let mut queue = relock(&self.queue);
                    let mut out = Vec::new();
                    queue.retain(|job| {
                        if job.enqueued.elapsed() > threshold {
                            out.push(Arc::clone(&job.ticket));
                            false
                        } else {
                            true
                        }
                    });
                    out
                };
                for ticket in expired {
                    telemetry.mark("serve.watchdog_timeout", &[("id", ticket.id.into())]);
                    let line = proto::reject_json(
                        ticket.id,
                        &ticket.name,
                        "watchdog_timeout",
                        "all workers wedged; job expired in queue",
                    );
                    self.answer(&ticket, Some(&line), &self.watchdog_timeouts);
                }
            }
        }
    }

    /// One connection's reader loop: parse lines, dispatch requests,
    /// answer control messages inline, and on EOF wait for this
    /// connection's in-flight jobs before saying goodbye.
    fn handle_conn(self: &Arc<Inner>, conn: Arc<Conn>, stream: TcpStream) {
        let telemetry = self.batch.engine().telemetry().clone();
        let span = telemetry.span_with("conn", vec![("conn", conn.id.into())]);
        let mut reader = BufReader::new(stream);
        loop {
            match read_line(&mut reader, self.config.max_line_bytes) {
                Line::Eof => break,
                Line::TooLong => {
                    conn.write_line(&proto::error_json(
                        "request_too_large",
                        &format!("request line exceeds {} bytes", self.config.max_line_bytes),
                    ));
                    break;
                }
                Line::BadUtf8 => {
                    conn.write_line(&proto::error_json(
                        "bad_request",
                        "request line is not valid UTF-8",
                    ));
                    continue;
                }
                Line::Text(line) => {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    match Request::from_line(line) {
                        Err(message) => {
                            conn.write_line(&proto::error_json("bad_request", &message));
                        }
                        Ok(Request::Ping) => {
                            conn.write_line(&Json::obj([("type", Json::str("pong"))]));
                        }
                        Ok(Request::Stats) => conn.write_line(&self.stats_json()),
                        Ok(Request::Health) => conn.write_line(&self.health_json()),
                        Ok(Request::Shutdown) => {
                            conn.write_line(&Json::obj([
                                ("type", Json::str("shutdown_ack")),
                                ("pending", Json::U64(self.queued() as u64)),
                            ]));
                            self.begin_drain();
                        }
                        Ok(Request::Compile(req)) => self.submit(&conn, req),
                    }
                }
            }
        }
        // Half-close or disconnect: every accepted job still gets its
        // report (the writer half outlives the reader), then `bye` closes
        // the stream so a well-behaved client can count its reports.
        conn.wait_idle();
        conn.write_line(&Json::obj([
            ("type", Json::str("bye")),
            ("served", Json::U64(conn.served.load(Ordering::Relaxed))),
        ]));
        conn.close();
        drop(span);
    }
}

/// One request line, bounded.
enum Line {
    Text(String),
    Eof,
    TooLong,
    BadUtf8,
}

/// Reads one `\n`-terminated line of at most `max` bytes. The limit is
/// enforced *during* the read (`Take`), so an adversarial client cannot
/// make the server buffer an unbounded line.
fn read_line(reader: &mut BufReader<TcpStream>, max: usize) -> Line {
    let mut buf = Vec::new();
    let mut limited = reader.by_ref().take(max as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => Line::Eof,
        Ok(_) if buf.len() > max => Line::TooLong,
        Ok(_) => {
            if buf.last() == Some(&b'\n') {
                buf.pop();
            }
            match String::from_utf8(buf) {
                Ok(s) => Line::Text(s),
                Err(_) => Line::BadUtf8,
            }
        }
        Err(_) => Line::Eof,
    }
}

/// A running compile service bound to a TCP address.
///
/// `bind` then [`Server::run`]; `run` blocks until a drain completes (a
/// `shutdown` request on any connection, or [`ServerHandle::shutdown`]
/// from another thread) and returns the final [`ServeStats`].
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds the service (use port 0 for an ephemeral port, then
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any [`TcpListener::bind`] failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        batch: BatchEngine,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            inner: Arc::new(Inner {
                batch,
                config,
                addr,
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                draining: AtomicBool::new(false),
                done: AtomicBool::new(false),
                conns: Mutex::new(Vec::new()),
                outstanding: Mutex::new(0),
                drained: Condvar::new(),
                running: Mutex::new(Vec::new()),
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                deadline_misses: AtomicU64::new(0),
                cancelled: AtomicU64::new(0),
                watchdog_timeouts: AtomicU64::new(0),
                workers_replaced: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// A handle for controlling and observing the server from another
    /// thread while [`Server::run`] blocks.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Serves until drained: accepts connections, streams reports, and on
    /// shutdown answers every accepted job before returning the final
    /// counters.
    ///
    /// Workers are detached rather than joined: the drain barrier counts
    /// *answers*, not worker exits, so a worker wedged on a stuck compile
    /// (written off by the watchdog) cannot wedge the drain with it.
    pub fn run(self) -> ServeStats {
        let inner = self.inner;
        for _ in 0..inner.batch.threads() {
            let inner = Arc::clone(&inner);
            thread::spawn(move || inner.worker());
        }
        let watchdog = inner.config.watchdog.map(|threshold| {
            let inner = Arc::clone(&inner);
            thread::spawn(move || inner.watchdog(threshold))
        });

        let mut conn_threads = Vec::new();
        for stream in self.listener.incoming() {
            if inner.draining.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let Ok(writer) = stream.try_clone() else {
                continue;
            };
            let id = inner.connections.fetch_add(1, Ordering::Relaxed) + 1;
            let conn = Arc::new(Conn {
                id,
                writer: Mutex::new(writer),
                pending: Mutex::new(0),
                idle: Condvar::new(),
                served: AtomicU64::new(0),
                closed: AtomicBool::new(false),
                dead: AtomicBool::new(false),
                fault: inner.batch.engine().fault().clone(),
            });
            relock(&inner.conns).push(Arc::clone(&conn));
            let inner = Arc::clone(&inner);
            conn_threads.push(thread::spawn(move || inner.handle_conn(conn, stream)));
        }
        drop(self.listener);

        // Drain: every accepted job answered (compiled, cancelled, timed
        // out, or rejected) — not "every worker exited".
        inner.wait_drained();
        inner.done.store(true, Ordering::SeqCst);
        // Readers may still be blocked on clients that never hang up;
        // closing the sockets gives them EOF and lets them finish their
        // own goodbye path.
        for conn in relock(&inner.conns).iter() {
            conn.close();
        }
        for t in conn_threads {
            let _ = t.join();
        }
        if let Some(w) = watchdog {
            let _ = w.join();
        }
        inner.stats()
    }
}

/// Controls a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Begins the graceful drain (idempotent).
    pub fn shutdown(&self) {
        self.inner.begin_drain();
    }

    /// Current service counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.stats()
    }

    /// Jobs currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }
}
