//! `ph_serve`: a TCP compile service over the batch engine.
//!
//! One [`Server`] owns a [`crate::BatchEngine`]: a listener thread accepts
//! connections, one reader thread per connection parses newline-delimited
//! JSON requests ([`crate::proto`]) into a bounded work queue, and the
//! engine's worker pool pulls jobs off the queue, compiles them through
//! the shared single-flight cache, and **streams each report back the
//! moment it finishes** — no batch barrier, and results from different
//! connections interleave freely.
//!
//! Robustness properties, all tested end-to-end:
//!
//! * **Backpressure.** The queue is bounded ([`ServeConfig::queue_depth`]);
//!   a compile request arriving while it is full is answered immediately
//!   with an `overloaded` report instead of buffering without limit.
//! * **Deadlines.** A per-request (or server-default) deadline expires
//!   jobs still queued when it passes (`deadline_exceeded`), so a slow
//!   queue cannot serve stale work.
//! * **Errors as values.** Compiler rejections, panics inside a pass
//!   ([`crate::Engine::compile_caught`]), malformed requests, and
//!   oversized lines are all wire responses; none of them kill the
//!   connection, the worker, or the server.
//! * **Graceful drain.** A `shutdown` request (or [`ServerHandle::shutdown`])
//!   stops accepting connections and new work, but every job already
//!   accepted is compiled and its report delivered before [`Server::run`]
//!   returns.
//!
//! Telemetry: each connection runs under a `conn` span, each job under a
//! `request` span (with `id`/`conn`/`queue_wait_us` args) that the
//! engine's `compile` span nests inside, plus `serve.request` /
//! `serve.reject` / `serve.deadline_miss` instants and
//! `serve.queue_wait_ns` / `serve.request_ns` histograms.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use paulihedral::ir::PauliIR;
use paulihedral::parse::parse_program;
use ph_telemetry::json::Json;

use crate::batch::BatchEngine;
use crate::cache::{relock, CacheEntry};
use crate::pass::Target;
use crate::persist;
use crate::proto::{self, CompileRequest, Request};

/// Tunables of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum jobs waiting for a worker before new compile requests are
    /// rejected with `overloaded`.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms` (`None` = no default deadline).
    pub default_deadline: Option<Duration>,
    /// Longest accepted request line in bytes; longer lines are answered
    /// with `request_too_large` and the connection is closed.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_depth: 256,
            default_deadline: None,
            max_line_bytes: 16 * 1024 * 1024,
        }
    }
}

/// Service counters, returned by [`Server::run`] and
/// [`ServerHandle::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Compile requests received (accepted or rejected).
    pub requests: u64,
    /// Compile requests answered with a compiled (or compiler-rejected)
    /// report.
    pub completed: u64,
    /// Compile requests rejected by the service itself (bad request,
    /// overloaded, draining).
    pub rejected: u64,
    /// Jobs whose deadline expired before a worker picked them up.
    pub deadline_misses: u64,
}

/// One queued compile job, carrying everything the worker needs.
struct Job {
    conn: Arc<Conn>,
    req: CompileRequest,
    ir: PauliIR,
    target: Option<Target>,
    enqueued: Instant,
    deadline: Option<Instant>,
}

/// The writer half of one connection, shared between its reader thread
/// and every worker holding one of its jobs.
struct Conn {
    id: u64,
    writer: Mutex<TcpStream>,
    /// Jobs accepted from this connection and not yet answered.
    pending: Mutex<u64>,
    idle: Condvar,
    /// Report lines (success, failure, or reject) written so far.
    served: AtomicU64,
    closed: AtomicBool,
}

impl Conn {
    /// Writes one response line. IO errors are ignored — a client that
    /// disappeared simply stops receiving reports; its jobs still complete
    /// (and still warm the shared cache).
    fn write_line(&self, json: &Json) {
        let mut line = json.to_compact();
        line.push('\n');
        let mut stream = relock(&self.writer);
        let _ = stream.write_all(line.as_bytes());
        let _ = stream.flush();
    }

    fn add_pending(&self) {
        *relock(&self.pending) += 1;
    }

    /// Counts one report line (success, failure, or reject) toward the
    /// `bye` tally.
    fn count_report(&self) {
        self.served.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one accepted job as answered, waking `wait_idle` at zero.
    fn complete(&self) {
        let mut pending = relock(&self.pending);
        *pending -= 1;
        if *pending == 0 {
            self.idle.notify_all();
        }
    }

    /// Blocks until every accepted job of this connection is answered.
    fn wait_idle(&self) {
        let mut pending = relock(&self.pending);
        while *pending > 0 {
            pending = self
                .idle
                .wait(pending)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Closes the socket (both halves), once.
    fn close(&self) {
        if !self.closed.swap(true, Ordering::SeqCst) {
            let _ = relock(&self.writer).shutdown(Shutdown::Both);
        }
    }
}

/// Why [`Inner::push`] refused a job.
enum PushError {
    Full,
    Draining,
}

struct Inner {
    batch: BatchEngine,
    config: ServeConfig,
    addr: SocketAddr,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    draining: AtomicBool,
    conns: Mutex<Vec<Arc<Conn>>>,
    connections: AtomicU64,
    requests: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    deadline_misses: AtomicU64,
}

impl Inner {
    fn stats(&self) -> ServeStats {
        ServeStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
        }
    }

    fn queued(&self) -> usize {
        relock(&self.queue).len()
    }

    /// Enqueues a job; on refusal the (boxed, to keep the `Err` small)
    /// job is handed back so the caller can answer it.
    fn push(&self, job: Box<Job>) -> Result<(), (Box<Job>, PushError)> {
        let mut queue = relock(&self.queue);
        // Checked under the queue lock so a drain begun concurrently can
        // never strand a job the workers already stopped watching for.
        if self.draining.load(Ordering::SeqCst) {
            return Err((job, PushError::Draining));
        }
        if queue.len() >= self.config.queue_depth {
            return Err((job, PushError::Full));
        }
        queue.push_back(*job);
        self.queue_cv.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once draining and empty — the
    /// worker's signal to exit with every accepted job answered.
    fn pop(&self) -> Option<Job> {
        let mut queue = relock(&self.queue);
        loop {
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            if self.draining.load(Ordering::SeqCst) {
                return None;
            }
            queue = self
                .queue_cv
                .wait(queue)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Starts the graceful drain: no new connections or jobs, all queued
    /// work still runs to completion.
    fn begin_drain(&self) {
        {
            let _queue = relock(&self.queue);
            self.draining.store(true, Ordering::SeqCst);
        }
        self.queue_cv.notify_all();
        // Unblock the accept loop: it re-checks `draining` per connection,
        // so one throwaway local connect is enough to let it exit.
        let _ = TcpStream::connect(self.addr);
    }

    /// The `stats` response line.
    fn stats_json(&self) -> Json {
        let s = self.stats();
        Json::obj([
            ("type", Json::str("stats")),
            (
                "serve",
                Json::obj([
                    ("connections", Json::U64(s.connections)),
                    ("requests", Json::U64(s.requests)),
                    ("completed", Json::U64(s.completed)),
                    ("rejected", Json::U64(s.rejected)),
                    ("deadline_misses", Json::U64(s.deadline_misses)),
                    ("queued", Json::U64(self.queued() as u64)),
                ]),
            ),
            (
                "cache",
                proto::cache_json(&self.batch.engine().cache_stats()),
            ),
        ])
    }

    /// Answers one compile request with a service-side rejection.
    fn reject(&self, conn: &Conn, req: &CompileRequest, kind: &str, message: &str) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        self.batch.engine().telemetry().mark("serve.reject", &[]);
        conn.write_line(&proto::reject_json(
            req.id,
            &req.display_name(),
            kind,
            message,
        ));
        conn.count_report();
    }

    /// Validates and enqueues one compile request; every exit path writes
    /// exactly one report line (now, or later from a worker).
    fn submit(&self, conn: &Arc<Conn>, req: CompileRequest) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.batch.engine().telemetry().mark("serve.request", &[]);
        let ir = match parse_program(&req.ir) {
            Ok(ir) => ir,
            Err(e) => {
                self.reject(conn, &req, "bad_request", &format!("ir parse error: {e}"));
                return;
            }
        };
        let target = match &req.backend {
            None => None,
            Some(spec) => match Target::parse_spec(spec, ir.num_qubits()) {
                Ok(t) => Some(t),
                Err(msg) => {
                    self.reject(conn, &req, "bad_request", &msg);
                    return;
                }
            },
        };
        let deadline = req
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.config.default_deadline)
            .map(|d| Instant::now() + d);
        conn.add_pending();
        let job = Job {
            conn: Arc::clone(conn),
            req,
            ir,
            target,
            enqueued: Instant::now(),
            deadline,
        };
        if let Err((job, kind)) = self.push(Box::new(job)) {
            let (tag, message) = match kind {
                PushError::Full => (
                    "overloaded",
                    format!(
                        "work queue is full ({} jobs); retry later",
                        self.config.queue_depth
                    ),
                ),
                PushError::Draining => ("draining", "server is shutting down".to_string()),
            };
            self.reject(&job.conn, &job.req, tag, &message);
            // The pending slot claimed above is answered by the reject.
            job.conn.complete();
        }
    }

    /// One worker: pull → deadline check → compile → stream the report.
    fn worker(&self) {
        let telemetry = self.batch.engine().telemetry().clone();
        while let Some(job) = self.pop() {
            let queue_wait = job.enqueued.elapsed();
            let span = telemetry.span_with(
                "request",
                vec![
                    ("id", job.req.id.into()),
                    ("conn", job.conn.id.into()),
                    (
                        "queue_wait_us",
                        u64::try_from(queue_wait.as_micros())
                            .unwrap_or(u64::MAX)
                            .into(),
                    ),
                ],
            );
            let line = if job.deadline.is_some_and(|d| Instant::now() > d) {
                self.deadline_misses.fetch_add(1, Ordering::Relaxed);
                telemetry.mark("serve.deadline_miss", &[]);
                proto::reject_json(
                    job.req.id,
                    &job.req.display_name(),
                    "deadline_exceeded",
                    "deadline expired before a worker picked the job up",
                )
            } else {
                let t0 = Instant::now();
                let outcome = self.batch.engine().compile_caught(
                    &job.ir,
                    job.target.as_ref(),
                    job.req.scheduler,
                );
                let wall = t0.elapsed();
                let artifact = match (&outcome, job.req.artifact) {
                    (Ok(o), true) => {
                        let entry = CacheEntry {
                            compiled: Arc::clone(&o.compiled),
                            report: o.report.clone(),
                        };
                        Some(proto::hex_encode(&persist::encode_entry(&entry)))
                    }
                    _ => None,
                };
                self.completed.fetch_add(1, Ordering::Relaxed);
                proto::report_json(
                    job.req.id,
                    proto::job_json(&job.req.display_name(), &outcome, wall, queue_wait),
                    artifact,
                )
            };
            job.conn.write_line(&line);
            job.conn.count_report();
            job.conn.complete();
            let wall = span.finish();
            telemetry.record_duration("serve.request_ns", wall);
            telemetry.record_duration("serve.queue_wait_ns", queue_wait);
        }
    }

    /// One connection's reader loop: parse lines, dispatch requests,
    /// answer control messages inline, and on EOF wait for this
    /// connection's in-flight jobs before saying goodbye.
    fn handle_conn(self: &Arc<Inner>, conn: Arc<Conn>, stream: TcpStream) {
        let telemetry = self.batch.engine().telemetry().clone();
        let span = telemetry.span_with("conn", vec![("conn", conn.id.into())]);
        let mut reader = BufReader::new(stream);
        loop {
            match read_line(&mut reader, self.config.max_line_bytes) {
                Line::Eof => break,
                Line::TooLong => {
                    conn.write_line(&proto::error_json(
                        "request_too_large",
                        &format!("request line exceeds {} bytes", self.config.max_line_bytes),
                    ));
                    break;
                }
                Line::BadUtf8 => {
                    conn.write_line(&proto::error_json(
                        "bad_request",
                        "request line is not valid UTF-8",
                    ));
                    continue;
                }
                Line::Text(line) => {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    match Request::from_line(line) {
                        Err(message) => {
                            conn.write_line(&proto::error_json("bad_request", &message));
                        }
                        Ok(Request::Ping) => {
                            conn.write_line(&Json::obj([("type", Json::str("pong"))]));
                        }
                        Ok(Request::Stats) => conn.write_line(&self.stats_json()),
                        Ok(Request::Shutdown) => {
                            conn.write_line(&Json::obj([
                                ("type", Json::str("shutdown_ack")),
                                ("pending", Json::U64(self.queued() as u64)),
                            ]));
                            self.begin_drain();
                        }
                        Ok(Request::Compile(req)) => self.submit(&conn, req),
                    }
                }
            }
        }
        // Half-close or disconnect: every accepted job still gets its
        // report (the writer half outlives the reader), then `bye` closes
        // the stream so a well-behaved client can count its reports.
        conn.wait_idle();
        conn.write_line(&Json::obj([
            ("type", Json::str("bye")),
            ("served", Json::U64(conn.served.load(Ordering::Relaxed))),
        ]));
        conn.close();
        drop(span);
    }
}

/// One request line, bounded.
enum Line {
    Text(String),
    Eof,
    TooLong,
    BadUtf8,
}

/// Reads one `\n`-terminated line of at most `max` bytes. The limit is
/// enforced *during* the read (`Take`), so an adversarial client cannot
/// make the server buffer an unbounded line.
fn read_line(reader: &mut BufReader<TcpStream>, max: usize) -> Line {
    let mut buf = Vec::new();
    let mut limited = reader.by_ref().take(max as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => Line::Eof,
        Ok(_) if buf.len() > max => Line::TooLong,
        Ok(_) => {
            if buf.last() == Some(&b'\n') {
                buf.pop();
            }
            match String::from_utf8(buf) {
                Ok(s) => Line::Text(s),
                Err(_) => Line::BadUtf8,
            }
        }
        Err(_) => Line::Eof,
    }
}

/// A running compile service bound to a TCP address.
///
/// `bind` then [`Server::run`]; `run` blocks until a drain completes (a
/// `shutdown` request on any connection, or [`ServerHandle::shutdown`]
/// from another thread) and returns the final [`ServeStats`].
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Binds the service (use port 0 for an ephemeral port, then
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Any [`TcpListener::bind`] failure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        batch: BatchEngine,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            inner: Arc::new(Inner {
                batch,
                config,
                addr,
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                draining: AtomicBool::new(false),
                conns: Mutex::new(Vec::new()),
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                deadline_misses: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// A handle for controlling and observing the server from another
    /// thread while [`Server::run`] blocks.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Serves until drained: accepts connections, streams reports, and on
    /// shutdown compiles every accepted job before returning the final
    /// counters.
    pub fn run(self) -> ServeStats {
        let inner = self.inner;
        let workers: Vec<_> = (0..inner.batch.threads())
            .map(|_| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || inner.worker())
            })
            .collect();

        let mut conn_threads = Vec::new();
        for stream in self.listener.incoming() {
            if inner.draining.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let Ok(writer) = stream.try_clone() else {
                continue;
            };
            let id = inner.connections.fetch_add(1, Ordering::Relaxed) + 1;
            let conn = Arc::new(Conn {
                id,
                writer: Mutex::new(writer),
                pending: Mutex::new(0),
                idle: Condvar::new(),
                served: AtomicU64::new(0),
                closed: AtomicBool::new(false),
            });
            relock(&inner.conns).push(Arc::clone(&conn));
            let inner = Arc::clone(&inner);
            conn_threads.push(thread::spawn(move || inner.handle_conn(conn, stream)));
        }
        drop(self.listener);

        // Drain: workers exit once the queue is empty, which means every
        // accepted job's report has been written.
        for w in workers {
            let _ = w.join();
        }
        // Readers may still be blocked on clients that never hang up;
        // closing the sockets gives them EOF and lets them finish their
        // own goodbye path.
        for conn in relock(&inner.conns).iter() {
            conn.close();
        }
        for t in conn_threads {
            let _ = t.join();
        }
        inner.stats()
    }
}

/// Controls a running [`Server`] from another thread.
#[derive(Clone)]
pub struct ServerHandle {
    inner: Arc<Inner>,
}

impl ServerHandle {
    /// Begins the graceful drain (idempotent).
    pub fn shutdown(&self) {
        self.inner.begin_drain();
    }

    /// Current service counters.
    pub fn stats(&self) -> ServeStats {
        self.inner.stats()
    }

    /// Jobs currently waiting for a worker.
    pub fn queued(&self) -> usize {
        self.inner.queued()
    }
}

/// A minimal blocking client for the wire protocol — what `phc submit`
/// and the integration tests use.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Any [`TcpStream::connect`] failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Any socket write failure.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        self.writer.write_all(req.to_line().as_bytes())?;
        self.writer.flush()
    }

    /// Sends one raw line (appends the newline).
    ///
    /// # Errors
    ///
    /// Any socket write failure.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one response line (`None` on EOF), trimmed.
    ///
    /// # Errors
    ///
    /// Any socket read failure.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        Ok(Some(line.trim_end().to_string()))
    }

    /// Receives and parses one response (`None` on EOF).
    ///
    /// # Errors
    ///
    /// Socket read failures, or a response line that is not valid JSON
    /// (mapped to [`std::io::ErrorKind::InvalidData`]).
    pub fn recv(&mut self) -> std::io::Result<Option<Json>> {
        match self.recv_line()? {
            None => Ok(None),
            Some(line) => Json::parse(&line)
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Half-closes the write side: the server sees EOF, finishes this
    /// connection's in-flight jobs, sends `bye`, and closes. Remaining
    /// responses stay readable via [`Client::recv`].
    ///
    /// # Errors
    ///
    /// Any socket shutdown failure.
    pub fn finish(&mut self) -> std::io::Result<()> {
        self.writer.shutdown(Shutdown::Write)
    }
}
