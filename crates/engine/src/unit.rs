//! The unit of work a pipeline transforms: one program on its way from
//! Pauli IR to a synthesized circuit.

use pauli::PauliString;
use paulihedral::ir::PauliIR;
use paulihedral::schedule::Layer;
use paulihedral::{Compiled, Scheduler};
use qcircuit::{Circuit, CircuitStats};

/// Mutable state threaded through a [`crate::Pipeline`].
///
/// A freshly created unit holds only the IR; the scheduling pass fills in
/// `layers`, the synthesis pass produces `circuit`/`emitted` (and the
/// layouts on the SC target), and clean-up passes rewrite `circuit` in
/// place.
#[derive(Clone, Debug)]
pub struct CompileUnit {
    /// The input program.
    pub ir: PauliIR,
    /// Scheduled layers (present after a scheduling pass).
    pub layers: Option<Vec<Layer>>,
    /// The concrete scheduler the scheduling pass ran (`Auto` resolved).
    pub scheduler_used: Option<Scheduler>,
    /// The synthesized circuit (present after a synthesis pass).
    pub circuit: Option<Circuit>,
    /// The `(string, θ)` sequence in emission order.
    pub emitted: Vec<(PauliString, f64)>,
    /// Initial logical→physical layout (SC target only).
    pub initial_l2p: Option<Vec<usize>>,
    /// Final logical→physical layout (SC target only).
    pub final_l2p: Option<Vec<usize>>,
}

impl CompileUnit {
    /// Wraps an IR as an unprocessed unit.
    pub fn new(ir: PauliIR) -> CompileUnit {
        CompileUnit {
            ir,
            layers: None,
            scheduler_used: None,
            circuit: None,
            emitted: Vec::new(),
            initial_l2p: None,
            final_l2p: None,
        }
    }

    /// Metrics of the current circuit (all zeros before synthesis) —
    /// the before/after snapshots in [`crate::PassRecord`].
    pub fn stats(&self) -> CircuitStats {
        self.circuit
            .as_ref()
            .map(Circuit::stats)
            .unwrap_or_default()
    }

    /// Finalizes the unit into the core crate's [`Compiled`] artifact.
    ///
    /// # Panics
    ///
    /// Panics if no synthesis pass has produced a circuit — a
    /// misconfigured pipeline, which is a programming error rather than a
    /// bad-input condition.
    pub fn into_compiled(self) -> Compiled {
        let circuit = self
            .circuit
            .expect("pipeline finished without a synthesis pass producing a circuit");
        Compiled {
            circuit,
            emitted: self.emitted,
            initial_l2p: self.initial_l2p,
            final_l2p: self.final_l2p,
        }
    }
}
