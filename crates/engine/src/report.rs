//! Per-pass instrumentation: what each pass cost and what it changed.

use std::fmt;
use std::time::Duration;

use qcircuit::CircuitStats;

/// One pass's instrumentation: wall time plus circuit-metric snapshots
/// taken immediately before and after the pass ran.
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// Pass display name.
    pub name: String,
    /// Wall time of the pass.
    pub wall: Duration,
    /// Circuit metrics before the pass (all zeros before synthesis).
    pub before: CircuitStats,
    /// Circuit metrics after the pass.
    pub after: CircuitStats,
    /// Pass-specific one-liner (layer counts, cancellation totals, …).
    pub note: String,
}

fn delta(before: usize, after: usize) -> i64 {
    after as i64 - before as i64
}

impl PassRecord {
    /// Signed CNOT-count change (negative = the pass removed CNOTs).
    pub fn cnot_delta(&self) -> i64 {
        delta(self.before.cnot, self.after.cnot)
    }

    /// Signed single-qubit-gate-count change.
    pub fn single_delta(&self) -> i64 {
        delta(self.before.single, self.after.single)
    }

    /// Signed depth change.
    pub fn depth_delta(&self) -> i64 {
        delta(self.before.depth, self.after.depth)
    }
}

/// The full instrumentation of one compilation: per-pass records, end-to-end
/// wall time, and how the cache treated the request.
#[derive(Clone, Debug, Default)]
pub struct CompileReport {
    /// One record per executed pass, in pipeline order. For a cache hit
    /// these are the records of the original (miss) compilation.
    pub passes: Vec<PassRecord>,
    /// End-to-end wall time of this request (lookup time only on a hit).
    pub total: Duration,
    /// Whether the result was served from the compilation cache (memory
    /// tier, disk tier, or coalesced onto another worker's compile).
    pub cache_hit: bool,
    /// The content-addressed cache key of (IR, pipeline, target). `0` when
    /// the engine runs `without_cache()` — fingerprinting is skipped
    /// entirely so benchmark flows don't pay for hashing they never use.
    pub key: u64,
}

impl CompileReport {
    /// Final circuit metrics (the `after` snapshot of the last pass).
    pub fn final_stats(&self) -> CircuitStats {
        self.passes.last().map(|p| p.after).unwrap_or_default()
    }

    /// Renders the per-pass table shown by `phc` and the examples.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>9} {:>9} {:>9} {:>7}  {}\n",
            "pass", "wall(ms)", "ΔCNOT", "Δsingle", "Δdepth", "note"
        ));
        for p in &self.passes {
            out.push_str(&format!(
                "{:<12} {:>9.3} {:>+9} {:>+9} {:>+7}  {}\n",
                p.name,
                p.wall.as_secs_f64() * 1e3,
                p.cnot_delta(),
                p.single_delta(),
                p.depth_delta(),
                p.note
            ));
        }
        let s = self.final_stats();
        out.push_str(&format!(
            "total {:.3} ms{} -> {} CNOT, {} single, depth {} [key {:016x}]\n",
            self.total.as_secs_f64() * 1e3,
            if self.cache_hit { " (cache hit)" } else { "" },
            s.cnot,
            s.single,
            s.depth,
            self.key
        ));
        out
    }
}

impl fmt::Display for CompileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CompileReport {
        let before = CircuitStats::default();
        let after = CircuitStats {
            cnot: 6,
            single: 11,
            swap: 0,
            total: 17,
            depth: 10,
        };
        CompileReport {
            passes: vec![
                PassRecord {
                    name: "schedule".into(),
                    wall: Duration::from_micros(1500),
                    before,
                    after: before,
                    note: "do -> 2 layers".into(),
                },
                PassRecord {
                    name: "synthesis".into(),
                    wall: Duration::from_micros(250),
                    before,
                    after,
                    note: "3 strings emitted".into(),
                },
            ],
            total: Duration::from_micros(2000),
            cache_hit: false,
            key: 0xdead_beef_0123_4567,
        }
    }

    // Golden rendering: any change to the table layout must be deliberate
    // (phc --report and the examples print this verbatim).
    #[test]
    fn table_renders_the_golden_layout() {
        let expected = "\
pass          wall(ms)     ΔCNOT   Δsingle  Δdepth  note
schedule         1.500        +0        +0      +0  do -> 2 layers
synthesis        0.250        +6       +11     +10  3 strings emitted
total 2.000 ms -> 6 CNOT, 11 single, depth 10 [key deadbeef01234567]
";
        assert_eq!(sample_report().table(), expected);
    }

    #[test]
    fn table_marks_cache_hits_on_the_total_line() {
        let mut report = sample_report();
        report.cache_hit = true;
        assert!(report.table().contains("total 2.000 ms (cache hit) ->"));
    }

    #[test]
    fn final_stats_of_an_empty_pass_list_is_all_zeros() {
        let report = CompileReport::default();
        assert_eq!(report.final_stats(), CircuitStats::default());
        // An empty report still renders: header plus the total line.
        let table = report.table();
        assert_eq!(table.lines().count(), 2);
        assert!(
            table.ends_with("total 0.000 ms -> 0 CNOT, 0 single, depth 0 [key 0000000000000000]\n")
        );
    }
}
