//! The Paulihedral compilation engine: an explicit pass manager, a
//! content-addressed compilation cache, and a multi-threaded batch driver.
//!
//! The core crate exposes the one-shot [`paulihedral::compile`]; this crate
//! wraps the same scheduling/synthesis machinery in the driver subsystem a
//! serving deployment needs:
//!
//! 1. **Pass manager** ([`pass`], [`pipeline`]): compilation is a
//!    [`Pipeline`] of [`Pass`]es over a [`CompileUnit`] (Pauli IR → layers
//!    → circuit). Each pass is individually timed and its circuit-metric
//!    deltas recorded into a [`CompileReport`] — the §7 "adaptive pass
//!    management" sketch made concrete.
//! 2. **Compilation cache** ([`cache`]): results are keyed by a canonical
//!    FNV-1a fingerprint of (IR, pipeline configuration, target), so
//!    repeated Trotter steps and re-compiled suite benchmarks are served
//!    from memory. The memory tier is a bounded LRU ([`CacheConfig`]), an
//!    optional disk tier ([`persist`]) survives process restarts, and
//!    concurrent misses on one key are coalesced into a single compile.
//!    Hit/miss/eviction/byte counters surface in [`CacheStats`].
//! 3. **Batch driver** ([`batch`]): [`BatchEngine::compile_all`] spreads a
//!    `Vec` of jobs across a `std::thread` worker pool (no external
//!    runtime), preserving job order and sharing one cache.
//! 4. **Compile service** ([`serve`], [`proto`]): a TCP front-end over the
//!    batch engine speaking newline-delimited JSON — bounded work queue
//!    with backpressure, per-request deadlines, panic isolation, graceful
//!    drain, and reports streamed back as each job finishes. `phc serve` /
//!    `phc submit` let multiple processes share one `--cache-dir`.
//!    [`client::Client`] is the resilient side of the wire: connect/read
//!    timeouts, bounded reconnects with jittered backoff, and idempotent
//!    re-submission of unanswered jobs.
//! 5. **Fault injection** ([`fault`]): a deterministic, seeded harness
//!    that injects failures through the real I/O seams — disk-tier
//!    reads/writes (errors, torn writes, bit-flips), worker compiles
//!    (panics, delays), and connection writes (drops, truncation,
//!    stalls). Off by default and zero-cost when off; the chaos suite
//!    and `phc --fault-plan` turn it on. The disk tier degrades to
//!    memory-only after repeated I/O errors and heals on re-probe
//!    ([`CacheStats::disk_disabled`]); the server's watchdog turns stuck
//!    compiles into typed `watchdog_timeout` answers.
//! 6. **Telemetry** ([`ph_telemetry`], attached via
//!    [`Engine::with_telemetry`] / [`BatchEngine::with_telemetry`]): spans
//!    for every batch, job, request, and pass; cache events mirroring the
//!    [`CacheStats`] counters; and latency histograms — exportable as a
//!    JSONL stream or a Chrome/Perfetto trace. The default sink is a
//!    no-op, so uninstrumented compiles pay effectively nothing.
//!
//! ```
//! use ph_engine::{BatchEngine, CompileJob, Pipeline, Target};
//! use paulihedral::parse::parse_program;
//!
//! let ir = parse_program("{(ZZY, 0.5), 1.0}; {(ZZI, 0.3), 1.0};")?;
//! let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant);
//! let results = engine.compile_all(vec![
//!     CompileJob::named("a", ir.clone()),
//!     CompileJob::named("b", ir), // identical → served from cache
//! ]);
//! assert!(results[1].outcome.as_ref().unwrap().report.cache_hit);
//! assert_eq!(engine.engine().cache_stats().hits, 1);
//! # Ok::<(), paulihedral::parse::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod client;
pub mod engine;
pub mod fault;
pub mod pass;
pub mod persist;
pub mod pipeline;
pub mod proto;
pub mod report;
pub mod serve;
pub mod unit;

/// The workspace's one JSON writer and parser (escaping, value rendering,
/// and recursive-descent reading for the wire protocol), shared by the
/// `phc` batch report, the compile service, and the telemetry exporters.
/// Re-exported from [`ph_telemetry::json`] so the engine's consumers need
/// no extra dependency edge.
pub mod json {
    pub use ph_telemetry::json::*;
}

pub use batch::{BatchEngine, BatchResult, CompileJob};
pub use cache::{CacheConfig, CacheOutcome, CacheStats, CompileCache};
pub use client::{Client, ClientConfig, ClientError, ClientStats, Connection};
pub use engine::{Engine, EngineOutput};
pub use fault::{Fault, FaultCounters, FaultPlan};
pub use pass::{FusionPass, Pass, PassContext, PeepholePass, SchedulePass, SynthesisPass, Target};
pub use ph_telemetry::{Collector, MetricsSnapshot, Telemetry};
pub use pipeline::{Pipeline, PipelineBuilder};
pub use proto::{CompileRequest, Request};
pub use report::{CompileReport, PassRecord};
pub use serve::{ServeConfig, ServeStats, Server, ServerHandle};
pub use unit::CompileUnit;
