//! Binary serialization of cache entries for the persistent disk tier.
//!
//! A deliberately small, versioned, self-contained codec (the build
//! environment has no serde): little-endian fixed-width integers,
//! length-prefixed strings, and a magic header. Decoding is total — every
//! malformed input returns [`DecodeError`] instead of panicking, because
//! the cache treats corrupt or truncated files as misses.
//!
//! Layout (version 1):
//!
//! ```text
//! "PHCE" u16(version)
//! circuit:  u64(n) u64(gate_count) gate*
//! gate:     u8(tag) u64(qubits…) [f64(theta)]
//! emitted:  u64(count) { pauli f64(theta) }*
//! pauli:    u64(n) u64(words) x_words z_words
//! layouts:  option(vec<u64>) ×2
//! report:   u64(passes) { str(name) u64(wall_ns) stats stats str(note) }*
//!           u64(total_ns) u64(key)
//! stats:    u64 ×5 (cnot single swap total depth)
//! footer:   u64(fnv1a of every preceding byte)
//! ```
//!
//! The trailing checksum means arbitrary bit rot is detected even when it
//! lands in a field any value would satisfy (a rotation angle, a pass
//! duration): a flipped byte can never silently resurface as a "valid"
//! cache hit with wrong contents.

use std::sync::Arc;

use pauli::PauliString;
use paulihedral::Compiled;
use qcircuit::{Circuit, CircuitStats, Gate};

use crate::cache::CacheEntry;
use crate::report::{CompileReport, PassRecord};

const MAGIC: &[u8; 4] = b"PHCE";
const VERSION: u16 = 1;

/// Why a persisted entry could not be decoded. The cache only cares that
/// it failed (corrupt file ⇒ miss); the variants exist for diagnostics
/// and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure did.
    Truncated,
    /// Missing or foreign magic bytes.
    BadMagic,
    /// A format version this build does not read.
    BadVersion,
    /// A structurally invalid value (unknown gate tag, out-of-range qubit,
    /// malformed Pauli bit planes, trailing garbage…).
    Invalid(&'static str),
    /// The payload does not match its trailing checksum (bit rot).
    BadChecksum,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated cache entry"),
            DecodeError::BadMagic => write!(f, "not a cache entry (bad magic)"),
            DecodeError::BadVersion => write!(f, "unsupported cache entry version"),
            DecodeError::Invalid(what) => write!(f, "invalid cache entry: {what}"),
            DecodeError::BadChecksum => write!(f, "cache entry checksum mismatch"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------- writing

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn gate(&mut self, g: &Gate) {
        match *g {
            Gate::H(q) => {
                self.u8(0);
                self.usize(q);
            }
            Gate::X(q) => {
                self.u8(1);
                self.usize(q);
            }
            Gate::S(q) => {
                self.u8(2);
                self.usize(q);
            }
            Gate::Sdg(q) => {
                self.u8(3);
                self.usize(q);
            }
            Gate::Rz(q, t) => {
                self.u8(4);
                self.usize(q);
                self.f64(t);
            }
            Gate::Rx(q, t) => {
                self.u8(5);
                self.usize(q);
                self.f64(t);
            }
            Gate::Ry(q, t) => {
                self.u8(6);
                self.usize(q);
                self.f64(t);
            }
            Gate::Cx(a, b) => {
                self.u8(7);
                self.usize(a);
                self.usize(b);
            }
            Gate::Swap(a, b) => {
                self.u8(8);
                self.usize(a);
                self.usize(b);
            }
        }
    }

    fn pauli(&mut self, p: &PauliString) {
        self.usize(p.num_qubits());
        self.usize(p.x_words().len());
        for &w in p.x_words() {
            self.u64(w);
        }
        for &w in p.z_words() {
            self.u64(w);
        }
    }

    fn layout(&mut self, l2p: &Option<Vec<usize>>) {
        match l2p {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.usize(v.len());
                for &q in v {
                    self.usize(q);
                }
            }
        }
    }

    fn stats(&mut self, s: &CircuitStats) {
        self.usize(s.cnot);
        self.usize(s.single);
        self.usize(s.swap);
        self.usize(s.total);
        self.usize(s.depth);
    }
}

/// Encodes one cache entry into the versioned on-disk format.
pub fn encode_entry(entry: &CacheEntry) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(MAGIC);
    w.u16(VERSION);

    let c = &entry.compiled;
    w.usize(c.circuit.num_qubits());
    w.usize(c.circuit.len());
    for g in c.circuit.gates() {
        w.gate(g);
    }
    w.usize(c.emitted.len());
    for (p, theta) in &c.emitted {
        w.pauli(p);
        w.f64(*theta);
    }
    w.layout(&c.initial_l2p);
    w.layout(&c.final_l2p);

    let r = &entry.report;
    w.usize(r.passes.len());
    for p in &r.passes {
        w.str(&p.name);
        w.u64(p.wall.as_nanos().min(u128::from(u64::MAX)) as u64);
        w.stats(&p.before);
        w.stats(&p.after);
        w.str(&p.note);
    }
    w.u64(r.total.as_nanos().min(u128::from(u64::MAX)) as u64);
    w.u64(r.key);
    let sum = checksum(&w.buf);
    w.u64(sum);
    w.buf
}

/// FNV-1a over a byte slice, shared by the encoder and the verifier.
fn checksum(bytes: &[u8]) -> u64 {
    let mut fnv = crate::cache::Fingerprint::new();
    fnv.write_bytes(bytes);
    fnv.finish()
}

// ---------------------------------------------------------------- reading

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` field that must fit in `usize`. On 64-bit targets this never
    /// fails; on 32-bit targets a corrupt or adversarial value errors
    /// instead of silently truncating to the low 32 bits.
    fn usize(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::Invalid("value exceeds usize"))
    }

    /// A length/count field. Bounded by what the remaining bytes could
    /// possibly encode (`min_elem_bytes` per element), so a corrupt length
    /// cannot trigger a huge allocation.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let v = self.u64()?;
        let cap = self.remaining() / min_elem_bytes.max(1);
        if v > cap as u64 {
            return Err(DecodeError::Truncated);
        }
        Ok(v as usize)
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let len = self.len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid("non-UTF-8 string"))
    }

    fn gate(&mut self, n: usize) -> Result<Gate, DecodeError> {
        let tag = self.u8()?;
        // Compare in the u64 domain: `v as usize` first would wrap on
        // 32-bit targets and could pass the range check after truncation.
        let q = |v: u64| -> Result<usize, DecodeError> {
            if v < n as u64 {
                Ok(v as usize)
            } else {
                Err(DecodeError::Invalid("gate qubit out of range"))
            }
        };
        let gate = match tag {
            0 => Gate::H(q(self.u64()?)?),
            1 => Gate::X(q(self.u64()?)?),
            2 => Gate::S(q(self.u64()?)?),
            3 => Gate::Sdg(q(self.u64()?)?),
            4 => Gate::Rz(q(self.u64()?)?, self.f64()?),
            5 => Gate::Rx(q(self.u64()?)?, self.f64()?),
            6 => Gate::Ry(q(self.u64()?)?, self.f64()?),
            7 => Gate::Cx(q(self.u64()?)?, q(self.u64()?)?),
            8 => Gate::Swap(q(self.u64()?)?, q(self.u64()?)?),
            _ => return Err(DecodeError::Invalid("unknown gate tag")),
        };
        Ok(gate)
    }

    fn pauli(&mut self) -> Result<PauliString, DecodeError> {
        let n = self.usize()?;
        let words = self.len(8)?;
        let mut x = Vec::with_capacity(words);
        for _ in 0..words {
            x.push(self.u64()?);
        }
        let mut z = Vec::with_capacity(words);
        for _ in 0..words {
            z.push(self.u64()?);
        }
        PauliString::from_bit_planes(n, x, z)
            .ok_or(DecodeError::Invalid("malformed pauli bit planes"))
    }

    fn layout(&mut self) -> Result<Option<Vec<usize>>, DecodeError> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let len = self.len(8)?;
                let mut v = Vec::with_capacity(len);
                for _ in 0..len {
                    v.push(self.usize()?);
                }
                Ok(Some(v))
            }
            _ => Err(DecodeError::Invalid("unknown layout tag")),
        }
    }

    fn stats(&mut self) -> Result<CircuitStats, DecodeError> {
        Ok(CircuitStats {
            cnot: self.usize()?,
            single: self.usize()?,
            swap: self.usize()?,
            total: self.usize()?,
            depth: self.usize()?,
        })
    }
}

/// Decodes one cache entry.
///
/// # Errors
///
/// Returns a [`DecodeError`] on any malformed input (the disk tier maps
/// every error to a cache miss).
pub fn decode_entry(bytes: &[u8]) -> Result<CacheEntry, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    if r.u16()? != VERSION {
        return Err(DecodeError::BadVersion);
    }
    // Verify the trailing checksum before trusting any field, then hide
    // the footer from the structural reader.
    if bytes.len() < 6 + 8 {
        return Err(DecodeError::Truncated);
    }
    let payload_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[payload_end..].try_into().unwrap());
    if checksum(&bytes[..payload_end]) != stored {
        return Err(DecodeError::BadChecksum);
    }
    r.buf = &bytes[..payload_end];

    let n = r.usize()?;
    let gate_count = r.len(9)?;
    let mut circuit = Circuit::new(n);
    for _ in 0..gate_count {
        circuit.push(r.gate(n)?);
    }

    let emitted_count = r.len(24)?;
    let mut emitted = Vec::with_capacity(emitted_count);
    for _ in 0..emitted_count {
        let p = r.pauli()?;
        let theta = r.f64()?;
        emitted.push((p, theta));
    }

    let initial_l2p = r.layout()?;
    let final_l2p = r.layout()?;

    let pass_count = r.len(8)?;
    let mut passes = Vec::with_capacity(pass_count);
    for _ in 0..pass_count {
        let name = r.str()?;
        let wall = std::time::Duration::from_nanos(r.u64()?);
        let before = r.stats()?;
        let after = r.stats()?;
        let note = r.str()?;
        passes.push(PassRecord {
            name,
            wall,
            before,
            after,
            note,
        });
    }
    let total = std::time::Duration::from_nanos(r.u64()?);
    let key = r.u64()?;
    if r.remaining() != 0 {
        return Err(DecodeError::Invalid("trailing bytes"));
    }

    Ok(CacheEntry {
        compiled: Arc::new(Compiled {
            circuit,
            emitted,
            initial_l2p,
            final_l2p,
        }),
        report: CompileReport {
            passes,
            total,
            cache_hit: false,
            key,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry() -> CacheEntry {
        let mut circuit = Circuit::new(3);
        circuit.push(Gate::H(0));
        circuit.push(Gate::Cx(0, 1));
        circuit.push(Gate::Rz(1, -0.75));
        circuit.push(Gate::Swap(1, 2));
        CacheEntry {
            compiled: Arc::new(Compiled {
                circuit,
                emitted: vec![
                    ("XYZ".parse().unwrap(), 0.5),
                    ("ZZI".parse().unwrap(), -1.25),
                ],
                initial_l2p: Some(vec![2, 0, 1]),
                final_l2p: Some(vec![0, 1, 2]),
            }),
            report: CompileReport {
                passes: vec![PassRecord {
                    name: "schedule".into(),
                    wall: std::time::Duration::from_micros(123),
                    before: CircuitStats::default(),
                    after: CircuitStats {
                        cnot: 1,
                        single: 2,
                        swap: 1,
                        total: 4,
                        depth: 4,
                    },
                    note: "do -> 2 layers".into(),
                }],
                total: std::time::Duration::from_micros(456),
                cache_hit: false,
                key: 0xDEAD_BEEF_CAFE_F00D,
            },
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let entry = sample_entry();
        let bytes = encode_entry(&entry);
        let back = decode_entry(&bytes).expect("well-formed entry decodes");
        assert_eq!(back.compiled.circuit, entry.compiled.circuit);
        assert_eq!(back.compiled.emitted, entry.compiled.emitted);
        assert_eq!(back.compiled.initial_l2p, entry.compiled.initial_l2p);
        assert_eq!(back.compiled.final_l2p, entry.compiled.final_l2p);
        assert_eq!(back.report.key, entry.report.key);
        assert_eq!(back.report.total, entry.report.total);
        assert_eq!(back.report.passes.len(), 1);
        assert_eq!(back.report.passes[0].name, "schedule");
        assert_eq!(back.report.passes[0].note, "do -> 2 layers");
        assert_eq!(back.report.passes[0].after, entry.report.passes[0].after);
        assert!(!back.report.cache_hit);
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let bytes = encode_entry(&sample_entry());
        for len in 0..bytes.len() {
            let err = decode_entry(&bytes[..len]).expect_err("prefix must not decode");
            // Any error is fine; the point is total, panic-free decoding.
            let _ = err.to_string();
        }
    }

    #[test]
    fn corruption_is_detected() {
        let good = encode_entry(&sample_entry());

        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert_eq!(decode_entry(&bad_magic).unwrap_err(), DecodeError::BadMagic);

        let mut bad_version = good.clone();
        bad_version[4] = 0xFF;
        assert_eq!(
            decode_entry(&bad_version).unwrap_err(),
            DecodeError::BadVersion
        );

        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_entry(&trailing).is_err());

        // The trailing checksum catches every single-byte flip — even in
        // fields any value would satisfy (float mantissa bits, durations).
        for i in 0..good.len() {
            let mut flipped = good.clone();
            flipped[i] ^= 0xA5;
            assert!(
                decode_entry(&flipped).is_err(),
                "flip at byte {i} decoded as valid"
            );
        }
    }

    #[test]
    fn out_of_range_length_fields_are_rejected() {
        // Empty circuit + one emitted pauli puts the pauli's qubit-count
        // field at a fixed offset: 6 (header) + 8 (circuit n) + 8
        // (gate count) + 8 (emitted count) = 30.
        let entry = CacheEntry {
            compiled: Arc::new(Compiled {
                circuit: Circuit::new(3),
                emitted: vec![("XYZ".parse().unwrap(), 0.5)],
                initial_l2p: None,
                final_l2p: None,
            }),
            report: CompileReport::default(),
        };
        let mut bytes = encode_entry(&entry);
        assert!(decode_entry(&bytes).is_ok());
        // Claim a u64::MAX-qubit pauli and re-stamp the footer so the
        // structural check (not the checksum) must reject it. On 32-bit
        // targets the checked usize conversion fires; on 64-bit the bit
        // planes no longer match the claimed width. Either way: an error,
        // never a silently truncated length.
        bytes[30..38].copy_from_slice(&u64::MAX.to_le_bytes());
        let end = bytes.len() - 8;
        let sum = checksum(&bytes[..end]).to_le_bytes();
        bytes[end..].copy_from_slice(&sum);
        assert!(matches!(decode_entry(&bytes), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn out_of_range_gate_qubits_are_rejected() {
        let mut entry = sample_entry();
        // Hand-corrupt: claim 1 qubit but keep 3-qubit gates.
        let bytes = encode_entry(&entry);
        let mut corrupted = bytes.clone();
        // n is the first u64 after the 6-byte header. Re-stamp the footer
        // so the structural qubit-range check (not the checksum) rejects it.
        corrupted[6..14].copy_from_slice(&1u64.to_le_bytes());
        let end = corrupted.len() - 8;
        let sum = checksum(&corrupted[..end]).to_le_bytes();
        corrupted[end..].copy_from_slice(&sum);
        assert!(matches!(
            decode_entry(&corrupted),
            Err(DecodeError::Invalid(_)) | Err(DecodeError::Truncated)
        ));
        // Sanity: the untouched encoding still decodes.
        entry.report.key = 1;
        assert!(decode_entry(&encode_entry(&entry)).is_ok());
    }
}
