//! Deterministic, seeded fault injection for the engine's three I/O seams.
//!
//! A [`FaultPlan`] describes *what* can fail and how often; a [`Fault`]
//! handle threads the plan through the disk cache tier
//! ([`crate::cache`]/[`crate::persist`]: injected `ErrorKind` failures,
//! short writes, bit-flips), the compile workers ([`crate::batch`] /
//! [`crate::engine`]: injected panics and configurable delays), and the
//! serve connections ([`crate::serve`]: dropped sockets, truncated
//! response lines, stalls). The chaos suite and the CI smoke step drive
//! the whole service through randomized plans and assert that every
//! accepted request still terminates with a report or a typed error.
//!
//! Design rules, mirroring [`ph_telemetry::Telemetry`]:
//!
//! * **Zero-cost off.** [`Fault::disabled`] (the default everywhere) is a
//!   `None`; every injection site is one `Option` check.
//! * **Deterministic.** Decisions come from splitmix64 streams seeded
//!   from [`FaultPlan::seed`], one independent stream per seam (disk /
//!   worker / connection), so a pinned seed replays the same fault
//!   sequence regardless of how the *other* seams are exercised.
//! * **Observable.** Every injected fault is counted
//!   ([`Fault::counters`]) so tests can assert the plan actually fired.

use std::io::ErrorKind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::cache::relock;

/// Probabilities and knobs of one fault-injection campaign.
///
/// All rates are probabilities in `[0, 1]`, drawn independently per
/// operation. The textual form accepted by [`FaultPlan::parse`] (and
/// `phc --fault-plan`) is a comma-separated `key=value` list:
///
/// ```text
/// seed=7,disk.read=0.2,disk.write=0.1,disk.flip=0.05,worker.panic=0.15,
/// worker.delay=0.3,worker.delay_ms=20,conn.drop=0.1,conn.truncate=0.05,
/// conn.stall=0.1,conn.stall_ms=50
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic decision streams.
    pub seed: u64,
    /// P(a disk-tier read fails with an injected I/O error).
    pub disk_read_error: f64,
    /// P(a disk-tier write fails with an injected I/O error).
    pub disk_write_error: f64,
    /// P(a disk-tier write persists only a truncated prefix — a torn
    /// write that still renames into place; the checksum catches it on
    /// the next read).
    pub disk_short_write: f64,
    /// P(one byte of a successful disk read is flipped in flight).
    pub disk_bit_flip: f64,
    /// P(a compile panics at the top of the worker path).
    pub worker_panic: f64,
    /// P(a compile is delayed by [`FaultPlan::worker_delay_ms`]).
    pub worker_delay: f64,
    /// Injected compile delay, milliseconds.
    pub worker_delay_ms: u64,
    /// P(a response write drops the connection instead).
    pub conn_drop: f64,
    /// P(a response line is truncated mid-write and the connection
    /// dropped).
    pub conn_truncate: f64,
    /// P(a response write stalls for [`FaultPlan::conn_stall_ms`] first).
    pub conn_stall: f64,
    /// Injected connection stall, milliseconds.
    pub conn_stall_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            disk_read_error: 0.0,
            disk_write_error: 0.0,
            disk_short_write: 0.0,
            disk_bit_flip: 0.0,
            worker_panic: 0.0,
            worker_delay: 0.0,
            worker_delay_ms: 20,
            conn_drop: 0.0,
            conn_truncate: 0.0,
            conn_stall: 0.0,
            conn_stall_ms: 50,
        }
    }
}

impl FaultPlan {
    /// Parses the comma-separated `key=value` spec of `phc --fault-plan`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys, unparseable
    /// values, or rates outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan entry `{part}` is not key=value"))?;
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("bad fault rate `{v}` for `{key}`"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("fault rate `{key}={v}` must be in [0, 1]"));
                }
                Ok(r)
            };
            let count = |v: &str| -> Result<u64, String> {
                v.parse().map_err(|_| format!("bad `{key}={v}`"))
            };
            match key {
                "seed" => plan.seed = count(value)?,
                "disk.read" => plan.disk_read_error = rate(value)?,
                "disk.write" => plan.disk_write_error = rate(value)?,
                "disk.short" => plan.disk_short_write = rate(value)?,
                "disk.flip" => plan.disk_bit_flip = rate(value)?,
                "worker.panic" => plan.worker_panic = rate(value)?,
                "worker.delay" => plan.worker_delay = rate(value)?,
                "worker.delay_ms" => plan.worker_delay_ms = count(value)?,
                "conn.drop" => plan.conn_drop = rate(value)?,
                "conn.truncate" => plan.conn_truncate = rate(value)?,
                "conn.stall" => plan.conn_stall = rate(value)?,
                "conn.stall_ms" => plan.conn_stall_ms = count(value)?,
                other => {
                    return Err(format!(
                        "unknown fault-plan key `{other}` (seed, disk.read, disk.write, \
                         disk.short, disk.flip, worker.panic, worker.delay, worker.delay_ms, \
                         conn.drop, conn.truncate, conn.stall, conn.stall_ms)"
                    ))
                }
            }
        }
        Ok(plan)
    }

    /// `true` when every fault rate is zero (the plan injects nothing).
    pub fn is_noop(&self) -> bool {
        [
            self.disk_read_error,
            self.disk_write_error,
            self.disk_short_write,
            self.disk_bit_flip,
            self.worker_panic,
            self.worker_delay,
            self.conn_drop,
            self.conn_truncate,
            self.conn_stall,
        ]
        .iter()
        .all(|&r| r == 0.0)
    }
}

/// What to do to one disk-tier read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskReadFault {
    /// Perform the read normally.
    None,
    /// Fail the read with this injected error kind.
    Error(ErrorKind),
    /// Perform the read, then flip one byte of the result.
    BitFlip,
}

/// What to do to one disk-tier write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskWriteFault {
    /// Perform the write normally.
    None,
    /// Fail the write with this injected error kind.
    Error(ErrorKind),
    /// Persist only a truncated prefix (torn write).
    Short,
}

/// What to do to one compile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFault {
    /// Compile normally.
    None,
    /// Panic at the top of the compile path (caught per job and reported
    /// as a `panicked` error value).
    Panic,
    /// Sleep this long before compiling.
    Delay(Duration),
}

/// What to do to one connection write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnFault {
    /// Write normally.
    None,
    /// Drop the connection without writing.
    Drop,
    /// Write half the line, then drop the connection.
    Truncate,
    /// Sleep this long, then write normally.
    Stall(Duration),
}

/// Counts of faults actually injected, per seam and kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Disk reads failed with an injected error.
    pub disk_read_errors: u64,
    /// Disk reads whose payload was bit-flipped.
    pub disk_bit_flips: u64,
    /// Disk writes failed with an injected error.
    pub disk_write_errors: u64,
    /// Disk writes torn to a truncated prefix.
    pub disk_short_writes: u64,
    /// Compiles made to panic.
    pub worker_panics: u64,
    /// Compiles delayed.
    pub worker_delays: u64,
    /// Connections dropped mid-response.
    pub conn_drops: u64,
    /// Response lines truncated.
    pub conn_truncates: u64,
    /// Response writes stalled.
    pub conn_stalls: u64,
}

/// One splitmix64 stream. Tiny, deterministic, and entirely local so the
/// fault layer shares no RNG state with anything else in the process.
#[derive(Debug)]
struct Stream(u64);

impl Stream {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` (53-bit mantissa).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn chance(&mut self, p: f64) -> bool {
        // The draw is unconditional so a plan's decision sequence is a
        // pure function of (seed, operation index), not of the rates.
        let roll = self.next_f64();
        p > 0.0 && roll < p
    }
}

#[derive(Debug)]
struct FaultInner {
    plan: FaultPlan,
    /// `false` pauses injection without discarding the handle — tests use
    /// this to let a degraded disk tier heal on its re-probe.
    active: AtomicBool,
    disk: Mutex<Stream>,
    worker: Mutex<Stream>,
    conn: Mutex<Stream>,
    counters: [AtomicU64; 9],
}

/// The injected error kinds, cycled deterministically; `NotFound` is
/// deliberately absent — it means "healthy miss" to the cache, never an
/// I/O failure.
const ERROR_KINDS: [ErrorKind; 4] = [
    ErrorKind::PermissionDenied,
    ErrorKind::TimedOut,
    ErrorKind::Interrupted,
    ErrorKind::OutOfMemory,
];

const C_DISK_READ_ERR: usize = 0;
const C_DISK_FLIP: usize = 1;
const C_DISK_WRITE_ERR: usize = 2;
const C_DISK_SHORT: usize = 3;
const C_PANIC: usize = 4;
const C_DELAY: usize = 5;
const C_DROP: usize = 6;
const C_TRUNCATE: usize = 7;
const C_STALL: usize = 8;

/// A cheap, cloneable fault-injection handle. [`Fault::disabled`] (the
/// `Default`) injects nothing and costs one `Option` check per site;
/// [`Fault::seeded`] activates a [`FaultPlan`].
#[derive(Clone, Debug, Default)]
pub struct Fault(Option<Arc<FaultInner>>);

impl Fault {
    /// The no-op handle every builder starts with.
    pub fn disabled() -> Fault {
        Fault(None)
    }

    /// A handle injecting per `plan`, deterministically from
    /// [`FaultPlan::seed`].
    pub fn seeded(plan: FaultPlan) -> Fault {
        // Independent per-seam streams: decisions at one seam never
        // perturb the sequence at another.
        let stream = |salt: u64| Mutex::new(Stream(plan.seed ^ salt));
        Fault(Some(Arc::new(FaultInner {
            active: AtomicBool::new(true),
            disk: stream(0xd15c_d15c_d15c_d15c),
            worker: stream(0x3033_7c0d_e5a1_7b0b),
            conn: stream(0xc022_c022_c022_c022),
            counters: Default::default(),
            plan,
        })))
    }

    /// `true` when a plan is attached (even if currently paused).
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Pauses injection (the handle survives; decision streams freeze).
    pub fn pause(&self) {
        if let Some(inner) = &self.0 {
            inner.active.store(false, Ordering::SeqCst);
        }
    }

    /// Resumes a paused handle.
    pub fn resume(&self) {
        if let Some(inner) = &self.0 {
            inner.active.store(true, Ordering::SeqCst);
        }
    }

    /// Counts of faults injected so far.
    pub fn counters(&self) -> FaultCounters {
        let Some(inner) = &self.0 else {
            return FaultCounters::default();
        };
        let c = |i: usize| inner.counters[i].load(Ordering::Relaxed);
        FaultCounters {
            disk_read_errors: c(C_DISK_READ_ERR),
            disk_bit_flips: c(C_DISK_FLIP),
            disk_write_errors: c(C_DISK_WRITE_ERR),
            disk_short_writes: c(C_DISK_SHORT),
            worker_panics: c(C_PANIC),
            worker_delays: c(C_DELAY),
            conn_drops: c(C_DROP),
            conn_truncates: c(C_TRUNCATE),
            conn_stalls: c(C_STALL),
        }
    }

    fn inner(&self) -> Option<&Arc<FaultInner>> {
        let inner = self.0.as_ref()?;
        inner.active.load(Ordering::SeqCst).then_some(inner)
    }

    fn count(inner: &FaultInner, which: usize) {
        inner.counters[which].fetch_add(1, Ordering::Relaxed);
    }

    fn error_kind(roll: u64) -> ErrorKind {
        ERROR_KINDS[(roll % ERROR_KINDS.len() as u64) as usize]
    }

    /// The decision for one disk-tier read.
    pub fn disk_read(&self) -> DiskReadFault {
        let Some(inner) = self.inner() else {
            return DiskReadFault::None;
        };
        let mut rng = relock(&inner.disk);
        if rng.chance(inner.plan.disk_read_error) {
            let kind = Self::error_kind(rng.next_u64());
            drop(rng);
            Self::count(inner, C_DISK_READ_ERR);
            return DiskReadFault::Error(kind);
        }
        if rng.chance(inner.plan.disk_bit_flip) {
            drop(rng);
            Self::count(inner, C_DISK_FLIP);
            return DiskReadFault::BitFlip;
        }
        DiskReadFault::None
    }

    /// The decision for one disk-tier write.
    pub fn disk_write(&self) -> DiskWriteFault {
        let Some(inner) = self.inner() else {
            return DiskWriteFault::None;
        };
        let mut rng = relock(&inner.disk);
        if rng.chance(inner.plan.disk_write_error) {
            let kind = Self::error_kind(rng.next_u64());
            drop(rng);
            Self::count(inner, C_DISK_WRITE_ERR);
            return DiskWriteFault::Error(kind);
        }
        if rng.chance(inner.plan.disk_short_write) {
            drop(rng);
            Self::count(inner, C_DISK_SHORT);
            return DiskWriteFault::Short;
        }
        DiskWriteFault::None
    }

    /// Flips one pseudo-randomly chosen byte of `bytes` (the
    /// [`DiskReadFault::BitFlip`] payload corruption).
    pub fn corrupt(&self, bytes: &mut [u8]) {
        let Some(inner) = self.inner() else {
            return;
        };
        if bytes.is_empty() {
            return;
        }
        let roll = relock(&inner.disk).next_u64();
        let i = (roll % bytes.len() as u64) as usize;
        bytes[i] ^= 0x40;
    }

    /// The decision for one compile.
    pub fn worker(&self) -> WorkerFault {
        let Some(inner) = self.inner() else {
            return WorkerFault::None;
        };
        let mut rng = relock(&inner.worker);
        if rng.chance(inner.plan.worker_panic) {
            drop(rng);
            Self::count(inner, C_PANIC);
            return WorkerFault::Panic;
        }
        if rng.chance(inner.plan.worker_delay) {
            drop(rng);
            Self::count(inner, C_DELAY);
            return WorkerFault::Delay(Duration::from_millis(inner.plan.worker_delay_ms));
        }
        WorkerFault::None
    }

    /// The decision for one connection write.
    pub fn conn_write(&self) -> ConnFault {
        let Some(inner) = self.inner() else {
            return ConnFault::None;
        };
        let mut rng = relock(&inner.conn);
        if rng.chance(inner.plan.conn_drop) {
            drop(rng);
            Self::count(inner, C_DROP);
            return ConnFault::Drop;
        }
        if rng.chance(inner.plan.conn_truncate) {
            drop(rng);
            Self::count(inner, C_TRUNCATE);
            return ConnFault::Truncate;
        }
        if rng.chance(inner.plan.conn_stall) {
            drop(rng);
            Self::count(inner, C_STALL);
            return ConnFault::Stall(Duration::from_millis(inner.plan.conn_stall_ms));
        }
        ConnFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_key() {
        let plan = FaultPlan::parse(
            "seed=7, disk.read=0.25,disk.write=0.5,disk.short=0.125,disk.flip=1,\
             worker.panic=0.1,worker.delay=0.2,worker.delay_ms=15,\
             conn.drop=0.3,conn.truncate=0.4,conn.stall=0.6,conn.stall_ms=99",
        )
        .unwrap();
        assert_eq!(
            plan,
            FaultPlan {
                seed: 7,
                disk_read_error: 0.25,
                disk_write_error: 0.5,
                disk_short_write: 0.125,
                disk_bit_flip: 1.0,
                worker_panic: 0.1,
                worker_delay: 0.2,
                worker_delay_ms: 15,
                conn_drop: 0.3,
                conn_truncate: 0.4,
                conn_stall: 0.6,
                conn_stall_ms: 99,
            }
        );
        assert!(!plan.is_noop());
        assert!(FaultPlan::parse("seed=1").unwrap().is_noop());
        assert!(FaultPlan::parse("").unwrap().is_noop());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        for (spec, needle) in [
            ("disk.read", "not key=value"),
            ("disk.read=1.5", "must be in [0, 1]"),
            ("disk.read=-0.1", "must be in [0, 1]"),
            ("disk.read=abc", "bad fault rate"),
            ("worker.delay_ms=abc", "bad `worker.delay_ms=abc`"),
            ("frobnicate=1", "unknown fault-plan key"),
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec:?} gave {err:?}");
        }
    }

    #[test]
    fn disabled_handle_never_injects() {
        let fault = Fault::disabled();
        assert!(!fault.is_enabled());
        for _ in 0..100 {
            assert_eq!(fault.disk_read(), DiskReadFault::None);
            assert_eq!(fault.disk_write(), DiskWriteFault::None);
            assert_eq!(fault.worker(), WorkerFault::None);
            assert_eq!(fault.conn_write(), ConnFault::None);
        }
        assert_eq!(fault.counters(), FaultCounters::default());
    }

    #[test]
    fn same_seed_replays_the_same_decisions() {
        let plan = FaultPlan {
            seed: 42,
            disk_read_error: 0.3,
            disk_bit_flip: 0.2,
            worker_panic: 0.25,
            conn_drop: 0.4,
            ..FaultPlan::default()
        };
        let a = Fault::seeded(plan.clone());
        let b = Fault::seeded(plan.clone());
        let run = |f: &Fault| -> Vec<String> {
            (0..200)
                .map(|i| match i % 3 {
                    0 => format!("{:?}", f.disk_read()),
                    1 => format!("{:?}", f.worker()),
                    _ => format!("{:?}", f.conn_write()),
                })
                .collect()
        };
        assert_eq!(run(&a), run(&b));
        let c = Fault::seeded(FaultPlan { seed: 43, ..plan });
        assert_ne!(run(&a), run(&c), "different seeds must diverge");
    }

    #[test]
    fn seams_draw_from_independent_streams() {
        let plan = FaultPlan {
            seed: 9,
            worker_panic: 0.5,
            ..FaultPlan::default()
        };
        // Interleaving disk decisions must not change the worker stream.
        let a = Fault::seeded(plan.clone());
        let plain: Vec<_> = (0..50).map(|_| a.worker()).collect();
        let b = Fault::seeded(plan);
        let interleaved: Vec<_> = (0..50)
            .map(|_| {
                let _ = b.disk_read();
                let _ = b.conn_write();
                b.worker()
            })
            .collect();
        assert_eq!(plain, interleaved);
    }

    #[test]
    fn rates_are_roughly_honored_and_counted() {
        let fault = Fault::seeded(FaultPlan {
            seed: 1,
            worker_panic: 0.25,
            ..FaultPlan::default()
        });
        let panics = (0..2000)
            .filter(|_| fault.worker() == WorkerFault::Panic)
            .count();
        assert!(
            (350..650).contains(&panics),
            "0.25 rate gave {panics}/2000 panics"
        );
        assert_eq!(fault.counters().worker_panics, panics as u64);
    }

    #[test]
    fn pause_and_resume_gate_injection() {
        let fault = Fault::seeded(FaultPlan {
            seed: 3,
            worker_panic: 1.0,
            ..FaultPlan::default()
        });
        assert_eq!(fault.worker(), WorkerFault::Panic);
        fault.pause();
        assert_eq!(fault.worker(), WorkerFault::None);
        assert!(fault.is_enabled(), "paused is still enabled");
        fault.resume();
        assert_eq!(fault.worker(), WorkerFault::Panic);
    }

    #[test]
    fn corrupt_flips_exactly_one_byte() {
        let fault = Fault::seeded(FaultPlan {
            seed: 5,
            ..FaultPlan::default()
        });
        let original = vec![0u8; 64];
        let mut copy = original.clone();
        fault.corrupt(&mut copy);
        let diffs = original.iter().zip(&copy).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
        let mut empty: Vec<u8> = Vec::new();
        fault.corrupt(&mut empty); // must not panic
    }
}
