//! Clients for the compile service: a thin blocking [`Connection`] and a
//! resilient [`Client`] built on top of it.
//!
//! [`Connection`] is the raw wire — one socket, send a line, receive a
//! line. The integration tests use it to poke the server's edges
//! (malformed lines, half-closes, abrupt disconnects).
//!
//! [`Client`] is what `phc submit` uses and what survives a flaky
//! network or a degraded server. It resolves faults at two levels:
//!
//! * **Transport faults** — connect failures, read timeouts, dropped or
//!   truncated connections, EOF with jobs still unanswered. The client
//!   reconnects and re-submits every unanswered job, sleeping between
//!   attempts with exponential backoff and decorrelated jitter (each
//!   sleep is drawn uniformly from `[base, 3 × previous]`, capped) so a
//!   thundering herd of retrying clients spreads out. Bounded by
//!   [`ClientConfig::max_retries`]; exhaustion is
//!   [`ClientError::Transport`].
//! * **Retryable job errors** — reports with `error_kind` in
//!   {`panicked`, `overloaded`, `watchdog_timeout`} are re-submitted
//!   (bounded per id by [`ClientConfig::job_retries`]) instead of being
//!   surfaced. Anything else (compiler rejections, `deadline_exceeded`,
//!   `draining`) is a real answer and is returned as-is.
//!
//! Re-submission is **idempotent by construction**: requests are keyed
//! by their client-chosen `id` (the answer map holds one slot per id,
//! so a duplicate report from a retry races harmlessly), and the
//! server's compiles are content-addressed through its single-flight
//! cache — re-submitting work that already succeeded is a cache hit,
//! not a recompute.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use ph_telemetry::json::Json;

use crate::proto::{CompileRequest, Request};

/// A minimal blocking connection speaking the wire protocol
/// ([`crate::proto`]) — one socket, no retries.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Any [`TcpStream::connect`] failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        Connection::from_stream(stream)
    }

    /// Connects with a connect timeout and an optional per-read timeout
    /// (`None` = block forever on reads).
    ///
    /// # Errors
    ///
    /// Address resolution failures, connect failures or timeout, or a
    /// failure to set the read timeout.
    pub fn connect_timeout(
        addr: SocketAddr,
        connect: Duration,
        read: Option<Duration>,
    ) -> std::io::Result<Connection> {
        let stream = TcpStream::connect_timeout(&addr, connect)?;
        stream.set_read_timeout(read)?;
        Connection::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Connection> {
        let writer = stream.try_clone()?;
        Ok(Connection {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Any socket write failure.
    pub fn send(&mut self, req: &Request) -> std::io::Result<()> {
        self.writer.write_all(req.to_line().as_bytes())?;
        self.writer.flush()
    }

    /// Sends one raw line (appends the newline).
    ///
    /// # Errors
    ///
    /// Any socket write failure.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Receives one response line (`None` on EOF), trimmed.
    ///
    /// # Errors
    ///
    /// Any socket read failure.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        Ok(Some(line.trim_end().to_string()))
    }

    /// Receives and parses one response (`None` on EOF).
    ///
    /// # Errors
    ///
    /// Socket read failures, or a response line that is not valid JSON
    /// (mapped to [`std::io::ErrorKind::InvalidData`]) — which is how a
    /// server-side truncated write surfaces on this end.
    pub fn recv(&mut self) -> std::io::Result<Option<Json>> {
        match self.recv_line()? {
            None => Ok(None),
            Some(line) => Json::parse(&line)
                .map(Some)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())),
        }
    }

    /// Half-closes the write side: the server sees EOF, finishes this
    /// connection's in-flight jobs, sends `bye`, and closes. Remaining
    /// responses stay readable via [`Connection::recv`].
    ///
    /// # Errors
    ///
    /// Any socket shutdown failure.
    pub fn finish(&mut self) -> std::io::Result<()> {
        self.writer.shutdown(Shutdown::Write)
    }
}

/// Tunables of the resilient [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// Per-read socket timeout; also the stall detector — a server that
    /// stops answering for this long counts as a transport fault and
    /// triggers a reconnect (`None` = wait forever).
    pub read_timeout: Option<Duration>,
    /// Transport-fault budget: how many times the client will reconnect
    /// and re-submit after a connect failure, read error, or premature
    /// EOF before giving up with [`ClientError::Transport`].
    pub max_retries: u32,
    /// Per-id re-submission budget for retryable job errors (`panicked`,
    /// `overloaded`, `watchdog_timeout`).
    pub job_retries: u32,
    /// Backoff floor (first sleep, and the minimum of every jittered
    /// draw).
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Jitter seed; same seed + same fault sequence = same sleeps, so
    /// chaos tests stay reproducible.
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
            max_retries: 5,
            job_retries: 2,
            backoff_base: Duration::from_millis(25),
            backoff_cap: Duration::from_secs(2),
            seed: 0,
        }
    }
}

/// What the client did to get the answers it returned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful connects (1 for a fault-free run).
    pub connects: u64,
    /// Transport faults survived (reconnect + re-submit rounds).
    pub retries: u64,
    /// Individual jobs re-submitted after a retryable error report.
    pub job_retries: u64,
}

/// Why the client gave up.
#[derive(Clone, Debug)]
pub enum ClientError {
    /// The transport-fault budget ran out.
    Transport {
        /// Faults absorbed before the one that exhausted the budget.
        attempts: u64,
        /// The last underlying failure, human-readable.
        last: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport { attempts, last } => write!(
                f,
                "transport failure after {attempts} retr{}: {last}",
                if *attempts == 1 { "y" } else { "ies" }
            ),
        }
    }
}

impl std::error::Error for ClientError {}

/// Job-error kinds worth re-submitting: transient server conditions, not
/// properties of the request itself.
const RETRYABLE_KINDS: [&str; 3] = ["panicked", "overloaded", "watchdog_timeout"];

/// A resilient compile-service client: bounded reconnects with jittered
/// backoff, idempotent re-submission of unanswered jobs, and bounded
/// re-submission of retryably-failed ones. See the module docs for the
/// fault model.
pub struct Client {
    addr: SocketAddr,
    config: ClientConfig,
    stats: ClientStats,
    rng: u64,
    budget: u32,
    prev_backoff: Duration,
}

impl Client {
    /// A client for the server at `addr` (resolved once, here).
    ///
    /// # Errors
    ///
    /// Address resolution failure (no connection is attempted yet).
    pub fn new(addr: impl ToSocketAddrs, config: ClientConfig) -> std::io::Result<Client> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let budget = config.max_retries;
        let prev_backoff = config.backoff_base;
        let rng = config.seed ^ 0x9e37_79b9_7f4a_7c15;
        Ok(Client {
            addr,
            config,
            stats: ClientStats::default(),
            rng,
            budget,
            prev_backoff,
        })
    }

    /// What happened so far (connects, retries).
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// splitmix64 — the same tiny deterministic generator the fault
    /// harness uses, so jitter is reproducible from the seed.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Absorbs one transport fault: spend budget, sleep with decorrelated
    /// jitter, or give up.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] once the budget is spent.
    fn transport_fault(&mut self, last: &str) -> Result<(), ClientError> {
        if self.budget == 0 {
            return Err(ClientError::Transport {
                attempts: self.stats.retries,
                last: last.to_string(),
            });
        }
        self.budget -= 1;
        self.stats.retries += 1;
        // Decorrelated jitter: uniform in [base, 3 × previous], capped.
        let base = self.config.backoff_base.as_millis() as u64;
        let hi = (self.prev_backoff.as_millis() as u64)
            .saturating_mul(3)
            .max(base + 1);
        let sleep_ms = base + self.next_u64() % (hi - base);
        let sleep = Duration::from_millis(sleep_ms).min(self.config.backoff_cap);
        self.prev_backoff = sleep;
        std::thread::sleep(sleep);
        Ok(())
    }

    fn connect(&mut self) -> Result<Connection, ClientError> {
        loop {
            match Connection::connect_timeout(
                self.addr,
                self.config.connect_timeout,
                self.config.read_timeout,
            ) {
                Ok(conn) => {
                    self.stats.connects += 1;
                    return Ok(conn);
                }
                Err(e) => self.transport_fault(&format!("connect: {e}"))?,
            }
        }
    }

    /// Submits every request and blocks until each has exactly one final
    /// report, surviving transport faults and retryable job errors along
    /// the way. Returns the reports keyed by request id (so iteration
    /// order is id order, deterministic regardless of completion order).
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] when the retry budget runs out with
    /// jobs still unanswered. Job failures are *not* errors — they come
    /// back as `ok: false` reports in the map.
    pub fn submit_all(
        &mut self,
        reqs: Vec<CompileRequest>,
    ) -> Result<BTreeMap<u64, Json>, ClientError> {
        let mut pending: BTreeMap<u64, CompileRequest> =
            reqs.into_iter().map(|r| (r.id, r)).collect();
        let mut job_budget: BTreeMap<u64, u32> = pending
            .keys()
            .map(|&id| (id, self.config.job_retries))
            .collect();
        let mut results = BTreeMap::new();

        'reconnect: while !pending.is_empty() {
            let mut conn = self.connect()?;
            for req in pending.values() {
                if let Err(e) = conn.send(&Request::Compile(req.clone())) {
                    self.transport_fault(&format!("submit: {e}"))?;
                    continue 'reconnect;
                }
            }
            while !pending.is_empty() {
                let json = match conn.recv() {
                    Ok(Some(json)) => json,
                    Ok(None) => {
                        self.transport_fault("connection closed with jobs unanswered")?;
                        continue 'reconnect;
                    }
                    Err(e) => {
                        self.transport_fault(&format!("read: {e}"))?;
                        continue 'reconnect;
                    }
                };
                if json.get("type").and_then(Json::as_str) != Some("report") {
                    // pong/stats/bye/error lines are not answers to a
                    // compile id; skip them.
                    continue;
                }
                let Some(id) = json.get("id").and_then(Json::as_u64) else {
                    continue;
                };
                if !pending.contains_key(&id) {
                    // A duplicate answer from a superseded submission of
                    // an id that already resolved; idempotent, drop it.
                    continue;
                }
                let ok = json.get("ok").and_then(Json::as_bool).unwrap_or(false);
                let kind = json
                    .get("error_kind")
                    .and_then(Json::as_str)
                    .unwrap_or_default();
                if !ok && RETRYABLE_KINDS.contains(&kind) {
                    let budget = job_budget.entry(id).or_default();
                    if *budget > 0 {
                        *budget -= 1;
                        self.stats.job_retries += 1;
                        let req = pending[&id].clone();
                        if let Err(e) = conn.send(&Request::Compile(req)) {
                            self.transport_fault(&format!("re-submit: {e}"))?;
                            continue 'reconnect;
                        }
                        continue;
                    }
                }
                results.insert(id, json);
                pending.remove(&id);
            }
        }
        Ok(results)
    }

    /// Sends one control request (`ping`/`stats`/`health`/`shutdown`) on
    /// a fresh connection and returns its answer, with the same transport
    /// retry discipline as [`Client::submit_all`]. For `shutdown`, EOF
    /// instead of an ack still counts as delivered (`Ok(None)`) — the
    /// server may win the race between acking and closing.
    ///
    /// # Errors
    ///
    /// [`ClientError::Transport`] when the retry budget runs out.
    pub fn control(&mut self, req: &Request) -> Result<Option<Json>, ClientError> {
        loop {
            let mut conn = self.connect()?;
            if let Err(e) = conn.send(req) {
                self.transport_fault(&format!("send: {e}"))?;
                continue;
            }
            match conn.recv() {
                Ok(answer) => return Ok(answer),
                Err(e) => {
                    if matches!(req, Request::Shutdown) {
                        return Ok(None);
                    }
                    self.transport_fault(&format!("read: {e}"))?;
                }
            }
        }
    }
}
