//! The multi-threaded batch driver.
//!
//! A plain `std::thread` worker pool (the build environment has no
//! registry access, so no rayon): jobs are pulled off a shared atomic
//! counter and results land in their original slots, so output order is
//! deterministic regardless of interleaving. Workers share the engine's
//! compilation cache, so duplicate jobs inside one batch are compiled
//! once.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use paulihedral::ir::PauliIR;
use paulihedral::{CompileError, Scheduler};

use crate::engine::{Engine, EngineOutput};
use crate::pass::Target;
use crate::pipeline::Pipeline;

/// One unit of batch work.
#[derive(Clone, Debug)]
pub struct CompileJob {
    /// Label carried into the result (file name, benchmark name, …).
    pub name: String,
    /// The program.
    pub ir: PauliIR,
    /// Target override; `None` uses the engine's default target.
    pub target: Option<Target>,
    /// Scheduler override; `None` uses the pipeline's configured pass.
    pub scheduler: Option<Scheduler>,
}

impl CompileJob {
    /// A job against the engine's default target and pipeline scheduler.
    pub fn named(name: impl Into<String>, ir: PauliIR) -> CompileJob {
        CompileJob {
            name: name.into(),
            ir,
            target: None,
            scheduler: None,
        }
    }

    /// Sets a per-job target.
    pub fn on_target(mut self, target: Target) -> CompileJob {
        self.target = Some(target);
        self
    }

    /// Sets a per-job scheduler.
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> CompileJob {
        self.scheduler = Some(scheduler);
        self
    }
}

/// One job's outcome, in the batch's original order.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// The job's label.
    pub name: String,
    /// The compiled artifact and report, or why the job was rejected.
    pub outcome: Result<EngineOutput, CompileError>,
    /// Wall time this job spent inside a worker (queue wait excluded).
    pub wall: Duration,
}

/// A worker pool over an [`Engine`].
#[derive(Debug)]
pub struct BatchEngine {
    engine: Engine,
    threads: usize,
}

impl BatchEngine {
    /// A batch engine sized to the machine
    /// (`std::thread::available_parallelism`, min 1).
    pub fn new(pipeline: Pipeline, target: Target) -> BatchEngine {
        let threads = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        BatchEngine {
            engine: Engine::new(pipeline, target),
            threads,
        }
    }

    /// Overrides the worker count (minimum 1).
    pub fn with_threads(mut self, threads: usize) -> BatchEngine {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the shared cache with an empty one using `config`
    /// (entry/byte budgets, optional persistent directory). Builder-style;
    /// call before the first batch.
    pub fn with_cache_config(mut self, config: crate::cache::CacheConfig) -> BatchEngine {
        self.engine = self.engine.with_cache_config(config);
        self
    }

    /// Disables the shared compilation cache (every job compiles).
    pub fn without_cache(mut self) -> BatchEngine {
        self.engine = self.engine.without_cache();
        self
    }

    /// The underlying engine (cache statistics, one-off compiles).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compiles every job, fanning out across the worker pool. Results
    /// come back in job order; per-job failures are values, not batch
    /// failures.
    pub fn compile_all(&self, jobs: Vec<CompileJob>) -> Vec<BatchResult> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.threads.min(jobs.len());
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<BatchResult>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let t0 = Instant::now();
                    let outcome =
                        self.engine
                            .compile_with(&job.ir, job.target.as_ref(), job.scheduler);
                    *slots[i].lock().expect("batch slot poisoned") = Some(BatchResult {
                        name: job.name.clone(),
                        outcome,
                        wall: t0.elapsed(),
                    });
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("batch slot poisoned")
                    .expect("every job slot filled before scope exit")
            })
            .collect()
    }
}
