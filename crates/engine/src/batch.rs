//! The multi-threaded batch driver.
//!
//! A plain `std::thread` worker pool (the build environment has no
//! registry access, so no rayon): jobs are pulled off a shared atomic
//! counter and results land in their original slots, so output order is
//! deterministic regardless of interleaving. Workers share the engine's
//! compilation cache, so duplicate jobs inside one batch are compiled
//! once.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::{Duration, Instant};

use paulihedral::ir::PauliIR;
use paulihedral::{CompileError, Scheduler};
use ph_telemetry::Telemetry;

use crate::engine::{Engine, EngineOutput};
use crate::fault::Fault;
use crate::pass::Target;
use crate::pipeline::Pipeline;

/// One unit of batch work.
#[derive(Clone, Debug)]
pub struct CompileJob {
    /// Label carried into the result (file name, benchmark name, …).
    pub name: String,
    /// The program.
    pub ir: PauliIR,
    /// Target override; `None` uses the engine's default target.
    pub target: Option<Target>,
    /// Scheduler override; `None` uses the pipeline's configured pass.
    pub scheduler: Option<Scheduler>,
}

impl CompileJob {
    /// A job against the engine's default target and pipeline scheduler.
    pub fn named(name: impl Into<String>, ir: PauliIR) -> CompileJob {
        CompileJob {
            name: name.into(),
            ir,
            target: None,
            scheduler: None,
        }
    }

    /// Sets a per-job target.
    pub fn on_target(mut self, target: Target) -> CompileJob {
        self.target = Some(target);
        self
    }

    /// Sets a per-job scheduler.
    pub fn with_scheduler(mut self, scheduler: Scheduler) -> CompileJob {
        self.scheduler = Some(scheduler);
        self
    }
}

/// One job's outcome, in the batch's original order.
#[derive(Clone, Debug)]
pub struct BatchResult {
    /// The job's label.
    pub name: String,
    /// The compiled artifact and report, or why the job was rejected.
    pub outcome: Result<EngineOutput, CompileError>,
    /// Wall time this job spent inside a worker (queue wait excluded).
    pub wall: Duration,
    /// How long the job sat in the queue before a worker picked it up
    /// (time from batch start to job start).
    pub queue_wait: Duration,
}

/// A worker pool over an [`Engine`].
#[derive(Debug)]
pub struct BatchEngine {
    engine: Engine,
    threads: usize,
    intra_threads: usize,
}

impl BatchEngine {
    /// A batch engine sized to the machine
    /// (`std::thread::available_parallelism`, min 1).
    pub fn new(pipeline: Pipeline, target: Target) -> BatchEngine {
        let threads = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        BatchEngine {
            engine: Engine::new(pipeline, target),
            threads,
            intra_threads: 1,
        }
    }

    /// Overrides the worker count (minimum 1).
    pub fn with_threads(mut self, threads: usize) -> BatchEngine {
        self.threads = threads.max(1);
        self
    }

    /// Sets the intra-compile worker budget each job may use for its
    /// synthesis pass (`0` = one per CPU, default `1` = sequential).
    /// At batch time the knob is clamped against the job-level pool so a
    /// wide batch on a small machine never oversubscribes: each job gets
    /// at most `max(1, cpus / batch_workers)` synthesis workers.
    pub fn with_intra_threads(mut self, intra_threads: usize) -> BatchEngine {
        self.intra_threads = intra_threads;
        self
    }

    /// Replaces the shared cache with an empty one using `config`
    /// (entry/byte budgets, optional persistent directory). Builder-style;
    /// call before the first batch.
    pub fn with_cache_config(mut self, config: crate::cache::CacheConfig) -> BatchEngine {
        self.engine = self.engine.with_cache_config(config);
        self
    }

    /// Disables the shared compilation cache (every job compiles).
    pub fn without_cache(mut self) -> BatchEngine {
        self.engine = self.engine.without_cache();
        self
    }

    /// Attaches a fault-injection handle to the underlying engine (see
    /// [`Engine::with_fault`]): worker jobs consult the worker seam, the
    /// shared cache's disk tier consults the disk seam.
    pub fn with_fault(mut self, fault: Fault) -> BatchEngine {
        self.engine = self.engine.with_fault(fault);
        self
    }

    /// Attaches a telemetry handle to the underlying engine (see
    /// [`Engine::with_telemetry`]); the batch driver additionally emits
    /// one `batch` span per [`BatchEngine::compile_all`], one
    /// `job:<name>` span per job (queue wait in its args), and the
    /// `batch.job_wall_ns` / `batch.queue_wait_ns` histograms.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> BatchEngine {
        self.engine = self.engine.with_telemetry(telemetry);
        self
    }

    /// The underlying engine (cache statistics, one-off compiles).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured per-job intra-compile worker knob (pre-clamp; see
    /// [`BatchEngine::with_intra_threads`]).
    pub fn intra_threads(&self) -> usize {
        self.intra_threads
    }

    /// Workers [`BatchEngine::compile_all`] will actually spawn for a
    /// batch of `jobs` jobs: never more threads than jobs.
    pub fn worker_count(&self, jobs: usize) -> usize {
        self.threads.min(jobs)
    }

    /// The intra-compile worker budget each job in a batch of `jobs` jobs
    /// actually gets: the configured knob (`0` resolved to the CPU count)
    /// clamped to the machine share left over by the job-level pool.
    pub fn intra_budget(&self, jobs: usize) -> usize {
        let cpus = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        let requested = match self.intra_threads {
            0 => cpus,
            t => t,
        };
        requested.min((cpus / self.worker_count(jobs).max(1)).max(1))
    }

    /// Compiles every job, fanning out across the worker pool. Results
    /// come back in job order; per-job failures are values, not batch
    /// failures — including panics, which are caught per job
    /// ([`CompileError::Panicked`]) so one bad job can neither kill its
    /// worker thread nor abort the rest of the batch.
    pub fn compile_all(&self, jobs: Vec<CompileJob>) -> Vec<BatchResult> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let workers = self.worker_count(jobs.len());
        let intra_budget = self.intra_budget(jobs.len());
        let telemetry = self.engine.telemetry();
        let batch_span = telemetry.span_with(
            "batch",
            vec![
                ("jobs", jobs.len().into()),
                ("workers", workers.into()),
                ("intra_budget", intra_budget.into()),
            ],
        );
        let batch_start = Instant::now();
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<BatchResult>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    // Time spent queued: from batch start until a worker
                    // picked the job up (invisible to the in-worker wall).
                    let queue_wait = batch_start.elapsed();
                    let job_span = telemetry.span_with(
                        format!("job:{}", job.name),
                        vec![(
                            "queue_wait_us",
                            u64::try_from(queue_wait.as_micros())
                                .unwrap_or(u64::MAX)
                                .into(),
                        )],
                    );
                    let outcome = self.engine.compile_caught_budgeted(
                        &job.ir,
                        job.target.as_ref(),
                        job.scheduler,
                        intra_budget,
                    );
                    let wall = job_span.finish();
                    telemetry.record_duration("batch.job_wall_ns", wall);
                    telemetry.record_duration("batch.queue_wait_ns", queue_wait);
                    *slots[i].lock().expect("batch slot poisoned") = Some(BatchResult {
                        name: job.name.clone(),
                        outcome,
                        wall,
                        queue_wait,
                    });
                });
            }
        });
        drop(batch_span);

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("batch slot poisoned")
                    .expect("every job slot filled before scope exit")
            })
            .collect()
    }
}
