//! `phc` — the Paulihedral command-line compiler, driven by the
//! `ph_engine` pass manager.
//!
//! Single-program mode (prints cost metrics, optionally OpenQASM 2.0):
//!
//! ```text
//! phc INPUT.pauli [--backend ft|manhattan|melbourne|linear:N|grid:RxC]
//!                 [--scheduler auto|gco|do] [--intra-threads N]
//!                 [--qasm OUT.qasm] [--report]
//!                 [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]
//! ```
//!
//! Any `INPUT` may be a `workload:NAME` pseudo-input instead of a file:
//! the 31 Table 1 benchmark names (`workload:UCCSD-16`) or the scale
//! lattices (`workload:Heisen-1000`, `workload:Ising-32x32`) generate
//! their program in-process. `--intra-threads N` lets one compile's
//! synthesis pass fan out over N workers (`0` = one per CPU); the output
//! circuit is bit-identical for every setting.
//!
//! Batch mode (compiles many programs across a worker pool and emits a
//! JSON report with per-pass instrumentation, cache counters, and latency
//! histogram percentiles):
//!
//! ```text
//! phc batch INPUT1.pauli INPUT2.pauli … [--backend …] [--scheduler …]
//!           [--threads N] [--intra-threads N] [--json REPORT.json]
//!           [--cache-dir DIR] [--cache-entries N] [--cache-bytes N]
//!           [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]
//! ```
//!
//! `--cache-dir` enables the persistent cache tier: a second run over the
//! same inputs and configuration is served from `DIR` instead of
//! recompiling. `--cache-entries`/`--cache-bytes` bound the in-memory tier
//! (LRU eviction; see the `cache` object of the JSON report for counters).
//!
//! Service mode (a TCP compile server speaking newline-delimited JSON,
//! and a client that streams reports back as they finish):
//!
//! ```text
//! phc serve [--listen 127.0.0.1:7878] [--backend …] [--scheduler …]
//!           [--threads N] [--queue N] [--deadline-ms N] [--watchdog-ms N]
//!           [--cache-dir DIR] [--cache-entries N] [--cache-bytes N]
//!           [--fault-plan SPEC]
//!           [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]
//! phc submit ADDR INPUT1.pauli … [--backend …] [--scheduler …]
//!            [--deadline-ms N] [--artifact] [--retries N]
//!            [--connect-timeout-ms N] [--read-timeout-ms N]
//!            [--retry-seed N] [--stats] [--health] [--shutdown]
//! ```
//!
//! `phc submit` rides the resilient [`ph_engine::client::Client`]:
//! transport faults (connect failures, dropped or truncated connections,
//! read timeouts) are absorbed by up to `--retries N` reconnect +
//! re-submit rounds with jittered exponential backoff, and retryable job
//! errors (`panicked`, `overloaded`, `watchdog_timeout`) are re-submitted
//! per job. Its exit code distinguishes what ultimately went wrong:
//!
//! | exit | meaning |
//! |------|---------|
//! | 0    | every job compiled (or was served from cache) |
//! | 1    | usage or local error (bad flags, unreadable input) |
//! | 2    | server answered, but a job failed for a non-transient reason (compiler rejection, `bad_request`) |
//! | 3    | capacity/deadline: `overloaded`, `draining`, `deadline_exceeded`, or `watchdog_timeout` survived the retry budget |
//! | 4    | transport: the retry budget ran out without an answer |
//!
//! When several apply, the highest code wins (transport trumps capacity
//! trumps job errors). The final stdout line is a `{"type": "client"}`
//! object with the retry counters, so scripts can assert on resilience
//! behavior.
//!
//! `--watchdog-ms N` arms the server's stuck-job watchdog; `--fault-plan
//! SPEC` (e.g. `seed=7,disk.read=0.2,worker.panic=0.1,conn.drop=0.1`)
//! enables deterministic fault injection for chaos testing — see
//! [`ph_engine::fault::FaultPlan::parse`] for the key vocabulary. The
//! plan also works on `phc batch` and single-program runs (the disk and
//! worker seams; the connection seam only matters under `serve`).
//!
//! `phc serve` prints one `{"type": "listening", "addr": …}` line to
//! stdout (machine-parseable; with `--listen …:0` this is how scripts
//! learn the ephemeral port) and blocks until a client sends `shutdown`.
//! Two `phc` processes pointed at one `--cache-dir` share compiled
//! artifacts through the persistent cache tier, so a `phc submit` against
//! a warm server reports `cache_hit: true` without recompiling. See the
//! README "Compile service" section for the wire protocol.
//!
//! `--trace-out` writes a Chrome `trace_event` file — open it at
//! `chrome://tracing` or <https://ui.perfetto.dev> to see per-worker job
//! spans with the pass spans nested inside them and cache events on the
//! timeline. `--metrics-out` writes the same stream as JSONL (one JSON
//! object per line: every span/instant event, then final
//! counter/gauge/histogram values).
//!
//! Example input file:
//!
//! ```text
//! {(IIXY, 0.5), (IIYX, -0.5), theta1};
//! {(ZZII, 0.134), 0.5};
//! ```
//!
//! (This binary lives in the engine crate rather than `crates/core`
//! because it drives the engine, and the engine depends on the core
//! library — the reverse dependency would be a package cycle.)

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use paulihedral::parse::parse_program;
use paulihedral::Scheduler;
use ph_engine::json::Json;
use ph_engine::proto::{self, CompileRequest, Request};
use ph_engine::{
    BatchEngine, BatchResult, CacheConfig, Client, ClientConfig, ClientError, Collector,
    CompileJob, Engine, Fault, FaultPlan, MetricsSnapshot, Pipeline, ServeConfig, Server, Target,
    Telemetry,
};
use ph_telemetry::export;
use qcircuit::qasm::{to_qasm, QasmOptions};

/// The single flag table both the parser and the positional filter derive
/// from: every `--flag` the CLI understands, and whether it consumes the
/// next argument as its value. Adding a flag here is the *only* step —
/// `positionals()` and unknown-flag rejection follow automatically.
const FLAGS: &[(&str, bool)] = &[
    ("--backend", true),
    ("--scheduler", true),
    ("--qasm", true),
    ("--threads", true),
    ("--intra-threads", true),
    ("--json", true),
    ("--cache-dir", true),
    ("--cache-entries", true),
    ("--cache-bytes", true),
    ("--trace-out", true),
    ("--metrics-out", true),
    ("--listen", true),
    ("--queue", true),
    ("--deadline-ms", true),
    ("--watchdog-ms", true),
    ("--fault-plan", true),
    ("--retries", true),
    ("--connect-timeout-ms", true),
    ("--read-timeout-ms", true),
    ("--retry-seed", true),
    ("--report", false),
    ("--artifact", false),
    ("--stats", false),
    ("--health", false),
    ("--shutdown", false),
];

fn flag_takes_value(flag: &str) -> Option<bool> {
    FLAGS.iter().find(|(f, _)| *f == flag).map(|&(_, v)| v)
}

/// Splits `args` into positionals, validating every flag against the
/// table: unknown `--flags` and value flags missing their value are hard
/// errors, never silently treated as input files.
fn positionals(args: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match flag_takes_value(a) {
            Some(true) => {
                if iter.next().is_none() {
                    return Err(format!("{a} requires a value"));
                }
            }
            Some(false) => {}
            None if a.starts_with("--") => {
                return Err(format!("unknown flag `{a}` (see phc --help in the docs)"));
            }
            None => out.push(a.clone()),
        }
    }
    Ok(out)
}

fn value_of(args: &[String], flag: &str) -> Option<String> {
    debug_assert_eq!(flag_takes_value(flag), Some(true), "{flag} not in table");
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_present(args: &[String], flag: &str) -> bool {
    debug_assert_eq!(flag_takes_value(flag), Some(false), "{flag} not in table");
    args.iter().any(|a| a == flag)
}

fn parse_scheduler(args: &[String]) -> Result<Scheduler, String> {
    match value_of(args, "--scheduler") {
        None => Ok(Scheduler::Auto),
        Some(spec) => proto::parse_scheduler_spec(&spec),
    }
}

/// `--intra-threads`: workers one compile's synthesis pass may use
/// (`0` = one per CPU). `None` when the flag is absent (sequential).
fn parse_intra_threads(args: &[String]) -> Result<Option<usize>, String> {
    match value_of(args, "--intra-threads") {
        None => Ok(None),
        Some(t) => t
            .parse()
            .map(Some)
            .map_err(|_| format!("bad --intra-threads `{t}`")),
    }
}

/// Resolves one positional input: `workload:NAME` generates a named
/// program (the 31 Table 1 benchmarks plus the `scale` lattices, e.g.
/// `workload:Heisen-1000`); anything else is read as a `.pauli` file.
fn load_input(spec: &str) -> Result<paulihedral::ir::PauliIR, String> {
    if let Some(name) = spec.strip_prefix("workload:") {
        if let Some(ir) = workloads::scale::named_scale_ir(name) {
            return Ok(ir);
        }
        if let Some(b) = workloads::suite::try_generate(name) {
            return Ok(b.ir);
        }
        return Err(format!(
            "unknown workload `{name}` (Table 1 names, or Ising-N/Heisen-N/Ising-RxC/Heisen-RxC)"
        ));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
    parse_program(&text).map_err(|e| format!("{spec}: {e}"))
}

/// The latency histograms of the metrics snapshot, percentiles in
/// milliseconds (names keep their `_ns` suffix; values here are rescaled).
fn metrics_json(snapshot: &MetricsSnapshot) -> Json {
    let ms = |ns: u64| Json::f64_rounded(ns as f64 / 1e6, 3);
    Json::obj([
        (
            "counters",
            Json::obj(
                snapshot
                    .counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::U64(v))),
            ),
        ),
        (
            "histograms_ms",
            Json::obj(snapshot.histograms.iter().map(|(k, h)| {
                (
                    k.trim_end_matches("_ns").to_string(),
                    Json::obj([
                        ("count", Json::U64(h.count)),
                        ("min", ms(h.min)),
                        ("max", ms(h.max)),
                        ("mean", ms(h.mean)),
                        ("p50", ms(h.p50)),
                        ("p90", ms(h.p90)),
                        ("p99", ms(h.p99)),
                    ]),
                )
            })),
        ),
    ])
}

fn json_report(
    results: &[BatchResult],
    engine: &Engine,
    threads: usize,
    snapshot: &MetricsSnapshot,
) -> String {
    let report = Json::obj([
        ("threads", Json::U64(threads as u64)),
        (
            "jobs",
            Json::Arr(results.iter().map(proto::batch_result_json).collect()),
        ),
        ("cache", proto::cache_json(&engine.cache_stats())),
        ("metrics", metrics_json(snapshot)),
    ]);
    let mut out = report.to_pretty();
    out.push('\n');
    out
}

/// `--fault-plan SPEC`: a seeded fault-injection plan, or the zero-cost
/// disabled handle when absent.
fn parse_fault(args: &[String]) -> Result<Fault, String> {
    match value_of(args, "--fault-plan") {
        None => Ok(Fault::disabled()),
        Some(spec) => Ok(Fault::seeded(FaultPlan::parse(&spec)?)),
    }
}

/// Builds the batch cache configuration from `--cache-dir`,
/// `--cache-entries`, and `--cache-bytes`.
fn parse_cache_config(args: &[String]) -> Result<CacheConfig, String> {
    let mut config = CacheConfig::default();
    if let Some(dir) = value_of(args, "--cache-dir") {
        config.disk_dir = Some(dir.into());
    }
    if let Some(n) = value_of(args, "--cache-entries") {
        config.max_entries = Some(
            n.parse()
                .map_err(|_| format!("bad --cache-entries `{n}`"))?,
        );
    }
    if let Some(n) = value_of(args, "--cache-bytes") {
        config.max_bytes = Some(n.parse().map_err(|_| format!("bad --cache-bytes `{n}`"))?);
    }
    Ok(config)
}

/// Writes the `--trace-out` / `--metrics-out` exports, if requested.
fn write_exports(args: &[String], collector: &Collector) -> Result<(), String> {
    if let Some(path) = value_of(args, "--trace-out") {
        std::fs::write(&path, export::chrome_trace(collector))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = value_of(args, "--metrics-out") {
        std::fs::write(&path, export::jsonl(collector))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn run_batch(args: &[String]) -> Result<(), String> {
    let files = positionals(args)?;
    if files.is_empty() {
        return Err(
            "usage: phc batch INPUT1.pauli INPUT2.pauli … [--backend B] [--scheduler S] \
             [--threads N] [--intra-threads N] [--json OUT.json] [--cache-dir DIR] \
             [--cache-entries N] [--cache-bytes N] [--trace-out TRACE.json] \
             [--metrics-out METRICS.jsonl] (INPUT may be workload:NAME)"
                .into(),
        );
    }
    let scheduler = parse_scheduler(args)?;
    let mut jobs = Vec::new();
    let mut max_qubits = 0;
    for f in &files {
        let ir = load_input(f)?;
        max_qubits = max_qubits.max(ir.num_qubits());
        jobs.push(CompileJob::named(f.clone(), ir));
    }
    let target = Target::parse_spec(
        value_of(args, "--backend").as_deref().unwrap_or("ft"),
        max_qubits,
    )?;

    // Batch runs always collect: the report's percentiles come from the
    // same telemetry stream --trace-out/--metrics-out export.
    let collector = Arc::new(Collector::new());
    let mut engine = BatchEngine::new(Pipeline::standard(scheduler), target)
        .with_cache_config(parse_cache_config(args)?)
        .with_fault(parse_fault(args)?)
        .with_telemetry(Telemetry::attached(Arc::clone(&collector)));
    if let Some(t) = value_of(args, "--threads") {
        let t: usize = t.parse().map_err(|_| format!("bad thread count `{t}`"))?;
        engine = engine.with_threads(t);
    }
    if let Some(t) = parse_intra_threads(args)? {
        engine = engine.with_intra_threads(t);
    }
    let threads = engine.threads();
    let results = engine.compile_all(jobs);

    let mut failures = 0;
    for r in &results {
        match &r.outcome {
            Ok(o) => {
                let stats = o.compiled.circuit.mapped_stats();
                eprintln!(
                    "{}: CNOT {}, single {}, depth {}{}",
                    r.name,
                    stats.cnot,
                    stats.single,
                    stats.depth,
                    if o.report.cache_hit {
                        " (cache hit)"
                    } else {
                        ""
                    }
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("{}: error: {e}", r.name);
            }
        }
    }
    let cs = engine.engine().cache_stats();
    eprintln!(
        "{} jobs on {} threads: {} cache hits, {} disk hits, {} coalesced, {} misses, \
         {} evictions",
        results.len(),
        threads,
        cs.hits,
        cs.disk_hits,
        cs.coalesced,
        cs.misses,
        cs.evictions
    );
    let snapshot = collector.metrics();
    if let Some(h) = snapshot.histogram("batch.job_wall_ns") {
        eprintln!(
            "job wall: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms (n={})",
            h.p50 as f64 / 1e6,
            h.p90 as f64 / 1e6,
            h.p99 as f64 / 1e6,
            h.count
        );
    }

    let json = json_report(&results, engine.engine(), threads, &snapshot);
    match value_of(args, "--json") {
        Some(path) if path != "-" => {
            std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
    write_exports(args, &collector)?;
    if failures > 0 {
        return Err(format!("{failures} job(s) failed"));
    }
    Ok(())
}

/// `phc serve`: bind the compile service and block until a client drains
/// it with a `shutdown` request.
fn run_serve(args: &[String]) -> Result<(), String> {
    if !positionals(args)?.is_empty() {
        return Err(
            "usage: phc serve [--listen ADDR] [--backend B] [--scheduler S] [--threads N] \
             [--queue N] [--deadline-ms N] [--watchdog-ms N] [--cache-dir DIR] \
             [--cache-entries N] [--cache-bytes N] [--fault-plan SPEC] \
             [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]"
                .into(),
        );
    }
    let scheduler = parse_scheduler(args)?;
    // The server's default target; per-request `backend` specs override it.
    let target = Target::parse_spec(value_of(args, "--backend").as_deref().unwrap_or("ft"), 0)?;

    let collector = Arc::new(Collector::new());
    let mut engine = BatchEngine::new(Pipeline::standard(scheduler), target)
        .with_cache_config(parse_cache_config(args)?)
        .with_fault(parse_fault(args)?)
        .with_telemetry(Telemetry::attached(Arc::clone(&collector)));
    if let Some(t) = value_of(args, "--threads") {
        let t: usize = t.parse().map_err(|_| format!("bad thread count `{t}`"))?;
        engine = engine.with_threads(t);
    }
    if let Some(t) = parse_intra_threads(args)? {
        engine = engine.with_intra_threads(t);
    }

    let mut config = ServeConfig::default();
    if let Some(q) = value_of(args, "--queue") {
        config.queue_depth = q.parse().map_err(|_| format!("bad --queue `{q}`"))?;
    }
    if let Some(ms) = value_of(args, "--deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad --deadline-ms `{ms}`"))?;
        config.default_deadline = Some(Duration::from_millis(ms));
    }
    if let Some(ms) = value_of(args, "--watchdog-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad --watchdog-ms `{ms}`"))?;
        config.watchdog = Some(Duration::from_millis(ms));
    }

    let listen = value_of(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let server =
        Server::bind(&*listen, engine, config).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    // Machine-parseable: scripts read this line to learn the ephemeral port.
    println!(
        "{}",
        Json::obj([
            ("type", Json::str("listening")),
            ("addr", Json::str(server.local_addr().to_string())),
        ])
        .to_compact()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let stats = server.run();
    eprintln!(
        "drained: {} connections, {} requests ({} completed, {} rejected, {} deadline misses, \
         {} cancelled, {} watchdog timeouts)",
        stats.connections,
        stats.requests,
        stats.completed,
        stats.rejected,
        stats.deadline_misses,
        stats.cancelled,
        stats.watchdog_timeouts
    );
    write_exports(args, &collector)?;
    Ok(())
}

/// `phc submit` exit codes (see the module docs for the full taxonomy):
/// usage/local error, non-transient job failure, capacity/deadline, and
/// transport failure. `EXIT_OK` is implicit.
const EXIT_USAGE: u8 = 1;
const EXIT_JOB_FAILED: u8 = 2;
const EXIT_CAPACITY: u8 = 3;
const EXIT_TRANSPORT: u8 = 4;

/// Job-error kinds that mean "the server was out of capacity or time",
/// not "this request is wrong" — exit 3, distinct from exit 2.
const CAPACITY_KINDS: [&str; 4] = [
    "overloaded",
    "draining",
    "deadline_exceeded",
    "watchdog_timeout",
];

/// `phc submit`: send compile requests to a running server through the
/// resilient client (bounded reconnects + re-submission), print each
/// final report (in id order) plus a closing `client` counters line, and
/// exit with the taxonomy code for the worst thing that happened.
fn run_submit(args: &[String]) -> Result<(), (u8, String)> {
    let usage = "usage: phc submit ADDR INPUT1.pauli … [--backend B] [--scheduler S] \
                 [--deadline-ms N] [--artifact] [--retries N] [--connect-timeout-ms N] \
                 [--read-timeout-ms N] [--retry-seed N] [--stats] [--health] [--shutdown]";
    let local = |m: String| (EXIT_USAGE, m);
    let transport = |e: ClientError| (EXIT_TRANSPORT, e.to_string());
    let pos = positionals(args).map_err(local)?;
    let Some((addr, files)) = pos.split_first() else {
        return Err(local(usage.into()));
    };
    let want_stats = flag_present(args, "--stats");
    let want_health = flag_present(args, "--health");
    let want_shutdown = flag_present(args, "--shutdown");
    if files.is_empty() && !want_stats && !want_health && !want_shutdown {
        return Err(local(usage.into()));
    }
    let scheduler = match value_of(args, "--scheduler") {
        None => None,
        Some(spec) => Some(proto::parse_scheduler_spec(&spec).map_err(local)?),
    };
    let backend = value_of(args, "--backend");
    let deadline_ms = match value_of(args, "--deadline-ms") {
        None => None,
        Some(ms) => Some(
            ms.parse()
                .map_err(|_| local(format!("bad --deadline-ms `{ms}`")))?,
        ),
    };

    let mut config = ClientConfig::default();
    if let Some(n) = value_of(args, "--retries") {
        config.max_retries = n
            .parse()
            .map_err(|_| local(format!("bad --retries `{n}`")))?;
    }
    if let Some(ms) = value_of(args, "--connect-timeout-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| local(format!("bad --connect-timeout-ms `{ms}`")))?;
        config.connect_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = value_of(args, "--read-timeout-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| local(format!("bad --read-timeout-ms `{ms}`")))?;
        config.read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
    }
    if let Some(n) = value_of(args, "--retry-seed") {
        config.seed = n
            .parse()
            .map_err(|_| local(format!("bad --retry-seed `{n}`")))?;
    }

    let mut reqs = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let ir = std::fs::read_to_string(f).map_err(|e| local(format!("cannot read {f}: {e}")))?;
        reqs.push(CompileRequest {
            id: i as u64 + 1,
            name: Some(f.clone()),
            ir,
            backend: backend.clone(),
            scheduler,
            deadline_ms,
            artifact: flag_present(args, "--artifact"),
        });
    }

    let mut client =
        Client::new(&**addr, config).map_err(|e| local(format!("cannot resolve {addr}: {e}")))?;
    let results = client.submit_all(reqs).map_err(transport)?;

    let mut job_failures = 0u64;
    let mut capacity_failures = 0u64;
    for report in results.values() {
        println!("{}", report.to_compact());
        if report.get("ok").and_then(Json::as_bool) != Some(true) {
            let kind = report
                .get("error_kind")
                .and_then(Json::as_str)
                .unwrap_or_default();
            if CAPACITY_KINDS.contains(&kind) {
                capacity_failures += 1;
            } else {
                job_failures += 1;
            }
        }
    }

    if want_stats {
        if let Some(line) = client.control(&Request::Stats).map_err(transport)? {
            println!("{}", line.to_compact());
        }
    }
    if want_health {
        if let Some(line) = client.control(&Request::Health).map_err(transport)? {
            println!("{}", line.to_compact());
        }
    }
    if want_shutdown {
        if let Some(line) = client.control(&Request::Shutdown).map_err(transport)? {
            println!("{}", line.to_compact());
        }
    }

    // The closing counters line: how hard the client had to work. Scripts
    // (and the CI chaos smoke) assert on these.
    let cs = client.stats();
    println!(
        "{}",
        Json::obj([
            ("type", Json::str("client")),
            ("connects", Json::U64(cs.connects)),
            ("retries", Json::U64(cs.retries)),
            ("job_retries", Json::U64(cs.job_retries)),
        ])
        .to_compact()
    );

    if capacity_failures > 0 {
        return Err((
            EXIT_CAPACITY,
            format!("{capacity_failures} job(s) rejected for capacity or deadline"),
        ));
    }
    if job_failures > 0 {
        return Err((EXIT_JOB_FAILED, format!("{job_failures} job(s) failed")));
    }
    Ok(())
}

fn run_single(args: &[String]) -> Result<(), String> {
    let input = positionals(args)?.into_iter().next().ok_or(
        "usage: phc INPUT.pauli [--backend ft|manhattan|melbourne|linear:N|grid:RxC] \
         [--scheduler auto|gco|do] [--intra-threads N] [--qasm OUT.qasm] [--report] \
         [--trace-out TRACE.json] [--metrics-out METRICS.jsonl] (INPUT may be workload:NAME)\n\
         \x20      phc batch INPUT… [--threads N] [--json OUT.json]",
    )?;
    let ir = load_input(&input)?;
    eprintln!(
        "parsed {}: {} blocks, {} strings, {} qubits",
        input,
        ir.num_blocks(),
        ir.total_strings(),
        ir.num_qubits()
    );

    let scheduler = parse_scheduler(args)?;
    let target = Target::parse_spec(
        value_of(args, "--backend").as_deref().unwrap_or("ft"),
        ir.num_qubits(),
    )?;

    let collector = Arc::new(Collector::new());
    let mut engine = Engine::new(Pipeline::standard(scheduler), target)
        .with_telemetry(Telemetry::attached(Arc::clone(&collector)))
        .with_fault(parse_fault(args)?);
    if let Some(t) = parse_intra_threads(args)? {
        engine = engine.with_intra_threads(t);
    }
    let out = engine.compile(&ir).map_err(|e| e.to_string())?;
    let stats = out.compiled.circuit.mapped_stats();
    println!(
        // `Auto` resolves per program — print the scheduler that actually ran.
        "scheduler={:?} backend={} : CNOT {}, single {}, total {}, depth {}",
        scheduler.resolve(&ir),
        value_of(args, "--backend").unwrap_or_else(|| "ft".into()),
        stats.cnot,
        stats.single,
        stats.total,
        stats.depth
    );
    if flag_present(args, "--report") {
        print!("{}", out.report.table());
    }
    if let (Some(init), Some(fin)) = (&out.compiled.initial_l2p, &out.compiled.final_l2p) {
        println!("initial layout: {init:?}");
        println!("final   layout: {fin:?}");
    }
    if let Some(path) = value_of(args, "--qasm") {
        let qasm = to_qasm(
            &out.compiled.circuit.decompose_swaps(),
            QasmOptions::default(),
        );
        std::fs::write(&path, qasm).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    write_exports(args, &collector)?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Only `submit` has a typed exit-code taxonomy; everything else maps
    // failure to the conventional 1.
    let result = match args.first().map(String::as_str) {
        Some("batch") => run_batch(&args[1..]).map_err(|m| (EXIT_USAGE, m)),
        Some("serve") => run_serve(&args[1..]).map_err(|m| (EXIT_USAGE, m)),
        Some("submit") => run_submit(&args[1..]),
        _ => run_single(&args).map_err(|m| (EXIT_USAGE, m)),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err((code, msg)) => {
            eprintln!("phc: {msg}");
            ExitCode::from(code)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_skip_flag_values_from_the_table() {
        let args = argv(&[
            "a.pauli",
            "--scheduler",
            "do",
            "b.pauli",
            "--trace-out",
            "t.json",
            "--report",
            "c.pauli",
        ]);
        assert_eq!(
            positionals(&args).unwrap(),
            ["a.pauli", "b.pauli", "c.pauli"]
        );
    }

    #[test]
    fn unknown_flags_are_hard_errors_not_inputs() {
        let err = positionals(&argv(&["a.pauli", "--trace_out", "t.json"])).unwrap_err();
        assert!(err.contains("unknown flag `--trace_out`"), "{err}");
    }

    #[test]
    fn value_flag_without_value_is_an_error() {
        let err = positionals(&argv(&["a.pauli", "--json"])).unwrap_err();
        assert!(err.contains("--json requires a value"), "{err}");
    }

    #[test]
    fn every_flag_in_the_table_is_unique() {
        for (i, (a, _)) in FLAGS.iter().enumerate() {
            assert!(
                FLAGS.iter().skip(i + 1).all(|(b, _)| a != b),
                "duplicate flag {a}"
            );
        }
    }
}
