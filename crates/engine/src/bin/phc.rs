//! `phc` — the Paulihedral command-line compiler, driven by the
//! `ph_engine` pass manager.
//!
//! Single-program mode (prints cost metrics, optionally OpenQASM 2.0):
//!
//! ```text
//! phc INPUT.pauli [--backend ft|manhattan|melbourne|linear:N|grid:RxC]
//!                 [--scheduler auto|gco|do] [--qasm OUT.qasm] [--report]
//!                 [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]
//! ```
//!
//! Batch mode (compiles many programs across a worker pool and emits a
//! JSON report with per-pass instrumentation, cache counters, and latency
//! histogram percentiles):
//!
//! ```text
//! phc batch INPUT1.pauli INPUT2.pauli … [--backend …] [--scheduler …]
//!           [--threads N] [--json REPORT.json]
//!           [--cache-dir DIR] [--cache-entries N] [--cache-bytes N]
//!           [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]
//! ```
//!
//! `--cache-dir` enables the persistent cache tier: a second run over the
//! same inputs and configuration is served from `DIR` instead of
//! recompiling. `--cache-entries`/`--cache-bytes` bound the in-memory tier
//! (LRU eviction; see the `cache` object of the JSON report for counters).
//!
//! `--trace-out` writes a Chrome `trace_event` file — open it at
//! `chrome://tracing` or <https://ui.perfetto.dev> to see per-worker job
//! spans with the pass spans nested inside them and cache events on the
//! timeline. `--metrics-out` writes the same stream as JSONL (one JSON
//! object per line: every span/instant event, then final
//! counter/gauge/histogram values).
//!
//! Example input file:
//!
//! ```text
//! {(IIXY, 0.5), (IIYX, -0.5), theta1};
//! {(ZZII, 0.134), 0.5};
//! ```
//!
//! (This binary lives in the engine crate rather than `crates/core`
//! because it drives the engine, and the engine depends on the core
//! library — the reverse dependency would be a package cycle.)

use std::process::ExitCode;
use std::sync::Arc;

use paulihedral::parse::parse_program;
use paulihedral::Scheduler;
use ph_engine::json::Json;
use ph_engine::{
    BatchEngine, BatchResult, CacheConfig, Collector, CompileJob, Engine, MetricsSnapshot,
    Pipeline, Target, Telemetry,
};
use ph_telemetry::export;
use qcircuit::qasm::{to_qasm, QasmOptions};
use qdevice::devices;

/// The single flag table both the parser and the positional filter derive
/// from: every `--flag` the CLI understands, and whether it consumes the
/// next argument as its value. Adding a flag here is the *only* step —
/// `positionals()` and unknown-flag rejection follow automatically.
const FLAGS: &[(&str, bool)] = &[
    ("--backend", true),
    ("--scheduler", true),
    ("--qasm", true),
    ("--threads", true),
    ("--json", true),
    ("--cache-dir", true),
    ("--cache-entries", true),
    ("--cache-bytes", true),
    ("--trace-out", true),
    ("--metrics-out", true),
    ("--report", false),
];

fn flag_takes_value(flag: &str) -> Option<bool> {
    FLAGS.iter().find(|(f, _)| *f == flag).map(|&(_, v)| v)
}

/// Splits `args` into positionals, validating every flag against the
/// table: unknown `--flags` and value flags missing their value are hard
/// errors, never silently treated as input files.
fn positionals(args: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match flag_takes_value(a) {
            Some(true) => {
                if iter.next().is_none() {
                    return Err(format!("{a} requires a value"));
                }
            }
            Some(false) => {}
            None if a.starts_with("--") => {
                return Err(format!("unknown flag `{a}` (see phc --help in the docs)"));
            }
            None => out.push(a.clone()),
        }
    }
    Ok(out)
}

fn value_of(args: &[String], flag: &str) -> Option<String> {
    debug_assert_eq!(flag_takes_value(flag), Some(true), "{flag} not in table");
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_present(args: &[String], flag: &str) -> bool {
    debug_assert_eq!(flag_takes_value(flag), Some(false), "{flag} not in table");
    args.iter().any(|a| a == flag)
}

fn parse_target(spec: &str, n_program: usize) -> Result<Target, String> {
    match spec {
        "ft" => Ok(Target::FaultTolerant),
        "manhattan" => Ok(Target::superconducting(devices::manhattan_65())),
        "melbourne" => Ok(Target::superconducting(devices::melbourne_16())),
        other => {
            if let Some(n) = other.strip_prefix("linear:") {
                let n: usize = n.parse().map_err(|_| format!("bad linear size `{n}`"))?;
                return Ok(Target::superconducting(devices::linear(n.max(n_program))));
            }
            if let Some(dims) = other.strip_prefix("grid:") {
                let (r, c) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("bad grid spec `{dims}`, expected RxC"))?;
                let r: usize = r.parse().map_err(|_| format!("bad grid rows `{r}`"))?;
                let c: usize = c.parse().map_err(|_| format!("bad grid cols `{c}`"))?;
                return Ok(Target::superconducting(devices::grid(r, c)));
            }
            Err(format!(
                "unknown backend `{other}` (ft|manhattan|melbourne|linear:N|grid:RxC)"
            ))
        }
    }
}

fn parse_scheduler(args: &[String]) -> Result<Scheduler, String> {
    match value_of(args, "--scheduler").as_deref() {
        None | Some("auto") => Ok(Scheduler::Auto),
        Some("gco") => Ok(Scheduler::GateCount),
        Some("do") => Ok(Scheduler::Depth),
        Some(other) => Err(format!("unknown scheduler `{other}` (auto|gco|do)")),
    }
}

fn job_json(r: &BatchResult) -> Json {
    match &r.outcome {
        Ok(o) => {
            let stats = o.compiled.circuit.mapped_stats();
            let passes: Vec<Json> = o
                .report
                .passes
                .iter()
                .map(|p| {
                    Json::obj([
                        ("name", Json::str(&p.name)),
                        ("wall_ms", Json::f64_rounded(p.wall.as_secs_f64() * 1e3, 3)),
                        ("cnot_delta", Json::I64(p.cnot_delta())),
                        ("single_delta", Json::I64(p.single_delta())),
                        ("depth_delta", Json::I64(p.depth_delta())),
                        ("note", Json::str(&p.note)),
                    ])
                })
                .collect();
            Json::obj([
                ("name", Json::str(&r.name)),
                ("ok", Json::Bool(true)),
                ("cache_hit", Json::Bool(o.report.cache_hit)),
                ("key", Json::str(format!("{:016x}", o.report.key))),
                ("cnot", Json::U64(stats.cnot as u64)),
                ("single", Json::U64(stats.single as u64)),
                ("total", Json::U64(stats.total as u64)),
                ("depth", Json::U64(stats.depth as u64)),
                ("wall_ms", Json::f64_rounded(r.wall.as_secs_f64() * 1e3, 3)),
                (
                    "queue_wait_ms",
                    Json::f64_rounded(r.queue_wait.as_secs_f64() * 1e3, 3),
                ),
                ("passes", Json::Arr(passes)),
            ])
        }
        Err(e) => Json::obj([
            ("name", Json::str(&r.name)),
            ("ok", Json::Bool(false)),
            ("error", Json::str(e.to_string())),
        ]),
    }
}

/// The latency histograms of the metrics snapshot, percentiles in
/// milliseconds (names keep their `_ns` suffix; values here are rescaled).
fn metrics_json(snapshot: &MetricsSnapshot) -> Json {
    let ms = |ns: u64| Json::f64_rounded(ns as f64 / 1e6, 3);
    Json::obj([
        (
            "counters",
            Json::obj(
                snapshot
                    .counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::U64(v))),
            ),
        ),
        (
            "histograms_ms",
            Json::obj(snapshot.histograms.iter().map(|(k, h)| {
                (
                    k.trim_end_matches("_ns").to_string(),
                    Json::obj([
                        ("count", Json::U64(h.count)),
                        ("min", ms(h.min)),
                        ("max", ms(h.max)),
                        ("mean", ms(h.mean)),
                        ("p50", ms(h.p50)),
                        ("p90", ms(h.p90)),
                        ("p99", ms(h.p99)),
                    ]),
                )
            })),
        ),
    ])
}

fn json_report(
    results: &[BatchResult],
    engine: &Engine,
    threads: usize,
    snapshot: &MetricsSnapshot,
) -> String {
    let cs = engine.cache_stats();
    let report = Json::obj([
        ("threads", Json::U64(threads as u64)),
        ("jobs", Json::Arr(results.iter().map(job_json).collect())),
        (
            "cache",
            Json::obj([
                ("hits", Json::U64(cs.hits)),
                ("misses", Json::U64(cs.misses)),
                ("disk_hits", Json::U64(cs.disk_hits)),
                ("coalesced", Json::U64(cs.coalesced)),
                ("evictions", Json::U64(cs.evictions)),
                ("entries", Json::U64(cs.entries as u64)),
                ("resident_bytes", Json::U64(cs.resident_bytes as u64)),
            ]),
        ),
        ("metrics", metrics_json(snapshot)),
    ]);
    let mut out = report.to_pretty();
    out.push('\n');
    out
}

/// Builds the batch cache configuration from `--cache-dir`,
/// `--cache-entries`, and `--cache-bytes`.
fn parse_cache_config(args: &[String]) -> Result<CacheConfig, String> {
    let mut config = CacheConfig::default();
    if let Some(dir) = value_of(args, "--cache-dir") {
        config.disk_dir = Some(dir.into());
    }
    if let Some(n) = value_of(args, "--cache-entries") {
        config.max_entries = Some(
            n.parse()
                .map_err(|_| format!("bad --cache-entries `{n}`"))?,
        );
    }
    if let Some(n) = value_of(args, "--cache-bytes") {
        config.max_bytes = Some(n.parse().map_err(|_| format!("bad --cache-bytes `{n}`"))?);
    }
    Ok(config)
}

/// Writes the `--trace-out` / `--metrics-out` exports, if requested.
fn write_exports(args: &[String], collector: &Collector) -> Result<(), String> {
    if let Some(path) = value_of(args, "--trace-out") {
        std::fs::write(&path, export::chrome_trace(collector))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = value_of(args, "--metrics-out") {
        std::fs::write(&path, export::jsonl(collector))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn run_batch(args: &[String]) -> Result<(), String> {
    let files = positionals(args)?;
    if files.is_empty() {
        return Err(
            "usage: phc batch INPUT1.pauli INPUT2.pauli … [--backend B] [--scheduler S] \
             [--threads N] [--json OUT.json] [--cache-dir DIR] [--cache-entries N] \
             [--cache-bytes N] [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]"
                .into(),
        );
    }
    let scheduler = parse_scheduler(args)?;
    let mut jobs = Vec::new();
    let mut max_qubits = 0;
    for f in &files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?;
        let ir = parse_program(&text).map_err(|e| format!("{f}: {e}"))?;
        max_qubits = max_qubits.max(ir.num_qubits());
        jobs.push(CompileJob::named(f.clone(), ir));
    }
    let target = parse_target(
        value_of(args, "--backend").as_deref().unwrap_or("ft"),
        max_qubits,
    )?;

    // Batch runs always collect: the report's percentiles come from the
    // same telemetry stream --trace-out/--metrics-out export.
    let collector = Arc::new(Collector::new());
    let mut engine = BatchEngine::new(Pipeline::standard(scheduler), target)
        .with_cache_config(parse_cache_config(args)?)
        .with_telemetry(Telemetry::attached(Arc::clone(&collector)));
    if let Some(t) = value_of(args, "--threads") {
        let t: usize = t.parse().map_err(|_| format!("bad thread count `{t}`"))?;
        engine = engine.with_threads(t);
    }
    let threads = engine.threads();
    let results = engine.compile_all(jobs);

    let mut failures = 0;
    for r in &results {
        match &r.outcome {
            Ok(o) => {
                let stats = o.compiled.circuit.mapped_stats();
                eprintln!(
                    "{}: CNOT {}, single {}, depth {}{}",
                    r.name,
                    stats.cnot,
                    stats.single,
                    stats.depth,
                    if o.report.cache_hit {
                        " (cache hit)"
                    } else {
                        ""
                    }
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("{}: error: {e}", r.name);
            }
        }
    }
    let cs = engine.engine().cache_stats();
    eprintln!(
        "{} jobs on {} threads: {} cache hits, {} disk hits, {} coalesced, {} misses, \
         {} evictions",
        results.len(),
        threads,
        cs.hits,
        cs.disk_hits,
        cs.coalesced,
        cs.misses,
        cs.evictions
    );
    let snapshot = collector.metrics();
    if let Some(h) = snapshot.histogram("batch.job_wall_ns") {
        eprintln!(
            "job wall: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms (n={})",
            h.p50 as f64 / 1e6,
            h.p90 as f64 / 1e6,
            h.p99 as f64 / 1e6,
            h.count
        );
    }

    let json = json_report(&results, engine.engine(), threads, &snapshot);
    match value_of(args, "--json") {
        Some(path) if path != "-" => {
            std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
    write_exports(args, &collector)?;
    if failures > 0 {
        return Err(format!("{failures} job(s) failed"));
    }
    Ok(())
}

fn run_single(args: &[String]) -> Result<(), String> {
    let input = positionals(args)?.into_iter().next().ok_or(
        "usage: phc INPUT.pauli [--backend ft|manhattan|melbourne|linear:N|grid:RxC] \
         [--scheduler auto|gco|do] [--qasm OUT.qasm] [--report] [--trace-out TRACE.json] \
         [--metrics-out METRICS.jsonl]\n       phc batch INPUT… [--threads N] [--json OUT.json]",
    )?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let ir = parse_program(&text).map_err(|e| format!("{input}: {e}"))?;
    eprintln!(
        "parsed {}: {} blocks, {} strings, {} qubits",
        input,
        ir.num_blocks(),
        ir.total_strings(),
        ir.num_qubits()
    );

    let scheduler = parse_scheduler(args)?;
    let target = parse_target(
        value_of(args, "--backend").as_deref().unwrap_or("ft"),
        ir.num_qubits(),
    )?;

    let collector = Arc::new(Collector::new());
    let engine = Engine::new(Pipeline::standard(scheduler), target)
        .with_telemetry(Telemetry::attached(Arc::clone(&collector)));
    let out = engine.compile(&ir).map_err(|e| e.to_string())?;
    let stats = out.compiled.circuit.mapped_stats();
    println!(
        // `Auto` resolves per program — print the scheduler that actually ran.
        "scheduler={:?} backend={} : CNOT {}, single {}, total {}, depth {}",
        scheduler.resolve(&ir),
        value_of(args, "--backend").unwrap_or_else(|| "ft".into()),
        stats.cnot,
        stats.single,
        stats.total,
        stats.depth
    );
    if flag_present(args, "--report") {
        print!("{}", out.report.table());
    }
    if let (Some(init), Some(fin)) = (&out.compiled.initial_l2p, &out.compiled.final_l2p) {
        println!("initial layout: {init:?}");
        println!("final   layout: {fin:?}");
    }
    if let Some(path) = value_of(args, "--qasm") {
        let qasm = to_qasm(
            &out.compiled.circuit.decompose_swaps(),
            QasmOptions::default(),
        );
        std::fs::write(&path, qasm).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    write_exports(args, &collector)?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("batch") => run_batch(&args[1..]),
        _ => run_single(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("phc: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_skip_flag_values_from_the_table() {
        let args = argv(&[
            "a.pauli",
            "--scheduler",
            "do",
            "b.pauli",
            "--trace-out",
            "t.json",
            "--report",
            "c.pauli",
        ]);
        assert_eq!(
            positionals(&args).unwrap(),
            ["a.pauli", "b.pauli", "c.pauli"]
        );
    }

    #[test]
    fn unknown_flags_are_hard_errors_not_inputs() {
        let err = positionals(&argv(&["a.pauli", "--trace_out", "t.json"])).unwrap_err();
        assert!(err.contains("unknown flag `--trace_out`"), "{err}");
    }

    #[test]
    fn value_flag_without_value_is_an_error() {
        let err = positionals(&argv(&["a.pauli", "--json"])).unwrap_err();
        assert!(err.contains("--json requires a value"), "{err}");
    }

    #[test]
    fn every_flag_in_the_table_is_unique() {
        for (i, (a, _)) in FLAGS.iter().enumerate() {
            assert!(
                FLAGS.iter().skip(i + 1).all(|(b, _)| a != b),
                "duplicate flag {a}"
            );
        }
    }
}
