//! `phc` — the Paulihedral command-line compiler, driven by the
//! `ph_engine` pass manager.
//!
//! Single-program mode (prints cost metrics, optionally OpenQASM 2.0):
//!
//! ```text
//! phc INPUT.pauli [--backend ft|manhattan|melbourne|linear:N|grid:RxC]
//!                 [--scheduler auto|gco|do] [--qasm OUT.qasm] [--report]
//! ```
//!
//! Batch mode (compiles many programs across a worker pool and emits a
//! JSON report with per-pass instrumentation and cache counters):
//!
//! ```text
//! phc batch INPUT1.pauli INPUT2.pauli … [--backend …] [--scheduler …]
//!           [--threads N] [--json REPORT.json]
//!           [--cache-dir DIR] [--cache-entries N] [--cache-bytes N]
//! ```
//!
//! `--cache-dir` enables the persistent cache tier: a second run over the
//! same inputs and configuration is served from `DIR` instead of
//! recompiling. `--cache-entries`/`--cache-bytes` bound the in-memory tier
//! (LRU eviction; see the `cache` object of the JSON report for counters).
//!
//! Example input file:
//!
//! ```text
//! {(IIXY, 0.5), (IIYX, -0.5), theta1};
//! {(ZZII, 0.134), 0.5};
//! ```
//!
//! (This binary lives in the engine crate rather than `crates/core`
//! because it drives the engine, and the engine depends on the core
//! library — the reverse dependency would be a package cycle.)

use std::process::ExitCode;

use paulihedral::parse::parse_program;
use paulihedral::Scheduler;
use ph_engine::{BatchEngine, BatchResult, CacheConfig, CompileJob, Engine, Pipeline, Target};
use qcircuit::qasm::{to_qasm, QasmOptions};
use qdevice::devices;

fn value_of(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Positional (non-flag, non-flag-value) arguments.
fn positionals(args: &[String]) -> Vec<String> {
    let value_flags = [
        "--scheduler",
        "--qasm",
        "--backend",
        "--threads",
        "--json",
        "--cache-dir",
        "--cache-entries",
        "--cache-bytes",
    ];
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if value_flags.contains(&a.as_str()) {
            skip = true;
            continue;
        }
        if a.starts_with("--") {
            continue;
        }
        out.push(a.clone());
    }
    out
}

fn parse_target(spec: &str, n_program: usize) -> Result<Target, String> {
    match spec {
        "ft" => Ok(Target::FaultTolerant),
        "manhattan" => Ok(Target::superconducting(devices::manhattan_65())),
        "melbourne" => Ok(Target::superconducting(devices::melbourne_16())),
        other => {
            if let Some(n) = other.strip_prefix("linear:") {
                let n: usize = n.parse().map_err(|_| format!("bad linear size `{n}`"))?;
                return Ok(Target::superconducting(devices::linear(n.max(n_program))));
            }
            if let Some(dims) = other.strip_prefix("grid:") {
                let (r, c) = dims
                    .split_once('x')
                    .ok_or_else(|| format!("bad grid spec `{dims}`, expected RxC"))?;
                let r: usize = r.parse().map_err(|_| format!("bad grid rows `{r}`"))?;
                let c: usize = c.parse().map_err(|_| format!("bad grid cols `{c}`"))?;
                return Ok(Target::superconducting(devices::grid(r, c)));
            }
            Err(format!(
                "unknown backend `{other}` (ft|manhattan|melbourne|linear:N|grid:RxC)"
            ))
        }
    }
}

fn parse_scheduler(args: &[String]) -> Result<Scheduler, String> {
    match value_of(args, "--scheduler").as_deref() {
        None | Some("auto") => Ok(Scheduler::Auto),
        Some("gco") => Ok(Scheduler::GateCount),
        Some("do") => Ok(Scheduler::Depth),
        Some(other) => Err(format!("unknown scheduler `{other}` (auto|gco|do)")),
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_report(results: &[BatchResult], engine: &Engine, threads: usize) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"threads\": {threads},\n"));
    out.push_str("  \"jobs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        match &r.outcome {
            Ok(o) => {
                let stats = o.compiled.circuit.mapped_stats();
                let passes: Vec<String> = o
                    .report
                    .passes
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"name\": \"{}\", \"wall_ms\": {:.3}, \"cnot_delta\": {}, \
                             \"single_delta\": {}, \"depth_delta\": {}, \"note\": \"{}\"}}",
                            json_escape(&p.name),
                            p.wall.as_secs_f64() * 1e3,
                            p.cnot_delta(),
                            p.single_delta(),
                            p.depth_delta(),
                            json_escape(&p.note)
                        )
                    })
                    .collect();
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"ok\": true, \"cache_hit\": {}, \
                     \"key\": \"{:016x}\", \"cnot\": {}, \"single\": {}, \"total\": {}, \
                     \"depth\": {}, \"wall_ms\": {:.3}, \"passes\": [{}]}}{comma}\n",
                    json_escape(&r.name),
                    o.report.cache_hit,
                    o.report.key,
                    stats.cnot,
                    stats.single,
                    stats.total,
                    stats.depth,
                    r.wall.as_secs_f64() * 1e3,
                    passes.join(", ")
                ));
            }
            Err(e) => {
                out.push_str(&format!(
                    "    {{\"name\": \"{}\", \"ok\": false, \"error\": \"{}\"}}{comma}\n",
                    json_escape(&r.name),
                    json_escape(&e.to_string())
                ));
            }
        }
    }
    out.push_str("  ],\n");
    let cs = engine.cache_stats();
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"disk_hits\": {}, \
         \"coalesced\": {}, \"evictions\": {}, \"entries\": {}, \"resident_bytes\": {}}}\n",
        cs.hits, cs.misses, cs.disk_hits, cs.coalesced, cs.evictions, cs.entries, cs.resident_bytes
    ));
    out.push_str("}\n");
    out
}

/// Builds the batch cache configuration from `--cache-dir`,
/// `--cache-entries`, and `--cache-bytes`.
fn parse_cache_config(args: &[String]) -> Result<CacheConfig, String> {
    let mut config = CacheConfig::default();
    if let Some(dir) = value_of(args, "--cache-dir") {
        config.disk_dir = Some(dir.into());
    }
    if let Some(n) = value_of(args, "--cache-entries") {
        config.max_entries = Some(
            n.parse()
                .map_err(|_| format!("bad --cache-entries `{n}`"))?,
        );
    }
    if let Some(n) = value_of(args, "--cache-bytes") {
        config.max_bytes = Some(n.parse().map_err(|_| format!("bad --cache-bytes `{n}`"))?);
    }
    Ok(config)
}

fn run_batch(args: &[String]) -> Result<(), String> {
    let files = positionals(args);
    if files.is_empty() {
        return Err(
            "usage: phc batch INPUT1.pauli INPUT2.pauli … [--backend B] [--scheduler S] \
             [--threads N] [--json OUT.json] [--cache-dir DIR] [--cache-entries N] \
             [--cache-bytes N]"
                .into(),
        );
    }
    let scheduler = parse_scheduler(args)?;
    let mut jobs = Vec::new();
    let mut max_qubits = 0;
    for f in &files {
        let text = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?;
        let ir = parse_program(&text).map_err(|e| format!("{f}: {e}"))?;
        max_qubits = max_qubits.max(ir.num_qubits());
        jobs.push(CompileJob::named(f.clone(), ir));
    }
    let target = parse_target(
        value_of(args, "--backend").as_deref().unwrap_or("ft"),
        max_qubits,
    )?;

    let mut engine = BatchEngine::new(Pipeline::standard(scheduler), target)
        .with_cache_config(parse_cache_config(args)?);
    if let Some(t) = value_of(args, "--threads") {
        let t: usize = t.parse().map_err(|_| format!("bad thread count `{t}`"))?;
        engine = engine.with_threads(t);
    }
    let threads = engine.threads();
    let results = engine.compile_all(jobs);

    let mut failures = 0;
    for r in &results {
        match &r.outcome {
            Ok(o) => {
                let stats = o.compiled.circuit.mapped_stats();
                eprintln!(
                    "{}: CNOT {}, single {}, depth {}{}",
                    r.name,
                    stats.cnot,
                    stats.single,
                    stats.depth,
                    if o.report.cache_hit {
                        " (cache hit)"
                    } else {
                        ""
                    }
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("{}: error: {e}", r.name);
            }
        }
    }
    let cs = engine.engine().cache_stats();
    eprintln!(
        "{} jobs on {} threads: {} cache hits, {} disk hits, {} coalesced, {} misses, \
         {} evictions",
        results.len(),
        threads,
        cs.hits,
        cs.disk_hits,
        cs.coalesced,
        cs.misses,
        cs.evictions
    );

    let json = json_report(&results, engine.engine(), threads);
    match value_of(args, "--json") {
        Some(path) if path != "-" => {
            std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
    if failures > 0 {
        return Err(format!("{failures} job(s) failed"));
    }
    Ok(())
}

fn run_single(args: &[String]) -> Result<(), String> {
    let input = positionals(args).into_iter().next().ok_or(
        "usage: phc INPUT.pauli [--backend ft|manhattan|melbourne|linear:N|grid:RxC] \
         [--scheduler auto|gco|do] [--qasm OUT.qasm] [--report]\n       phc batch INPUT… \
         [--threads N] [--json OUT.json]",
    )?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let ir = parse_program(&text).map_err(|e| format!("{input}: {e}"))?;
    eprintln!(
        "parsed {}: {} blocks, {} strings, {} qubits",
        input,
        ir.num_blocks(),
        ir.total_strings(),
        ir.num_qubits()
    );

    let scheduler = parse_scheduler(args)?;
    let target = parse_target(
        value_of(args, "--backend").as_deref().unwrap_or("ft"),
        ir.num_qubits(),
    )?;

    let engine = Engine::new(Pipeline::standard(scheduler), target);
    let out = engine.compile(&ir).map_err(|e| e.to_string())?;
    let stats = out.compiled.circuit.mapped_stats();
    println!(
        // `Auto` resolves per program — print the scheduler that actually ran.
        "scheduler={:?} backend={} : CNOT {}, single {}, total {}, depth {}",
        scheduler.resolve(&ir),
        value_of(args, "--backend").unwrap_or_else(|| "ft".into()),
        stats.cnot,
        stats.single,
        stats.total,
        stats.depth
    );
    if flag_present(args, "--report") {
        print!("{}", out.report.table());
    }
    if let (Some(init), Some(fin)) = (&out.compiled.initial_l2p, &out.compiled.final_l2p) {
        println!("initial layout: {init:?}");
        println!("final   layout: {fin:?}");
    }
    if let Some(path) = value_of(args, "--qasm") {
        let qasm = to_qasm(
            &out.compiled.circuit.decompose_swaps(),
            QasmOptions::default(),
        );
        std::fs::write(&path, qasm).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("batch") => run_batch(&args[1..]),
        _ => run_single(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("phc: {msg}");
            ExitCode::FAILURE
        }
    }
}
