//! `phc` — the Paulihedral command-line compiler, driven by the
//! `ph_engine` pass manager.
//!
//! Single-program mode (prints cost metrics, optionally OpenQASM 2.0):
//!
//! ```text
//! phc INPUT.pauli [--backend ft|manhattan|melbourne|linear:N|grid:RxC]
//!                 [--scheduler auto|gco|do] [--intra-threads N]
//!                 [--qasm OUT.qasm] [--report]
//!                 [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]
//! ```
//!
//! Any `INPUT` may be a `workload:NAME` pseudo-input instead of a file:
//! the 31 Table 1 benchmark names (`workload:UCCSD-16`) or the scale
//! lattices (`workload:Heisen-1000`, `workload:Ising-32x32`) generate
//! their program in-process. `--intra-threads N` lets one compile's
//! synthesis pass fan out over N workers (`0` = one per CPU); the output
//! circuit is bit-identical for every setting.
//!
//! Batch mode (compiles many programs across a worker pool and emits a
//! JSON report with per-pass instrumentation, cache counters, and latency
//! histogram percentiles):
//!
//! ```text
//! phc batch INPUT1.pauli INPUT2.pauli … [--backend …] [--scheduler …]
//!           [--threads N] [--intra-threads N] [--json REPORT.json]
//!           [--cache-dir DIR] [--cache-entries N] [--cache-bytes N]
//!           [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]
//! ```
//!
//! `--cache-dir` enables the persistent cache tier: a second run over the
//! same inputs and configuration is served from `DIR` instead of
//! recompiling. `--cache-entries`/`--cache-bytes` bound the in-memory tier
//! (LRU eviction; see the `cache` object of the JSON report for counters).
//!
//! Service mode (a TCP compile server speaking newline-delimited JSON,
//! and a client that streams reports back as they finish):
//!
//! ```text
//! phc serve [--listen 127.0.0.1:7878] [--backend …] [--scheduler …]
//!           [--threads N] [--queue N] [--deadline-ms N]
//!           [--cache-dir DIR] [--cache-entries N] [--cache-bytes N]
//!           [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]
//! phc submit ADDR INPUT1.pauli … [--backend …] [--scheduler …]
//!            [--deadline-ms N] [--artifact] [--stats] [--shutdown]
//! ```
//!
//! `phc serve` prints one `{"type": "listening", "addr": …}` line to
//! stdout (machine-parseable; with `--listen …:0` this is how scripts
//! learn the ephemeral port) and blocks until a client sends `shutdown`.
//! Two `phc` processes pointed at one `--cache-dir` share compiled
//! artifacts through the persistent cache tier, so a `phc submit` against
//! a warm server reports `cache_hit: true` without recompiling. See the
//! README "Compile service" section for the wire protocol.
//!
//! `--trace-out` writes a Chrome `trace_event` file — open it at
//! `chrome://tracing` or <https://ui.perfetto.dev> to see per-worker job
//! spans with the pass spans nested inside them and cache events on the
//! timeline. `--metrics-out` writes the same stream as JSONL (one JSON
//! object per line: every span/instant event, then final
//! counter/gauge/histogram values).
//!
//! Example input file:
//!
//! ```text
//! {(IIXY, 0.5), (IIYX, -0.5), theta1};
//! {(ZZII, 0.134), 0.5};
//! ```
//!
//! (This binary lives in the engine crate rather than `crates/core`
//! because it drives the engine, and the engine depends on the core
//! library — the reverse dependency would be a package cycle.)

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use paulihedral::parse::parse_program;
use paulihedral::Scheduler;
use ph_engine::json::Json;
use ph_engine::proto::{self, CompileRequest, Request};
use ph_engine::{
    BatchEngine, BatchResult, CacheConfig, Client, Collector, CompileJob, Engine, MetricsSnapshot,
    Pipeline, ServeConfig, Server, Target, Telemetry,
};
use ph_telemetry::export;
use qcircuit::qasm::{to_qasm, QasmOptions};

/// The single flag table both the parser and the positional filter derive
/// from: every `--flag` the CLI understands, and whether it consumes the
/// next argument as its value. Adding a flag here is the *only* step —
/// `positionals()` and unknown-flag rejection follow automatically.
const FLAGS: &[(&str, bool)] = &[
    ("--backend", true),
    ("--scheduler", true),
    ("--qasm", true),
    ("--threads", true),
    ("--intra-threads", true),
    ("--json", true),
    ("--cache-dir", true),
    ("--cache-entries", true),
    ("--cache-bytes", true),
    ("--trace-out", true),
    ("--metrics-out", true),
    ("--listen", true),
    ("--queue", true),
    ("--deadline-ms", true),
    ("--report", false),
    ("--artifact", false),
    ("--stats", false),
    ("--shutdown", false),
];

fn flag_takes_value(flag: &str) -> Option<bool> {
    FLAGS.iter().find(|(f, _)| *f == flag).map(|&(_, v)| v)
}

/// Splits `args` into positionals, validating every flag against the
/// table: unknown `--flags` and value flags missing their value are hard
/// errors, never silently treated as input files.
fn positionals(args: &[String]) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match flag_takes_value(a) {
            Some(true) => {
                if iter.next().is_none() {
                    return Err(format!("{a} requires a value"));
                }
            }
            Some(false) => {}
            None if a.starts_with("--") => {
                return Err(format!("unknown flag `{a}` (see phc --help in the docs)"));
            }
            None => out.push(a.clone()),
        }
    }
    Ok(out)
}

fn value_of(args: &[String], flag: &str) -> Option<String> {
    debug_assert_eq!(flag_takes_value(flag), Some(true), "{flag} not in table");
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_present(args: &[String], flag: &str) -> bool {
    debug_assert_eq!(flag_takes_value(flag), Some(false), "{flag} not in table");
    args.iter().any(|a| a == flag)
}

fn parse_scheduler(args: &[String]) -> Result<Scheduler, String> {
    match value_of(args, "--scheduler") {
        None => Ok(Scheduler::Auto),
        Some(spec) => proto::parse_scheduler_spec(&spec),
    }
}

/// `--intra-threads`: workers one compile's synthesis pass may use
/// (`0` = one per CPU). `None` when the flag is absent (sequential).
fn parse_intra_threads(args: &[String]) -> Result<Option<usize>, String> {
    match value_of(args, "--intra-threads") {
        None => Ok(None),
        Some(t) => t
            .parse()
            .map(Some)
            .map_err(|_| format!("bad --intra-threads `{t}`")),
    }
}

/// Resolves one positional input: `workload:NAME` generates a named
/// program (the 31 Table 1 benchmarks plus the `scale` lattices, e.g.
/// `workload:Heisen-1000`); anything else is read as a `.pauli` file.
fn load_input(spec: &str) -> Result<paulihedral::ir::PauliIR, String> {
    if let Some(name) = spec.strip_prefix("workload:") {
        if let Some(ir) = workloads::scale::named_scale_ir(name) {
            return Ok(ir);
        }
        if let Some(b) = workloads::suite::try_generate(name) {
            return Ok(b.ir);
        }
        return Err(format!(
            "unknown workload `{name}` (Table 1 names, or Ising-N/Heisen-N/Ising-RxC/Heisen-RxC)"
        ));
    }
    let text = std::fs::read_to_string(spec).map_err(|e| format!("cannot read {spec}: {e}"))?;
    parse_program(&text).map_err(|e| format!("{spec}: {e}"))
}

/// The latency histograms of the metrics snapshot, percentiles in
/// milliseconds (names keep their `_ns` suffix; values here are rescaled).
fn metrics_json(snapshot: &MetricsSnapshot) -> Json {
    let ms = |ns: u64| Json::f64_rounded(ns as f64 / 1e6, 3);
    Json::obj([
        (
            "counters",
            Json::obj(
                snapshot
                    .counters
                    .iter()
                    .map(|(k, &v)| (k.clone(), Json::U64(v))),
            ),
        ),
        (
            "histograms_ms",
            Json::obj(snapshot.histograms.iter().map(|(k, h)| {
                (
                    k.trim_end_matches("_ns").to_string(),
                    Json::obj([
                        ("count", Json::U64(h.count)),
                        ("min", ms(h.min)),
                        ("max", ms(h.max)),
                        ("mean", ms(h.mean)),
                        ("p50", ms(h.p50)),
                        ("p90", ms(h.p90)),
                        ("p99", ms(h.p99)),
                    ]),
                )
            })),
        ),
    ])
}

fn json_report(
    results: &[BatchResult],
    engine: &Engine,
    threads: usize,
    snapshot: &MetricsSnapshot,
) -> String {
    let report = Json::obj([
        ("threads", Json::U64(threads as u64)),
        (
            "jobs",
            Json::Arr(results.iter().map(proto::batch_result_json).collect()),
        ),
        ("cache", proto::cache_json(&engine.cache_stats())),
        ("metrics", metrics_json(snapshot)),
    ]);
    let mut out = report.to_pretty();
    out.push('\n');
    out
}

/// Builds the batch cache configuration from `--cache-dir`,
/// `--cache-entries`, and `--cache-bytes`.
fn parse_cache_config(args: &[String]) -> Result<CacheConfig, String> {
    let mut config = CacheConfig::default();
    if let Some(dir) = value_of(args, "--cache-dir") {
        config.disk_dir = Some(dir.into());
    }
    if let Some(n) = value_of(args, "--cache-entries") {
        config.max_entries = Some(
            n.parse()
                .map_err(|_| format!("bad --cache-entries `{n}`"))?,
        );
    }
    if let Some(n) = value_of(args, "--cache-bytes") {
        config.max_bytes = Some(n.parse().map_err(|_| format!("bad --cache-bytes `{n}`"))?);
    }
    Ok(config)
}

/// Writes the `--trace-out` / `--metrics-out` exports, if requested.
fn write_exports(args: &[String], collector: &Collector) -> Result<(), String> {
    if let Some(path) = value_of(args, "--trace-out") {
        std::fs::write(&path, export::chrome_trace(collector))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = value_of(args, "--metrics-out") {
        std::fs::write(&path, export::jsonl(collector))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn run_batch(args: &[String]) -> Result<(), String> {
    let files = positionals(args)?;
    if files.is_empty() {
        return Err(
            "usage: phc batch INPUT1.pauli INPUT2.pauli … [--backend B] [--scheduler S] \
             [--threads N] [--intra-threads N] [--json OUT.json] [--cache-dir DIR] \
             [--cache-entries N] [--cache-bytes N] [--trace-out TRACE.json] \
             [--metrics-out METRICS.jsonl] (INPUT may be workload:NAME)"
                .into(),
        );
    }
    let scheduler = parse_scheduler(args)?;
    let mut jobs = Vec::new();
    let mut max_qubits = 0;
    for f in &files {
        let ir = load_input(f)?;
        max_qubits = max_qubits.max(ir.num_qubits());
        jobs.push(CompileJob::named(f.clone(), ir));
    }
    let target = Target::parse_spec(
        value_of(args, "--backend").as_deref().unwrap_or("ft"),
        max_qubits,
    )?;

    // Batch runs always collect: the report's percentiles come from the
    // same telemetry stream --trace-out/--metrics-out export.
    let collector = Arc::new(Collector::new());
    let mut engine = BatchEngine::new(Pipeline::standard(scheduler), target)
        .with_cache_config(parse_cache_config(args)?)
        .with_telemetry(Telemetry::attached(Arc::clone(&collector)));
    if let Some(t) = value_of(args, "--threads") {
        let t: usize = t.parse().map_err(|_| format!("bad thread count `{t}`"))?;
        engine = engine.with_threads(t);
    }
    if let Some(t) = parse_intra_threads(args)? {
        engine = engine.with_intra_threads(t);
    }
    let threads = engine.threads();
    let results = engine.compile_all(jobs);

    let mut failures = 0;
    for r in &results {
        match &r.outcome {
            Ok(o) => {
                let stats = o.compiled.circuit.mapped_stats();
                eprintln!(
                    "{}: CNOT {}, single {}, depth {}{}",
                    r.name,
                    stats.cnot,
                    stats.single,
                    stats.depth,
                    if o.report.cache_hit {
                        " (cache hit)"
                    } else {
                        ""
                    }
                );
            }
            Err(e) => {
                failures += 1;
                eprintln!("{}: error: {e}", r.name);
            }
        }
    }
    let cs = engine.engine().cache_stats();
    eprintln!(
        "{} jobs on {} threads: {} cache hits, {} disk hits, {} coalesced, {} misses, \
         {} evictions",
        results.len(),
        threads,
        cs.hits,
        cs.disk_hits,
        cs.coalesced,
        cs.misses,
        cs.evictions
    );
    let snapshot = collector.metrics();
    if let Some(h) = snapshot.histogram("batch.job_wall_ns") {
        eprintln!(
            "job wall: p50 {:.3} ms, p90 {:.3} ms, p99 {:.3} ms (n={})",
            h.p50 as f64 / 1e6,
            h.p90 as f64 / 1e6,
            h.p99 as f64 / 1e6,
            h.count
        );
    }

    let json = json_report(&results, engine.engine(), threads, &snapshot);
    match value_of(args, "--json") {
        Some(path) if path != "-" => {
            std::fs::write(&path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        _ => print!("{json}"),
    }
    write_exports(args, &collector)?;
    if failures > 0 {
        return Err(format!("{failures} job(s) failed"));
    }
    Ok(())
}

/// `phc serve`: bind the compile service and block until a client drains
/// it with a `shutdown` request.
fn run_serve(args: &[String]) -> Result<(), String> {
    if !positionals(args)?.is_empty() {
        return Err(
            "usage: phc serve [--listen ADDR] [--backend B] [--scheduler S] [--threads N] \
             [--queue N] [--deadline-ms N] [--cache-dir DIR] [--cache-entries N] \
             [--cache-bytes N] [--trace-out TRACE.json] [--metrics-out METRICS.jsonl]"
                .into(),
        );
    }
    let scheduler = parse_scheduler(args)?;
    // The server's default target; per-request `backend` specs override it.
    let target = Target::parse_spec(value_of(args, "--backend").as_deref().unwrap_or("ft"), 0)?;

    let collector = Arc::new(Collector::new());
    let mut engine = BatchEngine::new(Pipeline::standard(scheduler), target)
        .with_cache_config(parse_cache_config(args)?)
        .with_telemetry(Telemetry::attached(Arc::clone(&collector)));
    if let Some(t) = value_of(args, "--threads") {
        let t: usize = t.parse().map_err(|_| format!("bad thread count `{t}`"))?;
        engine = engine.with_threads(t);
    }
    if let Some(t) = parse_intra_threads(args)? {
        engine = engine.with_intra_threads(t);
    }

    let mut config = ServeConfig::default();
    if let Some(q) = value_of(args, "--queue") {
        config.queue_depth = q.parse().map_err(|_| format!("bad --queue `{q}`"))?;
    }
    if let Some(ms) = value_of(args, "--deadline-ms") {
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad --deadline-ms `{ms}`"))?;
        config.default_deadline = Some(Duration::from_millis(ms));
    }

    let listen = value_of(args, "--listen").unwrap_or_else(|| "127.0.0.1:0".into());
    let server =
        Server::bind(&*listen, engine, config).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    // Machine-parseable: scripts read this line to learn the ephemeral port.
    println!(
        "{}",
        Json::obj([
            ("type", Json::str("listening")),
            ("addr", Json::str(server.local_addr().to_string())),
        ])
        .to_compact()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let stats = server.run();
    eprintln!(
        "drained: {} connections, {} requests ({} completed, {} rejected, {} deadline misses)",
        stats.connections, stats.requests, stats.completed, stats.rejected, stats.deadline_misses
    );
    write_exports(args, &collector)?;
    Ok(())
}

/// `phc submit`: send compile requests to a running server and stream the
/// response lines to stdout as they arrive.
fn run_submit(args: &[String]) -> Result<(), String> {
    let usage = "usage: phc submit ADDR INPUT1.pauli … [--backend B] [--scheduler S] \
                 [--deadline-ms N] [--artifact] [--stats] [--shutdown]";
    let pos = positionals(args)?;
    let Some((addr, files)) = pos.split_first() else {
        return Err(usage.into());
    };
    let want_stats = flag_present(args, "--stats");
    let want_shutdown = flag_present(args, "--shutdown");
    if files.is_empty() && !want_stats && !want_shutdown {
        return Err(usage.into());
    }
    let scheduler = match value_of(args, "--scheduler") {
        None => None,
        Some(spec) => Some(proto::parse_scheduler_spec(&spec)?),
    };
    let backend = value_of(args, "--backend");
    let deadline_ms = match value_of(args, "--deadline-ms") {
        None => None,
        Some(ms) => Some(
            ms.parse()
                .map_err(|_| format!("bad --deadline-ms `{ms}`"))?,
        ),
    };

    let mut client =
        Client::connect(&**addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let io_err = |e: std::io::Error| format!("{addr}: {e}");

    // Submit everything up front; reports stream back in completion order.
    let mut pending: std::collections::HashSet<u64> = (1..=files.len() as u64).collect();
    for (i, f) in files.iter().enumerate() {
        let ir = std::fs::read_to_string(f).map_err(|e| format!("cannot read {f}: {e}"))?;
        client
            .send(&Request::Compile(CompileRequest {
                id: i as u64 + 1,
                name: Some(f.clone()),
                ir,
                backend: backend.clone(),
                scheduler,
                deadline_ms,
                artifact: flag_present(args, "--artifact"),
            }))
            .map_err(io_err)?;
    }

    let mut failures = 0;
    while !pending.is_empty() {
        let Some(line) = client.recv_line().map_err(io_err)? else {
            break;
        };
        println!("{line}");
        let v = Json::parse(&line).map_err(|e| format!("bad response line: {e}"))?;
        if v.get("type").and_then(Json::as_str) == Some("report") {
            if let Some(id) = v.get("id").and_then(Json::as_u64) {
                pending.remove(&id);
            }
            if v.get("ok").and_then(Json::as_bool) != Some(true) {
                failures += 1;
            }
        }
    }

    if want_stats {
        client.send(&Request::Stats).map_err(io_err)?;
        if let Some(line) = client.recv_line().map_err(io_err)? {
            println!("{line}");
        }
    }
    if want_shutdown {
        client.send(&Request::Shutdown).map_err(io_err)?;
        if let Some(line) = client.recv_line().map_err(io_err)? {
            println!("{line}");
        }
    }
    client.finish().map_err(io_err)?;
    // Drain the goodbye (and anything else the server had buffered).
    while let Some(line) = client.recv_line().map_err(io_err)? {
        println!("{line}");
    }

    if !pending.is_empty() {
        return Err(format!(
            "server closed with {} report(s) outstanding",
            pending.len()
        ));
    }
    if failures > 0 {
        return Err(format!("{failures} job(s) failed"));
    }
    Ok(())
}

fn run_single(args: &[String]) -> Result<(), String> {
    let input = positionals(args)?.into_iter().next().ok_or(
        "usage: phc INPUT.pauli [--backend ft|manhattan|melbourne|linear:N|grid:RxC] \
         [--scheduler auto|gco|do] [--intra-threads N] [--qasm OUT.qasm] [--report] \
         [--trace-out TRACE.json] [--metrics-out METRICS.jsonl] (INPUT may be workload:NAME)\n\
         \x20      phc batch INPUT… [--threads N] [--json OUT.json]",
    )?;
    let ir = load_input(&input)?;
    eprintln!(
        "parsed {}: {} blocks, {} strings, {} qubits",
        input,
        ir.num_blocks(),
        ir.total_strings(),
        ir.num_qubits()
    );

    let scheduler = parse_scheduler(args)?;
    let target = Target::parse_spec(
        value_of(args, "--backend").as_deref().unwrap_or("ft"),
        ir.num_qubits(),
    )?;

    let collector = Arc::new(Collector::new());
    let mut engine = Engine::new(Pipeline::standard(scheduler), target)
        .with_telemetry(Telemetry::attached(Arc::clone(&collector)));
    if let Some(t) = parse_intra_threads(args)? {
        engine = engine.with_intra_threads(t);
    }
    let out = engine.compile(&ir).map_err(|e| e.to_string())?;
    let stats = out.compiled.circuit.mapped_stats();
    println!(
        // `Auto` resolves per program — print the scheduler that actually ran.
        "scheduler={:?} backend={} : CNOT {}, single {}, total {}, depth {}",
        scheduler.resolve(&ir),
        value_of(args, "--backend").unwrap_or_else(|| "ft".into()),
        stats.cnot,
        stats.single,
        stats.total,
        stats.depth
    );
    if flag_present(args, "--report") {
        print!("{}", out.report.table());
    }
    if let (Some(init), Some(fin)) = (&out.compiled.initial_l2p, &out.compiled.final_l2p) {
        println!("initial layout: {init:?}");
        println!("final   layout: {fin:?}");
    }
    if let Some(path) = value_of(args, "--qasm") {
        let qasm = to_qasm(
            &out.compiled.circuit.decompose_swaps(),
            QasmOptions::default(),
        );
        std::fs::write(&path, qasm).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    write_exports(args, &collector)?;
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("batch") => run_batch(&args[1..]),
        Some("serve") => run_serve(&args[1..]),
        Some("submit") => run_submit(&args[1..]),
        _ => run_single(&args),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("phc: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_skip_flag_values_from_the_table() {
        let args = argv(&[
            "a.pauli",
            "--scheduler",
            "do",
            "b.pauli",
            "--trace-out",
            "t.json",
            "--report",
            "c.pauli",
        ]);
        assert_eq!(
            positionals(&args).unwrap(),
            ["a.pauli", "b.pauli", "c.pauli"]
        );
    }

    #[test]
    fn unknown_flags_are_hard_errors_not_inputs() {
        let err = positionals(&argv(&["a.pauli", "--trace_out", "t.json"])).unwrap_err();
        assert!(err.contains("unknown flag `--trace_out`"), "{err}");
    }

    #[test]
    fn value_flag_without_value_is_an_error() {
        let err = positionals(&argv(&["a.pauli", "--json"])).unwrap_err();
        assert!(err.contains("--json requires a value"), "{err}");
    }

    #[test]
    fn every_flag_in_the_table_is_unique() {
        for (i, (a, _)) in FLAGS.iter().enumerate() {
            assert!(
                FLAGS.iter().skip(i + 1).all(|(b, _)| a != b),
                "duplicate flag {a}"
            );
        }
    }
}
