//! The single-program engine: validate → cache lookup → pipeline →
//! cache fill, with full per-pass instrumentation.

use std::sync::Arc;

use paulihedral::ir::PauliIR;
use paulihedral::synth::par::{Intra, ShardObserver};
use paulihedral::{validate, CompileError, Compiled, Scheduler};
use ph_telemetry::Telemetry;

use crate::cache::{
    fingerprint_ir, CacheConfig, CacheEntry, CacheOutcome, CacheStats, CompileCache, Fingerprint,
};
use crate::fault::{Fault, WorkerFault};
use crate::pass::{PassContext, Target};
use crate::pipeline::Pipeline;
use crate::report::{CompileReport, PassRecord};
use crate::unit::CompileUnit;

/// What one compilation returns: the (shared) artifact and its report.
#[derive(Clone, Debug)]
pub struct EngineOutput {
    /// The compiled kernel. `Arc` because cache hits share one allocation.
    pub compiled: Arc<Compiled>,
    /// Per-pass instrumentation for this request.
    pub report: CompileReport,
}

/// A compilation engine: one pipeline, one default target, one cache.
///
/// The engine is `Sync` — `&Engine` is all the batch driver's worker
/// threads need.
#[derive(Debug)]
pub struct Engine {
    pipeline: Pipeline,
    target: Target,
    cache: CompileCache,
    cache_enabled: bool,
    telemetry: Telemetry,
    intra_threads: usize,
    fault: Fault,
}

/// Wraps each parallel synthesis shard in a `shard:<stage>` telemetry
/// span. Shards run on scoped worker threads with fresh span stacks, so
/// each shard shows up as a per-thread row in the exported trace.
struct ShardSpans<'t> {
    telemetry: &'t Telemetry,
}

impl ShardObserver for ShardSpans<'_> {
    fn shard(&self, stage: &str, shard: usize, work: &mut dyn FnMut()) {
        let span = self
            .telemetry
            .span_with(format!("shard:{stage}"), vec![("shard", shard.into())]);
        work();
        drop(span);
    }
}

impl Engine {
    /// An engine with an unbounded, memory-only cache (see
    /// [`Engine::with_cache_config`] for bounds and a disk tier).
    pub fn new(pipeline: Pipeline, target: Target) -> Engine {
        Engine {
            pipeline,
            target,
            cache: CompileCache::new(),
            cache_enabled: true,
            telemetry: Telemetry::disabled(),
            intra_threads: 1,
            fault: Fault::disabled(),
        }
    }

    /// Sets the intra-compile worker budget for the synthesis pass: `1`
    /// (the default) keeps synthesis sequential, `0` uses one worker per
    /// available CPU, any other value is taken literally. Purely a
    /// wall-clock knob — the artifact is bit-identical for every setting,
    /// so it is excluded from cache keys and cached artifacts stay
    /// shareable across settings. Builder-style.
    pub fn with_intra_threads(mut self, intra_threads: usize) -> Engine {
        self.intra_threads = intra_threads;
        self
    }

    /// The configured intra-compile worker budget (see
    /// [`Engine::with_intra_threads`]).
    pub fn intra_threads(&self) -> usize {
        self.intra_threads
    }

    /// Replaces the cache with an empty one using `config` (entry/byte
    /// budgets and an optional persistent directory). Builder-style; call
    /// before the first compilation.
    pub fn with_cache_config(mut self, config: CacheConfig) -> Engine {
        self.cache = CompileCache::with_config(config);
        self.cache.set_telemetry(self.telemetry.clone());
        self.cache.set_fault(self.fault.clone());
        self
    }

    /// Attaches a fault-injection handle ([`crate::fault`]) to the engine
    /// and its cache: compiles consult the worker seam (injected panics
    /// and delays), the disk tier consults the disk seam. Builder-style;
    /// the default [`Fault::disabled`] handle injects nothing and costs
    /// one `Option` check per site.
    pub fn with_fault(mut self, fault: Fault) -> Engine {
        self.cache.set_fault(fault.clone());
        self.fault = fault;
        self
    }

    /// The engine's fault-injection handle (disabled unless
    /// [`Engine::with_fault`] attached one).
    pub fn fault(&self) -> &Fault {
        &self.fault
    }

    /// Attaches a telemetry handle: one span per request (`compile`) and
    /// per pass (the pass's name), cache events on the shared cache, and
    /// latency histograms (`compile.total_ns`, `pass.<name>_ns`).
    /// Builder-style; the default is the zero-cost
    /// [`Telemetry::disabled`] sink.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Engine {
        self.cache.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// The engine's telemetry handle (disabled unless
    /// [`Engine::with_telemetry`] attached one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Disables the compilation cache (for benchmarking flows that must
    /// measure real compile time on every request). Also skips request
    /// fingerprinting entirely — reports carry `key: 0`.
    pub fn without_cache(mut self) -> Engine {
        self.cache_enabled = false;
        self
    }

    /// The engine's pipeline.
    pub fn pipeline(&self) -> &Pipeline {
        &self.pipeline
    }

    /// The engine's default target.
    pub fn target(&self) -> &Target {
        &self.target
    }

    /// Cache hit/miss/eviction/byte counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The cache's configuration (budgets, disk tier, degradation knobs).
    pub fn cache_config(&self) -> &CacheConfig {
        self.cache.config()
    }

    /// Compiles one program against the default target.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] for an empty program or an unusable SC
    /// device (see [`paulihedral::validate`]).
    pub fn compile(&self, ir: &PauliIR) -> Result<EngineOutput, CompileError> {
        self.compile_with(ir, None, None)
    }

    /// Compiles one program with optional per-request target and
    /// scheduler overrides (the batch driver's entry point).
    ///
    /// Concurrent calls with the same request key compile once: one
    /// caller runs the pipeline while the rest wait and share its `Arc`
    /// (counted in [`CacheStats::coalesced`]).
    ///
    /// # Errors
    ///
    /// See [`Engine::compile`].
    pub fn compile_with(
        &self,
        ir: &PauliIR,
        target: Option<&Target>,
        scheduler: Option<Scheduler>,
    ) -> Result<EngineOutput, CompileError> {
        self.compile_budgeted(ir, target, scheduler, self.intra_threads)
    }

    /// [`Engine::compile_with`] with an explicit intra-compile worker
    /// budget overriding the engine's configured knob — the batch driver
    /// uses this to divide the machine between concurrent jobs.
    pub(crate) fn compile_budgeted(
        &self,
        ir: &PauliIR,
        target: Option<&Target>,
        scheduler: Option<Scheduler>,
        intra_threads: usize,
    ) -> Result<EngineOutput, CompileError> {
        // The worker fault seam sits at the very top of the compile path:
        // an injected panic unwinds through `compile_caught` exactly like
        // an organic pass bug would, and an injected delay models a slow
        // compile without touching the passes.
        match self.fault.worker() {
            WorkerFault::Panic => panic!("injected fault: worker panic"),
            WorkerFault::Delay(d) => std::thread::sleep(d),
            WorkerFault::None => {}
        }
        // The request span both traces the compile and is its timer: its
        // wall time becomes `CompileReport::total`.
        let span = self.telemetry.span("compile");
        let target = target.unwrap_or(&self.target);
        validate(ir, &target.as_backend())?;
        let observer = ShardSpans {
            telemetry: &self.telemetry,
        };
        let mut intra = Intra::new(intra_threads);
        if self.telemetry.is_enabled() {
            intra = intra.with_observer(&observer);
        }
        let ctx = PassContext {
            target,
            scheduler_override: scheduler,
            intra,
        };

        if !self.cache_enabled {
            // No cache ⇒ no reason to pay IR fingerprinting on every
            // request; benchmark flows measure pure compile time.
            let entry = self.execute(ir, &ctx, 0)?;
            let mut report = entry.report;
            report.total = span.finish();
            self.telemetry
                .record_duration("compile.total_ns", report.total);
            return Ok(EngineOutput {
                compiled: entry.compiled,
                report,
            });
        }

        let key = self.request_key(ir, &ctx);
        let (entry, outcome) = self
            .cache
            .get_or_compute(key, || self.execute(ir, &ctx, key))?;
        let mut report = entry.report;
        report.cache_hit = outcome != CacheOutcome::Compiled;
        report.total = span.finish();
        self.telemetry
            .record_duration("compile.total_ns", report.total);
        Ok(EngineOutput {
            compiled: entry.compiled,
            report,
        })
    }

    /// Like [`Engine::compile_with`], but panic-isolating: a panicking
    /// pass (or a bug anywhere under the compile path) is caught and
    /// returned as [`CompileError::Panicked`] instead of unwinding into
    /// the caller. This is what the batch driver and the compile service
    /// use so one bad job cannot tear down a worker thread — and the
    /// single-flight cache's failure-handover path already treats a
    /// leader's unwind as a retryable failure, so coalesced waiters are
    /// unaffected.
    ///
    /// # Errors
    ///
    /// Everything [`Engine::compile_with`] returns, plus
    /// [`CompileError::Panicked`].
    pub fn compile_caught(
        &self,
        ir: &PauliIR,
        target: Option<&Target>,
        scheduler: Option<Scheduler>,
    ) -> Result<EngineOutput, CompileError> {
        self.compile_caught_budgeted(ir, target, scheduler, self.intra_threads)
    }

    /// [`Engine::compile_caught`] with an explicit intra-compile worker
    /// budget (see [`Engine::compile_budgeted`]).
    pub(crate) fn compile_caught_budgeted(
        &self,
        ir: &PauliIR,
        target: Option<&Target>,
        scheduler: Option<Scheduler>,
        intra_threads: usize,
    ) -> Result<EngineOutput, CompileError> {
        // `&Engine` + `&PauliIR` are only conditionally unwind-safe, but
        // the shared state they reach (the cache) is designed for it: its
        // critical sections swap complete values and its locks recover
        // from poisoning, so observing post-panic state is sound.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.compile_budgeted(ir, target, scheduler, intra_threads)
        }))
        // `as_ref` reaches the payload itself; `&payload` would coerce the
        // `Box` into the `dyn Any` and every downcast below would miss.
        .unwrap_or_else(|payload| Err(CompileError::Panicked(panic_message(payload.as_ref()))))
    }

    /// Runs the pipeline over a fresh unit (the cache-miss path).
    fn execute(
        &self,
        ir: &PauliIR,
        ctx: &PassContext<'_>,
        key: u64,
    ) -> Result<CacheEntry, CompileError> {
        let span = self.telemetry.span("pipeline");
        let mut unit = CompileUnit::new(ir.clone());
        let mut records: Vec<PassRecord> = Vec::with_capacity(self.pipeline.passes().len());
        for pass in self.pipeline.passes() {
            let before = unit.stats();
            // The pass span is also the pass timer (a failing pass still
            // records its end event when the guard drops).
            let pass_span = self.telemetry.span(pass.name());
            let note = pass.run(&mut unit, ctx)?;
            let wall = pass_span.finish();
            self.telemetry
                .record_duration(&format!("pass.{}_ns", pass.name()), wall);
            records.push(PassRecord {
                name: pass.name().to_string(),
                wall,
                before,
                after: unit.stats(),
                note,
            });
        }
        Ok(CacheEntry {
            compiled: Arc::new(unit.into_compiled()),
            report: CompileReport {
                passes: records,
                total: span.finish(),
                cache_hit: false,
                key,
            },
        })
    }

    /// The content-addressed key of a request: canonical hashes of the IR,
    /// the pipeline signature (with overrides applied), and the target.
    fn request_key(&self, ir: &PauliIR, ctx: &PassContext<'_>) -> u64 {
        let mut h = Fingerprint::new();
        fingerprint_ir(ir, &mut h);
        h.write_str(&self.pipeline.signature(ctx));
        ctx.target.fingerprint(&mut h);
        h.finish()
    }
}

/// Extracts the human-readable message from a panic payload (`&str` and
/// `String` payloads cover `panic!`, `assert!`, `unwrap`, and friends).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
