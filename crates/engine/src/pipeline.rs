//! Composing passes into pipelines.

use std::sync::Arc;

use paulihedral::Scheduler;

use crate::pass::{FusionPass, Pass, PassContext, PeepholePass, SchedulePass, SynthesisPass};

/// An ordered sequence of [`Pass`]es, shared (cheaply cloned) across batch
/// worker threads.
#[derive(Clone)]
pub struct Pipeline {
    passes: Vec<Arc<dyn Pass>>,
}

impl Pipeline {
    /// The standard three-pass pipeline — schedule, synthesize, peephole —
    /// which reproduces [`paulihedral::compile`] exactly.
    pub fn standard(scheduler: Scheduler) -> Pipeline {
        Pipeline::builder()
            .schedule(scheduler)
            .synthesize()
            .peephole()
            .build()
    }

    /// The standard pipeline with adaptive (§7) scheduler selection.
    pub fn auto() -> Pipeline {
        Pipeline::standard(Scheduler::Auto)
    }

    /// An empty builder for custom pipelines.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder { passes: Vec::new() }
    }

    /// The passes, in execution order.
    pub fn passes(&self) -> &[Arc<dyn Pass>] {
        &self.passes
    }

    /// The cache signature of this pipeline under `ctx`: the `|`-joined
    /// pass signatures. Part of the content-addressed cache key.
    pub fn signature(&self, ctx: &PassContext<'_>) -> String {
        let sigs: Vec<String> = self.passes.iter().map(|p| p.signature(ctx)).collect();
        sigs.join("|")
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        f.debug_struct("Pipeline").field("passes", &names).finish()
    }
}

/// Builds a [`Pipeline`] pass by pass.
pub struct PipelineBuilder {
    passes: Vec<Arc<dyn Pass>>,
}

impl PipelineBuilder {
    /// Appends a scheduling pass.
    pub fn schedule(self, scheduler: Scheduler) -> PipelineBuilder {
        self.pass(SchedulePass { scheduler })
    }

    /// Appends the block-wise synthesis pass.
    pub fn synthesize(self) -> PipelineBuilder {
        self.pass(SynthesisPass)
    }

    /// Appends the commutation-aware peephole clean-up.
    pub fn peephole(self) -> PipelineBuilder {
        self.pass(PeepholePass)
    }

    /// Appends single-qubit gate-run fusion (not in the standard pipeline).
    pub fn fuse_single_qubit_runs(self) -> PipelineBuilder {
        self.pass(FusionPass)
    }

    /// Appends an arbitrary custom pass.
    pub fn pass(mut self, pass: impl Pass + 'static) -> PipelineBuilder {
        self.passes.push(Arc::new(pass));
        self
    }

    /// Finishes the pipeline.
    pub fn build(self) -> Pipeline {
        Pipeline {
            passes: self.passes,
        }
    }
}
