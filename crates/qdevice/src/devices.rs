//! Concrete device topologies used in the evaluation.

use crate::CouplingMap;

/// IBM's 65-qubit Manhattan (Hummingbird r2) heavy-hexagon lattice — the SC
/// backend of the paper's main evaluation (§6.1).
///
/// The edge list is the published heavy-hex connectivity: five rows of
/// linear chains joined by sparse vertical connectors, average degree ≈ 2.2
/// ("very sparse qubit connection", §6.3).
pub fn manhattan_65() -> CouplingMap {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    // Horizontal chains.
    let rows: [&[usize]; 5] = [
        &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9],
        &[13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23],
        &[27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 37],
        &[41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51],
        &[55, 56, 57, 58, 59, 60, 61, 62, 63, 64],
    ];
    for row in rows {
        for w in row.windows(2) {
            edges.push((w[0], w[1]));
        }
    }
    // Vertical connectors (heavy-hex spokes).
    edges.extend_from_slice(&[
        (0, 10),
        (4, 11),
        (8, 12),
        (10, 13),
        (11, 17),
        (12, 21),
        (15, 24),
        (19, 25),
        (23, 26),
        (24, 29),
        (25, 33),
        (26, 37),
        (27, 38),
        (31, 39),
        (35, 40),
        (38, 41),
        (39, 45),
        (40, 49),
        (43, 52),
        (47, 53),
        (51, 54),
        (52, 56),
        (53, 60),
        (54, 64),
    ]);
    CouplingMap::new(65, &edges)
}

/// IBM's 16-qubit Melbourne chip — the device of the real-system study
/// (§6.4) — modeled as its published 2×8 ladder: two length-8 chains with
/// rung couplers.
pub fn melbourne_16() -> CouplingMap {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..7 {
        edges.push((i, i + 1)); // top row 0..7
        edges.push((8 + i, 8 + i + 1)); // bottom row 8..15
    }
    for i in 0..8 {
        edges.push((i, 15 - i)); // rungs: 0-15, 1-14, …, 7-8
    }
    CouplingMap::new(16, &edges)
}

/// A linear (path) architecture on `n` qubits, as in Fig. 4(b).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn linear(n: usize) -> CouplingMap {
    assert!(n > 0, "device needs at least one qubit");
    let edges: Vec<_> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    CouplingMap::new(n, &edges)
}

/// A `rows × cols` rectangular grid.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> CouplingMap {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                edges.push((i, i + 1));
            }
            if r + 1 < rows {
                edges.push((i, i + cols));
            }
        }
    }
    CouplingMap::new(rows * cols, &edges)
}

/// A generic heavy-hexagon lattice with `rows` horizontal chains of
/// `cols` qubits joined by sparse vertical spokes (the IBM Falcon /
/// Hummingbird / Eagle topology family; [`manhattan_65`] is the concrete
/// 65-qubit instance).
///
/// Spokes attach every 4th column, offset by 2 on alternating row gaps, so
/// every qubit keeps degree ≤ 3.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols < 5`.
pub fn heavy_hex(rows: usize, cols: usize) -> CouplingMap {
    assert!(
        rows > 0 && cols >= 5,
        "heavy-hex needs rows ≥ 1 and cols ≥ 5"
    );
    // Row r occupies ids [r*(cols+spokes) ..]; simpler: lay out row qubits
    // first, then spoke qubits.
    let row_base = |r: usize| r * cols;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols - 1 {
            edges.push((row_base(r) + c, row_base(r) + c + 1));
        }
    }
    let mut next = rows * cols;
    for r in 0..rows.saturating_sub(1) {
        let offset = if r % 2 == 0 { 0 } else { 2 };
        let mut c = offset;
        while c < cols {
            let spoke = next;
            next += 1;
            edges.push((row_base(r) + c, spoke));
            edges.push((spoke, row_base(r + 1) + c));
            c += 4;
        }
    }
    CouplingMap::new(next, &edges)
}

/// A fully connected device (used to model backends where routing is free,
/// e.g. the FT backend when one still wants a `CouplingMap` interface).
pub fn fully_connected(n: usize) -> CouplingMap {
    let mut edges = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            edges.push((a, b));
        }
    }
    CouplingMap::new(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_the_published_lattice() {
        let m = manhattan_65();
        assert_eq!(m.num_qubits(), 65);
        assert_eq!(m.edges().len(), 72);
        assert!(m.is_connected());
        // Heavy-hex: max degree 3.
        assert!((0..65).all(|q| m.degree(q) <= 3));
        // Spot-check known couplers.
        assert!(m.has_edge(0, 10));
        assert!(m.has_edge(10, 13));
        assert!(!m.has_edge(9, 13));
    }

    #[test]
    fn melbourne_is_a_2x8_ladder() {
        let m = melbourne_16();
        assert_eq!(m.num_qubits(), 16);
        assert_eq!(m.edges().len(), 22);
        assert!(m.is_connected());
        assert!(m.has_edge(0, 15));
        assert!(m.has_edge(7, 8));
        assert!(!m.has_edge(0, 8));
    }

    #[test]
    fn linear_distances() {
        let m = linear(10);
        assert_eq!(m.distance(0, 9), 9);
        assert_eq!(m.edges().len(), 9);
    }

    #[test]
    fn grid_shape() {
        let m = grid(5, 6);
        assert_eq!(m.num_qubits(), 30);
        assert_eq!(m.edges().len(), 5 * 5 + 4 * 6);
        assert!(m.is_connected());
    }

    #[test]
    fn fully_connected_has_unit_distances() {
        let m = fully_connected(5);
        assert_eq!(m.edges().len(), 10);
        assert_eq!(m.distance(0, 4), 1);
    }

    #[test]
    fn heavy_hex_is_connected_low_degree() {
        for (rows, cols) in [(2, 9), (5, 11), (3, 5)] {
            let m = heavy_hex(rows, cols);
            assert!(m.is_connected(), "{rows}x{cols}");
            assert!(
                (0..m.num_qubits()).all(|q| m.degree(q) <= 3),
                "{rows}x{cols}"
            );
            assert!(m.num_qubits() > rows * cols, "spokes exist");
        }
    }

    #[test]
    fn heavy_hex_scales_toward_eagle_sizes() {
        // A 7x15 heavy-hex lands in the 127-qubit class.
        let m = heavy_hex(7, 15);
        assert!((120..140).contains(&m.num_qubits()), "{}", m.num_qubits());
    }
}
