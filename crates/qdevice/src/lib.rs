//! Hardware models for the Paulihedral reproduction.
//!
//! The SC-backend pass (paper Alg. 3) is mapping-aware: it needs the device
//! coupling graph, per-edge error rates, and an initial layout on the most
//! connected subgraph. This crate provides:
//!
//! * [`CouplingMap`] — an undirected device graph with all-pairs distances,
//!   error-weighted shortest paths, and most-connected-subgraph search,
//! * [`devices`] — the topologies used in the evaluation (IBM Manhattan-65
//!   heavy-hex, Melbourne-16 ladder) plus generic linear/grid/heavy-hex
//!   generators,
//! * [`Layout`] — the logical↔physical qubit bijection tracked through
//!   routing,
//! * [`NoiseModel`] — synthetic calibration data and the ESP metric used by
//!   the real-system study (Fig. 11).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coupling;
pub mod devices;
mod layout;
mod noise;

pub use coupling::CouplingMap;
pub use layout::Layout;
pub use noise::NoiseModel;
