//! Device coupling graphs.

use std::collections::VecDeque;

/// An undirected qubit-connectivity graph with precomputed all-pairs
/// hop distances.
///
/// # Example
///
/// ```
/// use qdevice::CouplingMap;
///
/// let line = CouplingMap::new(4, &[(0, 1), (1, 2), (2, 3)]);
/// assert_eq!(line.distance(0, 3), 3);
/// assert!(line.has_edge(2, 1));
/// assert_eq!(line.shortest_path(0, 2, |_, _| 1.0), vec![0, 1, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct CouplingMap {
    n: usize,
    adj: Vec<Vec<usize>>,
    edges: Vec<(usize, usize)>,
    dist: Vec<Vec<u32>>,
}

impl CouplingMap {
    /// Builds a coupling map from an undirected edge list.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `>= n` or is a self-loop.
    pub fn new(n: usize, edges: &[(usize, usize)]) -> CouplingMap {
        let mut adj = vec![Vec::new(); n];
        let mut dedup = Vec::new();
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} qubits");
            assert_ne!(a, b, "self-loop on qubit {a}");
            if !adj[a].contains(&b) {
                adj[a].push(b);
                adj[b].push(a);
                dedup.push((a.min(b), a.max(b)));
            }
        }
        let dist = all_pairs_bfs(n, &adj);
        CouplingMap {
            n,
            adj,
            edges: dedup,
            dist,
        }
    }

    /// The number of physical qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The undirected edges `(min, max)`.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// The neighbors of physical qubit `p`.
    pub fn neighbors(&self, p: usize) -> &[usize] {
        &self.adj[p]
    }

    /// Whether `a` and `b` are directly coupled.
    #[inline]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.adj[a].contains(&b)
    }

    /// Hop distance between two physical qubits (`u32::MAX` if disconnected).
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.dist[a][b]
    }

    /// The degree of physical qubit `p`.
    pub fn degree(&self, p: usize) -> usize {
        self.adj[p].len()
    }

    /// Lowest-cost path from `a` to `b` under a per-edge cost function
    /// (Dijkstra). Used by Alg. 3 line 6 ("shortest path (lowest error
    /// rate)"). Returns the node sequence including both endpoints; empty if
    /// unreachable.
    pub fn shortest_path(
        &self,
        a: usize,
        b: usize,
        mut cost: impl FnMut(usize, usize) -> f64,
    ) -> Vec<usize> {
        if a == b {
            return vec![a];
        }
        let mut best = vec![f64::INFINITY; self.n];
        let mut prev = vec![usize::MAX; self.n];
        let mut done = vec![false; self.n];
        best[a] = 0.0;
        loop {
            // Linear-scan extract-min: device graphs are small (≤ a few
            // hundred qubits), so this beats a binary heap in practice.
            let mut u = usize::MAX;
            let mut ub = f64::INFINITY;
            for v in 0..self.n {
                if !done[v] && best[v] < ub {
                    ub = best[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                return Vec::new();
            }
            if u == b {
                break;
            }
            done[u] = true;
            for &v in &self.adj[u] {
                let c = best[u] + cost(u, v).max(1e-12);
                if c < best[v] {
                    best[v] = c;
                    prev[v] = u;
                }
            }
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Lowest-cost path from `from` to *any* member of `targets`; used when
    /// attaching an active qubit to a growing embedded tree.
    pub fn shortest_path_to_set(
        &self,
        from: usize,
        targets: &[bool],
        mut cost: impl FnMut(usize, usize) -> f64,
    ) -> Vec<usize> {
        if targets[from] {
            return vec![from];
        }
        let mut best = vec![f64::INFINITY; self.n];
        let mut prev = vec![usize::MAX; self.n];
        let mut done = vec![false; self.n];
        best[from] = 0.0;
        let goal = loop {
            let mut u = usize::MAX;
            let mut ub = f64::INFINITY;
            for v in 0..self.n {
                if !done[v] && best[v] < ub {
                    ub = best[v];
                    u = v;
                }
            }
            if u == usize::MAX {
                return Vec::new();
            }
            if targets[u] {
                break u;
            }
            done[u] = true;
            for &v in &self.adj[u] {
                let c = best[u] + cost(u, v).max(1e-12);
                if c < best[v] {
                    best[v] = c;
                    prev[v] = u;
                }
            }
        };
        let mut path = vec![goal];
        let mut cur = goal;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// A greedy approximation of the most connected `k`-node subgraph:
    /// start from the highest-degree node and repeatedly add the outside
    /// node with the most edges into the current set (ties: higher total
    /// degree). This seeds the initial layout of Alg. 3 line 1.
    ///
    /// # Panics
    ///
    /// Panics if `k > num_qubits()`.
    pub fn most_connected_subgraph(&self, k: usize) -> Vec<usize> {
        assert!(
            k <= self.n,
            "requested {k} nodes from a {}-qubit device",
            self.n
        );
        if k == 0 {
            return Vec::new();
        }
        let seed = (0..self.n).max_by_key(|&p| self.adj[p].len()).unwrap_or(0);
        let mut chosen = vec![false; self.n];
        let mut set = vec![seed];
        chosen[seed] = true;
        while set.len() < k {
            let next = (0..self.n)
                .filter(|&p| !chosen[p])
                .max_by_key(|&p| {
                    let inside = self.adj[p].iter().filter(|&&q| chosen[q]).count();
                    (inside, self.adj[p].len())
                })
                .expect("k <= n guarantees a candidate");
            chosen[next] = true;
            set.push(next);
        }
        set
    }

    /// Connected components of the subgraph induced by `nodes`.
    pub fn components_within(&self, nodes: &[usize]) -> Vec<Vec<usize>> {
        let mut in_set = vec![false; self.n];
        for &p in nodes {
            in_set[p] = true;
        }
        let mut seen = vec![false; self.n];
        let mut comps = Vec::new();
        for &start in nodes {
            if seen[start] {
                continue;
            }
            let mut comp = Vec::new();
            let mut queue = VecDeque::from([start]);
            seen[start] = true;
            while let Some(u) = queue.pop_front() {
                comp.push(u);
                for &v in &self.adj[u] {
                    if in_set[v] && !seen[v] {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }

    /// Whether the whole device graph is connected.
    pub fn is_connected(&self) -> bool {
        self.n == 0
            || self
                .components_within(&(0..self.n).collect::<Vec<_>>())
                .len()
                == 1
    }
}

fn all_pairs_bfs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<u32>> {
    let mut dist = vec![vec![u32::MAX; n]; n];
    for (s, row) in dist.iter_mut().enumerate() {
        row[s] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if row[v] == u32::MAX {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> CouplingMap {
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        CouplingMap::new(n, &edges)
    }

    #[test]
    fn distances_on_a_line() {
        let m = line(5);
        assert_eq!(m.distance(0, 4), 4);
        assert_eq!(m.distance(2, 2), 0);
        assert_eq!(m.distance(3, 1), 2);
    }

    #[test]
    fn duplicate_edges_are_deduped() {
        let m = CouplingMap::new(3, &[(0, 1), (1, 0), (1, 2)]);
        assert_eq!(m.edges().len(), 2);
        assert_eq!(m.degree(1), 2);
    }

    #[test]
    fn shortest_path_prefers_low_cost() {
        // Square 0-1-2-3-0; make edge (0,1) expensive.
        let m = CouplingMap::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let path = m.shortest_path(0, 2, |a, b| {
            if (a.min(b), a.max(b)) == (0, 1) {
                10.0
            } else {
                1.0
            }
        });
        assert_eq!(path, vec![0, 3, 2]);
    }

    #[test]
    fn shortest_path_to_set_finds_nearest_target() {
        let m = line(6);
        let mut targets = vec![false; 6];
        targets[0] = true;
        targets[4] = true;
        let path = m.shortest_path_to_set(3, &targets, |_, _| 1.0);
        assert_eq!(path, vec![3, 4]);
    }

    #[test]
    fn most_connected_subgraph_is_connected_and_dense() {
        // A 3x3 grid: the best 4-node subgraph contains the center.
        let mut edges = Vec::new();
        for r in 0..3 {
            for c in 0..3 {
                let i = r * 3 + c;
                if c + 1 < 3 {
                    edges.push((i, i + 1));
                }
                if r + 1 < 3 {
                    edges.push((i, i + 3));
                }
            }
        }
        let m = CouplingMap::new(9, &edges);
        let set = m.most_connected_subgraph(4);
        assert_eq!(set.len(), 4);
        assert_eq!(m.components_within(&set).len(), 1);
        assert!(
            set.contains(&4),
            "center of the grid should be picked: {set:?}"
        );
    }

    #[test]
    fn components_within_subsets() {
        let m = line(6);
        let comps = m.components_within(&[0, 1, 3, 4, 5]);
        assert_eq!(comps.len(), 2);
        assert!(m.is_connected());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        CouplingMap::new(2, &[(0, 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loops() {
        CouplingMap::new(2, &[(1, 1)]);
    }
}
