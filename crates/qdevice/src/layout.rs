//! Logical↔physical qubit layouts.

use std::fmt;

/// A partial bijection between logical program qubits and physical device
/// qubits, updated as routing SWAPs are inserted.
///
/// # Example
///
/// ```
/// use qdevice::Layout;
///
/// let mut l = Layout::from_l2p(5, vec![2, 0, 3]);
/// assert_eq!(l.phys(1), 0);
/// assert_eq!(l.logical(3), Some(2));
/// l.swap_physical(0, 4); // a routing SWAP moves logical 1 to physical 4
/// assert_eq!(l.phys(1), 4);
/// assert_eq!(l.logical(0), None);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Layout {
    l2p: Vec<usize>,
    p2l: Vec<Option<usize>>,
}

impl Layout {
    /// Builds a layout from the logical→physical vector; physical qubits
    /// not listed hold no logical qubit.
    ///
    /// # Panics
    ///
    /// Panics if a physical index repeats or exceeds `num_physical`.
    pub fn from_l2p(num_physical: usize, l2p: Vec<usize>) -> Layout {
        let mut p2l = vec![None; num_physical];
        for (l, &p) in l2p.iter().enumerate() {
            assert!(p < num_physical, "physical qubit {p} out of range");
            assert!(p2l[p].is_none(), "physical qubit {p} assigned twice");
            p2l[p] = Some(l);
        }
        Layout { l2p, p2l }
    }

    /// The identity layout placing logical `i` on physical `i`.
    ///
    /// # Panics
    ///
    /// Panics if `num_logical > num_physical`.
    pub fn trivial(num_logical: usize, num_physical: usize) -> Layout {
        assert!(
            num_logical <= num_physical,
            "more logical than physical qubits"
        );
        Layout::from_l2p(num_physical, (0..num_logical).collect())
    }

    /// The number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.l2p.len()
    }

    /// The number of physical qubits.
    pub fn num_physical(&self) -> usize {
        self.p2l.len()
    }

    /// The physical location of logical qubit `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[inline]
    pub fn phys(&self, l: usize) -> usize {
        self.l2p[l]
    }

    /// The logical qubit at physical `p`, if any.
    #[inline]
    pub fn logical(&self, p: usize) -> Option<usize> {
        self.p2l[p]
    }

    /// Applies a SWAP between two *physical* qubits (either may be empty).
    pub fn swap_physical(&mut self, p1: usize, p2: usize) {
        let l1 = self.p2l[p1];
        let l2 = self.p2l[p2];
        self.p2l[p1] = l2;
        self.p2l[p2] = l1;
        if let Some(l) = l1 {
            self.l2p[l] = p2;
        }
        if let Some(l) = l2 {
            self.l2p[l] = p1;
        }
    }

    /// The logical→physical mapping as a slice.
    pub fn l2p(&self) -> &[usize] {
        &self.l2p
    }

    /// The permutation `π` with `π[l] = final physical position of logical
    /// l`, restricted to logical qubits — used by the equivalence checker to
    /// undo routing.
    pub fn as_permutation(&self) -> Vec<usize> {
        self.l2p.clone()
    }
}

impl fmt::Debug for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Layout{{l→p: {:?}}}", self.l2p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_layout_round_trips() {
        let l = Layout::trivial(3, 5);
        for q in 0..3 {
            assert_eq!(l.phys(q), q);
            assert_eq!(l.logical(q), Some(q));
        }
        assert_eq!(l.logical(4), None);
    }

    #[test]
    fn swaps_move_logical_qubits() {
        let mut l = Layout::trivial(2, 3);
        l.swap_physical(1, 2);
        assert_eq!(l.phys(1), 2);
        assert_eq!(l.logical(1), None);
        l.swap_physical(0, 2);
        assert_eq!(l.phys(0), 2);
        assert_eq!(l.phys(1), 0);
    }

    #[test]
    fn swap_of_two_empty_slots_is_a_noop() {
        let mut l = Layout::from_l2p(4, vec![0]);
        l.swap_physical(2, 3);
        assert_eq!(l.phys(0), 0);
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn rejects_duplicate_assignment() {
        Layout::from_l2p(3, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "more logical")]
    fn trivial_rejects_oversubscription() {
        Layout::trivial(4, 3);
    }
}
