//! Synthetic device calibration and the ESP metric.
//!
//! The paper's real-system study (§6.4) guides and evaluates compilation
//! with the *Estimated Success Probability* — the product of per-gate
//! success rates under the vendor's calibration data. We do not have access
//! to IBM's calibration service, so [`NoiseModel::synthetic`] generates a
//! deterministic pseudo-random calibration with magnitudes matching the
//! published averages of the Melbourne-era devices (CNOT ≈ 2–4%,
//! single-qubit ≈ 0.05–0.2%, readout ≈ 3–6%). The *relative* conclusions —
//! fewer CNOTs and lower depth ⇒ higher ESP/RSP — are insensitive to the
//! exact draw.

use qcircuit::{Circuit, Gate};

use crate::CouplingMap;

/// Per-gate error rates for one device.
#[derive(Clone, Debug)]
pub struct NoiseModel {
    /// `cx_error[i]` is the error rate of the i-th edge of the coupling map.
    cx_error: Vec<f64>,
    /// Edge list matching `cx_error` (min, max endpoint order).
    edges: Vec<(usize, usize)>,
    /// Per-qubit single-qubit gate error rate.
    sq_error: Vec<f64>,
    /// Per-qubit readout error rate.
    readout_error: Vec<f64>,
}

/// A small deterministic generator (splitmix64) so calibrations are
/// reproducible without pulling `rand` into this crate.
fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

impl NoiseModel {
    /// A deterministic synthetic calibration for `map`, seeded by `seed`.
    ///
    /// CNOT errors are drawn uniformly from `[1.5%, 4.5%]` per edge,
    /// single-qubit errors from `[0.05%, 0.2%]`, readout errors from
    /// `[3%, 6%]`.
    pub fn synthetic(map: &CouplingMap, seed: u64) -> NoiseModel {
        let mut state = seed ^ 0xD1B54A32D192ED03;
        let edges = map.edges().to_vec();
        let cx_error = edges
            .iter()
            .map(|_| 0.015 + 0.03 * splitmix(&mut state))
            .collect();
        let sq_error = (0..map.num_qubits())
            .map(|_| 0.0005 + 0.0015 * splitmix(&mut state))
            .collect();
        let readout_error = (0..map.num_qubits())
            .map(|_| 0.03 + 0.03 * splitmix(&mut state))
            .collect();
        NoiseModel {
            cx_error,
            edges,
            sq_error,
            readout_error,
        }
    }

    /// A uniform calibration (every CNOT `cx`, every single-qubit gate
    /// `sq`, every readout `ro`) — handy in tests.
    pub fn uniform(map: &CouplingMap, cx: f64, sq: f64, ro: f64) -> NoiseModel {
        NoiseModel {
            cx_error: vec![cx; map.edges().len()],
            edges: map.edges().to_vec(),
            sq_error: vec![sq; map.num_qubits()],
            readout_error: vec![ro; map.num_qubits()],
        }
    }

    /// The CNOT error rate on edge `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `(a, b)` is not a device edge.
    pub fn cx_error(&self, a: usize, b: usize) -> f64 {
        let key = (a.min(b), a.max(b));
        let idx = self
            .edges
            .iter()
            .position(|&e| e == key)
            .unwrap_or_else(|| panic!("({a},{b}) is not a coupled pair"));
        self.cx_error[idx]
    }

    /// The single-qubit gate error rate on qubit `q`.
    pub fn sq_error(&self, q: usize) -> f64 {
        self.sq_error[q]
    }

    /// The readout error rate on qubit `q`.
    pub fn readout_error(&self, q: usize) -> f64 {
        self.readout_error[q]
    }

    /// The error rate of one gate (SWAP = three CNOTs).
    pub fn gate_error(&self, gate: &Gate) -> f64 {
        match *gate {
            Gate::Cx(a, b) => self.cx_error(a, b),
            Gate::Swap(a, b) => {
                let e = self.cx_error(a, b);
                1.0 - (1.0 - e).powi(3)
            }
            g => self.sq_error(g.qubits().0),
        }
    }

    /// Estimated Success Probability of a circuit: `Π_g (1 − ε_g)`, times
    /// `Π_q (1 − ε_ro(q))` over measured qubits if `measured` is non-empty.
    ///
    /// This is the metric of refs [27, 40, 41] used in Fig. 11.
    pub fn esp(&self, circuit: &Circuit, measured: &[usize]) -> f64 {
        let mut p = 1.0;
        for g in circuit.gates() {
            p *= 1.0 - self.gate_error(g);
        }
        for &q in measured {
            p *= 1.0 - self.readout_error(q);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    #[test]
    fn synthetic_is_deterministic_and_in_range() {
        let map = devices::melbourne_16();
        let a = NoiseModel::synthetic(&map, 7);
        let b = NoiseModel::synthetic(&map, 7);
        for &(x, y) in map.edges() {
            assert_eq!(a.cx_error(x, y), b.cx_error(x, y));
            assert!((0.015..=0.045).contains(&a.cx_error(x, y)));
        }
        for q in 0..16 {
            assert!((0.0005..=0.002).contains(&a.sq_error(q)));
            assert!((0.03..=0.06).contains(&a.readout_error(q)));
        }
        let c = NoiseModel::synthetic(&map, 8);
        assert!(map
            .edges()
            .iter()
            .any(|&(x, y)| a.cx_error(x, y) != c.cx_error(x, y)));
    }

    #[test]
    fn esp_decreases_with_gate_count() {
        let map = devices::linear(3);
        let nm = NoiseModel::uniform(&map, 0.02, 0.001, 0.04);
        let mut short = Circuit::new(3);
        short.push(Gate::Cx(0, 1));
        let mut long = short.clone();
        long.push(Gate::Cx(1, 2));
        long.push(Gate::H(0));
        assert!(nm.esp(&long, &[]) < nm.esp(&short, &[]));
        let e = nm.esp(&short, &[]);
        assert!((e - 0.98).abs() < 1e-12);
    }

    #[test]
    fn swap_counts_as_three_cnots() {
        let map = devices::linear(2);
        let nm = NoiseModel::uniform(&map, 0.02, 0.001, 0.04);
        let e = nm.gate_error(&Gate::Swap(0, 1));
        assert!((e - (1.0 - 0.98f64.powi(3))).abs() < 1e-12);
    }

    #[test]
    fn readout_factors_in() {
        let map = devices::linear(2);
        let nm = NoiseModel::uniform(&map, 0.0, 0.0, 0.1);
        let c = Circuit::new(2);
        assert!((nm.esp(&c, &[0, 1]) - 0.81).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a coupled pair")]
    fn cx_error_requires_an_edge() {
        let map = devices::linear(3);
        let nm = NoiseModel::uniform(&map, 0.01, 0.001, 0.01);
        nm.cx_error(0, 2);
    }
}
