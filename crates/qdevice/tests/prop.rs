//! Property tests for the hardware substrate.

use proptest::prelude::*;
use qdevice::{devices, CouplingMap, Layout, NoiseModel};

fn arb_connected_map() -> impl Strategy<Value = CouplingMap> {
    // A random spanning tree plus random extra edges — always connected.
    (
        2usize..12,
        proptest::collection::vec((any::<u32>(), any::<u32>()), 0..12),
    )
        .prop_map(|(n, extra)| {
            let mut edges: Vec<(usize, usize)> = (1..n).map(|v| (v / 2, v)).collect();
            for (a, b) in extra {
                let (a, b) = ((a as usize) % n, (b as usize) % n);
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            CouplingMap::new(n, &edges)
        })
}

proptest! {
    #[test]
    fn distances_satisfy_triangle_inequality(map in arb_connected_map()) {
        let n = map.num_qubits();
        for a in 0..n {
            prop_assert_eq!(map.distance(a, a), 0);
            for b in 0..n {
                prop_assert_eq!(map.distance(a, b), map.distance(b, a));
                for c in 0..n {
                    prop_assert!(map.distance(a, c) <= map.distance(a, b) + map.distance(b, c));
                }
            }
        }
    }

    #[test]
    fn edges_have_distance_one(map in arb_connected_map()) {
        for &(a, b) in map.edges() {
            prop_assert_eq!(map.distance(a, b), 1);
        }
    }

    #[test]
    fn shortest_paths_are_valid_walks(map in arb_connected_map(), s in 0usize..12, t in 0usize..12) {
        let n = map.num_qubits();
        let (s, t) = (s % n, t % n);
        let path = map.shortest_path(s, t, |_, _| 1.0);
        prop_assert_eq!(path[0], s);
        prop_assert_eq!(*path.last().unwrap(), t);
        for w in path.windows(2) {
            prop_assert!(map.has_edge(w[0], w[1]));
        }
        // With unit costs the path length equals the BFS distance.
        prop_assert_eq!(path.len() as u32 - 1, map.distance(s, t));
    }

    #[test]
    fn most_connected_subgraph_is_connected(map in arb_connected_map(), k in 1usize..12) {
        let k = k.min(map.num_qubits());
        let set = map.most_connected_subgraph(k);
        prop_assert_eq!(set.len(), k);
        prop_assert_eq!(map.components_within(&set).len(), 1);
        let mut sorted = set.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "no duplicates");
    }

    #[test]
    fn layout_swaps_preserve_bijection(swaps in proptest::collection::vec((0usize..8, 0usize..8), 0..32)) {
        let mut layout = Layout::trivial(5, 8);
        for (a, b) in swaps {
            if a != b {
                layout.swap_physical(a, b);
            }
        }
        // l2p/p2l stay mutually inverse.
        let mut seen = [false; 8];
        for l in 0..5 {
            let p = layout.phys(l);
            prop_assert!(!seen[p]);
            seen[p] = true;
            prop_assert_eq!(layout.logical(p), Some(l));
        }
    }

    #[test]
    fn esp_is_monotone_in_gate_count(extra in 0usize..20) {
        let map = devices::linear(4);
        let nm = NoiseModel::uniform(&map, 0.02, 0.001, 0.03);
        let mut c = qcircuit::Circuit::new(4);
        let mut last = 1.0;
        for i in 0..extra {
            c.push(qcircuit::Gate::Cx(i % 3, i % 3 + 1));
            let esp = nm.esp(&c, &[]);
            prop_assert!(esp < last);
            last = esp;
        }
    }
}
