//! Criterion bench: full two-stage compilation flows (stage-1 PH or TK
//! plus the generic second stage), matching the Table 2 time columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paulihedral::Scheduler;
use ph_bench::{ph_flow, tk_flow, SecondStage};
use qdevice::devices;
use workloads::suite;

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let device = devices::manhattan_65();
    for name in ["UCCSD-8", "REG-20-4", "Heisen-2D"] {
        let b = suite::generate(name);
        group.bench_with_input(BenchmarkId::new("ph_l3", name), &b, |bench, b| {
            bench.iter(|| {
                ph_flow(
                    &b.ir,
                    b.class,
                    Scheduler::Depth,
                    &device,
                    SecondStage::QiskitL3,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("tk_l3", name), &b, |bench, b| {
            bench.iter(|| tk_flow(&b.ir, b.class, &device, SecondStage::QiskitL3));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
