//! Criterion bench: throughput of the two scheduling passes (paper §4) —
//! the passes the paper claims are "highly scalable".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paulihedral::schedule::{schedule_depth, schedule_gco};
use workloads::suite;

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    group.sample_size(10);
    for name in ["UCCSD-8", "UCCSD-16", "Heisen-2D", "Rand-30"] {
        let b = suite::generate(name);
        group.bench_with_input(BenchmarkId::new("gco", name), &b.ir, |bench, ir| {
            bench.iter(|| schedule_gco(ir));
        });
        group.bench_with_input(BenchmarkId::new("depth", name), &b.ir, |bench, ir| {
            bench.iter(|| schedule_depth(ir));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
