//! Criterion bench: full-pipeline compiles at 100/500/1000+ qubits, with
//! the intra-compile worker budget swept over 1/2/8 — the parallel paths
//! are bit-identical to sequential, so the only thing that should move
//! between rows is wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use workloads::scale;

fn bench_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);
    for name in ["Heisen-100", "Heisen-500", "Heisen-1000", "Heisen-32x32"] {
        let ir = scale::named_scale_ir(name).expect("preset scale name");
        for intra in [1usize, 2, 8] {
            let id = BenchmarkId::new(format!("compile/intra{intra}"), name);
            group.bench_with_input(id, &ir, |bench, ir| {
                let opts = CompileOptions::new(Scheduler::Auto, Backend::FaultTolerant)
                    .with_intra_threads(intra);
                bench.iter(|| compile(ir, &opts));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
