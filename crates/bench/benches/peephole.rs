//! Criterion bench: wire-DAG peephole cancellation throughput on naive
//! gadget circuits of increasing size.

use baselines::naive;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qcircuit::peephole;
use workloads::suite;

fn bench_peephole(c: &mut Criterion) {
    let mut group = c.benchmark_group("peephole");
    group.sample_size(10);
    for name in ["Heisen-1D", "UCCSD-8", "UCCSD-12"] {
        let b = suite::generate(name);
        let circuit = naive::synthesize(&b.ir).circuit;
        group.bench_with_input(
            BenchmarkId::new("optimize", name),
            &circuit,
            |bench, circ| {
                bench.iter(|| {
                    let mut c = circ.clone();
                    peephole::optimize(&mut c)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_peephole);
criterion_main!(benches);
