//! Criterion bench: FT (Alg. 2) and SC (Alg. 3) block-wise synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use paulihedral::schedule::schedule_depth;
use paulihedral::synth::{ft, sc};
use qdevice::devices;
use workloads::suite;

fn bench_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    group.sample_size(10);
    let device = devices::manhattan_65();
    for name in ["UCCSD-8", "UCCSD-12", "REG-20-8"] {
        let b = suite::generate(name);
        let layers = schedule_depth(&b.ir);
        let n = b.ir.num_qubits();
        group.bench_with_input(BenchmarkId::new("ft", name), &layers, |bench, layers| {
            bench.iter(|| ft::synthesize(n, layers));
        });
        group.bench_with_input(BenchmarkId::new("sc", name), &layers, |bench, layers| {
            bench.iter(|| sc::synthesize(n, layers, &device, None));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_synthesis);
criterion_main!(benches);
