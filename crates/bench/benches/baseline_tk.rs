//! Criterion bench: the TK baseline's clustering + simultaneous
//! diagonalization cost (its O(N²) stage).

use baselines::tk;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::suite;

fn bench_tk(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_tk");
    group.sample_size(10);
    for name in ["Ising-1D", "Heisen-2D", "UCCSD-8", "UCCSD-12"] {
        let b = suite::generate(name);
        group.bench_with_input(BenchmarkId::new("compile", name), &b.ir, |bench, ir| {
            bench.iter(|| tk::compile_tk(ir));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tk);
criterion_main!(benches);
