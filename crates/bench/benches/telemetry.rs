//! Criterion bench: telemetry overhead on the batch compile path.
//!
//! Three configurations over the same batch of jobs:
//!
//! - `disabled` — the default no-op sink ([`Telemetry::disabled`]); every
//!   instrumentation call is an `Option` check that branches away. This
//!   must sit within noise of the pre-telemetry engine.
//! - `enabled` — a live [`Collector`]: spans, cache events, and histogram
//!   records all land, bounding what full tracing costs.
//! - `metrics_only` — a live collector but measured with the cache off,
//!   isolating the span/histogram path from cache-event traffic.
//!
//! The cache is disabled in every configuration so each iteration measures
//! real compiles, not cache lookups.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use paulihedral::ir::PauliIR;
use ph_engine::{BatchEngine, Collector, CompileJob, Pipeline, Target, Telemetry};
use workloads::suite;

fn jobs_for(irs: &[(String, PauliIR)]) -> Vec<CompileJob> {
    irs.iter()
        .map(|(name, ir)| CompileJob::named(name.clone(), ir.clone()))
        .collect()
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    let irs: Vec<(String, PauliIR)> = ["Ising-1D", "Heisen-1D", "Rand-20-0.3"]
        .iter()
        .map(|&n| (n.to_string(), suite::generate(n).ir))
        .collect();

    group.bench_function("batch_disabled", |b| {
        let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).without_cache();
        b.iter(|| engine.compile_all(jobs_for(&irs)));
    });

    group.bench_function("batch_enabled", |b| {
        b.iter(|| {
            // A fresh collector per iteration so the event buffer does not
            // grow unboundedly across samples.
            let collector = Arc::new(Collector::new());
            let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant)
                .without_cache()
                .with_telemetry(Telemetry::attached(Arc::clone(&collector)));
            engine.compile_all(jobs_for(&irs))
        });
    });

    group.bench_function("single_disabled", |b| {
        let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant)
            .without_cache()
            .with_threads(1);
        b.iter(|| engine.compile_all(jobs_for(&irs)));
    });

    group.finish();
}

criterion_group!(benches, bench_telemetry_overhead);
criterion_main!(benches);
