//! Regenerates **Table 4**: the effect of the individual passes.
//!
//! * Left half — **DO vs GCO**: percentage change of the depth-oriented
//!   scheduler relative to the gate-count-oriented one (same backend flow
//!   otherwise). `N/A` for the single-block QAOA kernels, as in the paper.
//! * Right half — **BC improvement**: percentage change of block-wise
//!   compilation relative to naive chain synthesis under the *same*
//!   schedule (isolating the synthesis pass), both followed by the
//!   Qiskit-L3-like stage.
//!
//! ```text
//! cargo run -p ph-bench --release --bin table4 [-- --quick] [--filter NAME]
//! ```

use paulihedral::Scheduler;
use ph_bench::{
    arg_flag, arg_value, pct_change, ph_flow, print_row, quick_subset, scheduled_naive_flow,
    SecondStage,
};
use qdevice::devices;
use workloads::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = arg_flag(&args, "--quick");
    let filter = arg_value(&args, "--filter");
    let device = devices::manhattan_65();
    let names: Vec<&str> = match &filter {
        Some(f) => suite::all_names()
            .into_iter()
            .filter(|n| n.contains(f.as_str()))
            .collect(),
        None if quick => quick_subset(),
        None => suite::all_names(),
    };

    println!("Table 4: effect of passes (negative = reduction)");
    let widths = [12usize, 10, 10, 10, 10, 2, 10, 10, 10, 10];
    print_row(
        &widths,
        &[
            "Bench", "DO:CNOT%", "DO:Sing%", "DO:Tot%", "DO:Dep%", "|", "BC:CNOT%", "BC:Sing%",
            "BC:Tot%", "BC:Dep%",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );
    let fmt = |v: f64| format!("{v:+.2}");
    for name in names {
        let b = suite::generate(name);
        // DO vs GCO.
        let single_block = b.ir.num_blocks() == 1;
        let (do_cells, gco) = {
            let gco = ph_flow(
                &b.ir,
                b.class,
                Scheduler::GateCount,
                &device,
                SecondStage::QiskitL3,
            );
            if single_block {
                (vec!["N/A".to_string(); 4], gco)
            } else {
                let do_ = ph_flow(
                    &b.ir,
                    b.class,
                    Scheduler::Depth,
                    &device,
                    SecondStage::QiskitL3,
                );
                (
                    vec![
                        fmt(pct_change(gco.stats.cnot, do_.stats.cnot)),
                        fmt(pct_change(gco.stats.single, do_.stats.single)),
                        fmt(pct_change(gco.stats.total, do_.stats.total)),
                        fmt(pct_change(gco.stats.depth, do_.stats.depth)),
                    ],
                    gco,
                )
            }
        };
        let _ = gco;
        // BC vs scheduled-naive synthesis (both depth-scheduled).
        let bc = ph_flow(
            &b.ir,
            b.class,
            Scheduler::Depth,
            &device,
            SecondStage::QiskitL3,
        );
        let naive = scheduled_naive_flow(
            &b.ir,
            b.class,
            Scheduler::Depth,
            &device,
            SecondStage::QiskitL3,
        );
        let bc_cells = vec![
            fmt(pct_change(naive.stats.cnot, bc.stats.cnot)),
            fmt(pct_change(naive.stats.single, bc.stats.single)),
            fmt(pct_change(naive.stats.total, bc.stats.total)),
            fmt(pct_change(naive.stats.depth, bc.stats.depth)),
        ];
        let mut cells = vec![b.name.clone()];
        cells.extend(do_cells);
        cells.push("|".to_string());
        cells.extend(bc_cells);
        print_row(&widths, &cells);
    }
}
