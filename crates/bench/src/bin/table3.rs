//! Regenerates **Table 3**: Paulihedral vs the algorithm-specific QAOA
//! compiler (Alam et al.) on the six 20-node MaxCut programs, both
//! followed by the Qiskit-L3-like stage, on the Manhattan-65 model.
//!
//! ```text
//! cargo run -p ph-bench --release --bin table3
//! ```
//!
//! Note: the published QAOA compiler is randomized (the paper averages 20
//! seeds); our reimplementation is deterministic, so a single run is
//! reported.

use std::time::Instant;

use baselines::generic::{self, Mapping};
use baselines::qaoa_compiler;
use paulihedral::Scheduler;
use ph_bench::{fmt_secs, ph_flow, print_row, SecondStage};
use qdevice::devices;
use workloads::suite;

fn main() {
    let device = devices::manhattan_65();
    let names = [
        "REG-20-4",
        "REG-20-8",
        "REG-20-12",
        "Rand-20-0.1",
        "Rand-20-0.3",
        "Rand-20-0.5",
    ];
    println!("Table 3: PH vs QAOA compiler (both + Qiskit_L3-like stage, Manhattan-65)");
    let widths = [12usize, 16, 9, 9, 9, 8, 8];
    print_row(
        &widths,
        &[
            "Bench", "Config", "CNOT", "Single", "Total", "Depth", "Time(s)",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );
    for name in names {
        let b = suite::generate(name);
        let ph = ph_flow(
            &b.ir,
            b.class,
            Scheduler::Depth,
            &device,
            SecondStage::QiskitL3,
        );
        print_row(
            &widths,
            &[
                b.name.clone(),
                "PH+Qiskit_L3".to_string(),
                ph.stats.cnot.to_string(),
                ph.stats.single.to_string(),
                ph.stats.total.to_string(),
                ph.stats.depth.to_string(),
                fmt_secs(ph.stage1 + ph.stage2),
            ],
        );
        let t0 = Instant::now();
        let qc = qaoa_compiler::compile_qaoa(&b.ir, &device);
        let cleaned = generic::qiskit_l3_like(&qc.circuit, Mapping::AlreadyMapped);
        let elapsed = t0.elapsed();
        let s = cleaned.circuit.stats();
        print_row(
            &widths,
            &[
                b.name.clone(),
                "QAOAC+Qiskit_L3".to_string(),
                s.cnot.to_string(),
                s.single.to_string(),
                s.total.to_string(),
                s.depth.to_string(),
                fmt_secs(elapsed),
            ],
        );
    }
}
