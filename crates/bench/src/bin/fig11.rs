//! Regenerates **Figure 11**: ESP and RSP improvement of Paulihedral over
//! the baseline Qiskit-default flow for 8 one-level QAOA MaxCut programs
//! on the 16-qubit Melbourne model.
//!
//! The real chip is replaced by Monte-Carlo Pauli-noise simulation with a
//! synthetic Melbourne calibration (DESIGN.md, substitution 2):
//!
//! 1. `(γ*, β*)` are grid-optimized on the ideal simulator,
//! 2. the cost kernel is compiled by (a) naive adjacency order + SABRE
//!    routing + L3 clean-up (the Qiskit-default baseline) and (b) the
//!    Paulihedral SC pass + L3 clean-up,
//! 3. ESP is the analytic per-gate success product, RSP the fraction of
//!    noisy shots hitting an optimal cut.
//!
//! ```text
//! cargo run -p ph-bench --release --bin fig11 [-- --shots 4096] [--grid 16]
//! ```

use baselines::generic::{self, Mapping};
use baselines::naive;
use pauli::{Pauli, PauliString, PauliTerm};
use paulihedral::ir::{Parameter, PauliIR};
use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use ph_bench::{arg_value, print_row};
use qcircuit::{Circuit, Gate};
use qdevice::{devices, NoiseModel};
use qsim::noise::{sample_noisy_rates, success_fraction};
use rand::rngs::StdRng;
use rand::SeedableRng;
use workloads::graphs::{self, Graph};

/// Builds the full physical 1-level QAOA ansatz around a compiled cost
/// kernel: `H` on initial positions, the kernel, `Rx(2β)` on final
/// positions.
fn full_ansatz(cost: &Circuit, initial: &[usize], final_: &[usize], beta: f64) -> Circuit {
    let mut full = Circuit::new(cost.num_qubits());
    for &p in initial {
        full.push(Gate::H(p));
    }
    full.append_circuit(cost);
    for &p in final_ {
        full.push(Gate::Rx(p, 2.0 * beta));
    }
    full
}

/// Compacts a circuit to its touched qubits; returns the compacted circuit,
/// the per-gate error rates (from the original indices), and the remapped
/// measured list.
fn compact(
    circuit: &Circuit,
    noise: &NoiseModel,
    measured: &[usize],
) -> (Circuit, Vec<f64>, Vec<usize>, Vec<f64>) {
    let mut used: Vec<usize> = Vec::new();
    let mark = |q: usize, used: &mut Vec<usize>| {
        if !used.contains(&q) {
            used.push(q);
        }
    };
    for g in circuit.gates() {
        let (a, b) = g.qubits();
        mark(a, &mut used);
        if let Some(b) = b {
            mark(b, &mut used);
        }
    }
    for &m in measured {
        mark(m, &mut used);
    }
    used.sort_unstable();
    let map = |q: usize| used.binary_search(&q).expect("marked");
    let gate_errors: Vec<f64> = circuit
        .gates()
        .iter()
        .map(|g| noise.gate_error(g))
        .collect();
    let compacted = circuit.map_qubits(used.len(), map);
    let measured_c: Vec<usize> = measured.iter().map(|&m| map(m)).collect();
    let readout: Vec<f64> = measured.iter().map(|&m| noise.readout_error(m)).collect();
    (compacted, gate_errors, measured_c, readout)
}

fn adjacency_order_ir(g: &Graph, gamma: f64) -> PauliIR {
    // Qiskit default: strings ordered by iterating over the adjacency
    // matrix (row-major), one block (shared γ).
    let mut edges = g.edges.clone();
    edges.sort_by_key(|&(u, v, _)| (u, v));
    let terms: Vec<PauliTerm> = edges
        .iter()
        .map(|&(u, v, w)| {
            let mut s = PauliString::identity(g.n);
            s.set(u, Pauli::Z);
            s.set(v, Pauli::Z);
            PauliTerm::new(s, w)
        })
        .collect();
    PauliIR::single_block(g.n, terms, Parameter::named("gamma", gamma))
}

fn geomean(vals: &[f64]) -> f64 {
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let shots: usize = arg_value(&args, "--shots")
        .and_then(|s| s.parse().ok())
        .unwrap_or(2048);
    let grid: usize = arg_value(&args, "--grid")
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let device = devices::melbourne_16();
    let noise = NoiseModel::synthetic(&device, 1606);
    let mut rng = StdRng::seed_from_u64(42);

    let benches: Vec<(String, Graph)> = (7..=10)
        .map(|n| {
            (
                format!("REG-n{n}-d4"),
                graphs::random_regular(n, 4, 400 + n as u64),
            )
        })
        .chain((7..=10).map(|n| {
            (
                format!("RD-n{n}-p0.5"),
                graphs::erdos_renyi(n, 0.5, 500 + n as u64),
            )
        }))
        .collect();

    println!("Figure 11: QAOA success probability improvement on the Melbourne model");
    println!("({shots} noisy shots per circuit, {grid}x{grid} parameter grid)");
    let widths = [13usize, 9, 9, 9, 9, 9, 9];
    print_row(
        &widths,
        &[
            "Bench", "CNOT(bl)", "CNOT(PH)", "ESP(bl)", "ESP(PH)", "ESPx", "RSPx",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );

    let mut esp_ratios = Vec::new();
    let mut rsp_ratios = Vec::new();
    for (name, g) in &benches {
        let edges = &g.edges;
        let (gamma, beta, _) = qsim::qaoa::optimize_p1(g.n, edges, grid);
        let (_, optimal) = qsim::qaoa::max_cut(g.n, edges);
        // Our gadget for θ = w·param implements exp(iθZZ); the ansatz uses
        // exp(−iγwZZ), so the block parameter is −γ*.
        let param = -gamma;

        // Baseline: adjacency order, naive synthesis, SABRE route, L3.
        let base_ir = adjacency_order_ir(g, param);
        let base_naive = naive::synthesize(&base_ir);
        let base = generic::qiskit_l3_like(&base_naive.circuit, Mapping::Route(&device));
        let base_initial = base.initial_l2p.expect("routed");
        let base_final = base.final_l2p.expect("routed");
        let base_full = full_ansatz(&base.circuit, &base_initial, &base_final, beta);

        // Paulihedral: SC pass (noise-aware), L3 clean-up.
        let ph_ir = adjacency_order_ir(g, param);
        let compiled = compile(
            &ph_ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting {
                    device: &device,
                    noise: Some(&noise),
                },
            },
        );
        let cleaned = generic::qiskit_l3_like(&compiled.circuit, Mapping::AlreadyMapped);
        let ph_initial = compiled.initial_l2p.expect("sc backend");
        let ph_final = compiled.final_l2p.expect("sc backend");
        let ph_full = full_ansatz(&cleaned.circuit, &ph_initial, &ph_final, beta);

        // ESP (with readout on measured qubits).
        let esp_base = noise.esp(&base_full, &base_final);
        let esp_ph = noise.esp(&ph_full, &ph_final);
        // RSP via Monte-Carlo on the compacted register.
        let mut rsp = |full: &Circuit, measured: &[usize]| -> f64 {
            let (c, errs, meas_c, readout) = compact(full, &noise, measured);
            let samples = sample_noisy_rates(&c, &errs, &readout, &meas_c, shots, &mut rng);
            success_fraction(&samples, &optimal)
        };
        let rsp_base = rsp(&base_full, &base_final);
        let rsp_ph = rsp(&ph_full, &ph_final);

        let esp_x = esp_ph / esp_base;
        let rsp_x = if rsp_base > 0.0 {
            rsp_ph / rsp_base
        } else {
            f64::NAN
        };
        esp_ratios.push(esp_x);
        if rsp_x.is_finite() {
            rsp_ratios.push(rsp_x);
        }
        print_row(
            &widths,
            &[
                name.clone(),
                base_full.stats().cnot.to_string(),
                ph_full.stats().cnot.to_string(),
                format!("{esp_base:.4}"),
                format!("{esp_ph:.4}"),
                format!("{esp_x:.2}"),
                format!("{rsp_x:.2}"),
            ],
        );
    }
    println!(
        "geomean: ESP improvement {:.2}x, RSP improvement {:.2}x",
        geomean(&esp_ratios),
        geomean(&rsp_ratios)
    );
}
