//! Regenerates **Table 1**: benchmark information — backend class, qubit
//! count, Pauli string count, and the CNOT/single-qubit gate counts of a
//! naive (unoptimized, unmapped) conversion to gates.
//!
//! ```text
//! cargo run -p ph-bench --release --bin table1
//! ```

use baselines::naive;
use ph_bench::print_row;
use workloads::suite::{self, BackendClass};

fn main() {
    let widths = [12usize, 8, 7, 9, 9, 9];
    println!("Table 1: Benchmark information");
    print_row(
        &widths,
        &["Name", "Backend", "Qubit#", "Pauli#", "CNOT#", "Single#"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    for name in suite::all_names() {
        let b = suite::generate(name);
        let (cnot, single) = naive::naive_counts(&b.ir);
        let class = match b.class {
            BackendClass::Superconducting => "SC",
            BackendClass::FaultTolerant => "FT",
        };
        print_row(
            &widths,
            &[
                b.name.clone(),
                class.to_string(),
                b.ir.num_qubits().to_string(),
                b.ir.total_strings().to_string(),
                cnot.to_string(),
                single.to_string(),
            ],
        );
    }
}
