//! Ablation study of Paulihedral's design choices (DESIGN.md §6): each row
//! toggles one mechanism and reports the cost delta, quantifying *why* the
//! paper's pipeline is built the way it is.
//!
//! * `chain-align` — CNOT-chain prefix alignment vs naive ascending chains
//!   (same schedule, FT backend),
//! * `layer-pair` — Alg. 2 junction anchoring vs plain per-block ordering,
//!   approximated by GCO-without-pairing = naive chain order per string,
//! * `balanced-tree` — chain vs balanced CNOT trees (depth ablation),
//! * `init-layout` — interaction-aware initial placement vs subgraph-order
//!   placement (SC backend),
//! * `forward-device` — PH on the Manhattan-65 vs a 127-qubit-class
//!   heavy-hex (forward-looking sweep).
//!
//! ```text
//! cargo run -p ph-bench --release --bin ablations
//! ```

use paulihedral::synth::chain::{emit_gadget, emit_gadget_balanced};
use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use ph_bench::{ph_flow, print_row, SecondStage};
use qcircuit::{peephole, Circuit};
use qdevice::devices;
use workloads::suite;

fn main() {
    let widths = [14usize, 12, 10, 10, 10, 10];
    println!("Ablation study (negative = the mechanism helps)");
    print_row(
        &widths,
        &["Ablation", "Bench", "CNOT%", "Single%", "Total%", "Depth%"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let fmt = |base: usize, with: usize| {
        if base == 0 {
            "+0.00".to_string()
        } else {
            format!("{:+.2}", (with as f64 - base as f64) / base as f64 * 100.0)
        }
    };

    // 1. Chain alignment: FT synthesis with vs without aligned prefixes.
    for name in ["UCCSD-8", "N2", "Heisen-2D"] {
        let b = suite::generate(name);
        let layers = paulihedral::run_scheduler(&b.ir, Scheduler::GateCount);
        let with = paulihedral::synth::ft::synthesize(b.ir.num_qubits(), &layers);
        // Without: same emission order, ascending chains.
        let mut without = Circuit::new(b.ir.num_qubits());
        for (s, theta) in &with.emitted {
            emit_gadget(&mut without, s, *theta, &s.support());
        }
        peephole::optimize(&mut without);
        let (a, bb) = (without.stats(), with.circuit.stats());
        print_row(
            &widths,
            &[
                "chain-align".into(),
                name.into(),
                fmt(a.cnot, bb.cnot),
                fmt(a.single, bb.single),
                fmt(a.total, bb.total),
                fmt(a.depth, bb.depth),
            ],
        );
    }

    // 2. Balanced trees vs chains (no cross-gadget cancellation): depth win
    // on long strings, cancellation loss.
    for name in ["N2", "Rand-30"] {
        let b = suite::generate(name);
        let layers = paulihedral::run_scheduler(&b.ir, Scheduler::GateCount);
        let with = paulihedral::synth::ft::synthesize(b.ir.num_qubits(), &layers);
        let mut balanced = Circuit::new(b.ir.num_qubits());
        for (s, theta) in &with.emitted {
            emit_gadget_balanced(&mut balanced, s, *theta, &s.support());
        }
        peephole::optimize(&mut balanced);
        let (a, bb) = (with.circuit.stats(), balanced.stats());
        print_row(
            &widths,
            &[
                "balanced-tree".into(),
                name.into(),
                fmt(a.cnot, bb.cnot),
                fmt(a.single, bb.single),
                fmt(a.total, bb.total),
                fmt(a.depth, bb.depth),
            ],
        );
    }

    // 3. Forward-looking device sweep: same programs on a 127-qubit-class
    // heavy-hex vs Manhattan-65.
    let manhattan = devices::manhattan_65();
    let eagle = devices::heavy_hex(7, 15);
    for name in ["UCCSD-16", "REG-20-8"] {
        let b = suite::generate(name);
        let on_m = ph_flow(
            &b.ir,
            b.class,
            Scheduler::Depth,
            &manhattan,
            SecondStage::QiskitL3,
        );
        let on_e = ph_flow(
            &b.ir,
            b.class,
            Scheduler::Depth,
            &eagle,
            SecondStage::QiskitL3,
        );
        print_row(
            &widths,
            &[
                "forward-device".into(),
                name.into(),
                fmt(on_m.stats.cnot, on_e.stats.cnot),
                fmt(on_m.stats.single, on_e.stats.single),
                fmt(on_m.stats.total, on_e.stats.total),
                fmt(on_m.stats.depth, on_e.stats.depth),
            ],
        );
    }

    // 4. Noise-aware routing on the SC pass (error-weighted paths vs hops).
    let noise = qdevice::NoiseModel::synthetic(&manhattan, 99);
    for name in ["UCCSD-8", "Rand-20-0.3"] {
        let b = suite::generate(name);
        let plain = compile(
            &b.ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting {
                    device: &manhattan,
                    noise: None,
                },
            },
        );
        let aware = compile(
            &b.ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting {
                    device: &manhattan,
                    noise: Some(&noise),
                },
            },
        );
        // Deep circuits have ESP ≈ 0; compare the expected error count
        // −ln(ESP) ≈ Σ ε instead (lower is better).
        let err_sum = |c: &qcircuit::Circuit| -> f64 {
            c.decompose_swaps()
                .gates()
                .iter()
                .map(|g| noise.gate_error(g))
                .sum()
        };
        let (ep, ea) = (err_sum(&plain.circuit), err_sum(&aware.circuit));
        print_row(
            &widths,
            &[
                "noise-aware".into(),
                name.into(),
                fmt(
                    plain.circuit.mapped_stats().cnot,
                    aware.circuit.mapped_stats().cnot,
                ),
                format!("Σε {ep:.1}"),
                format!("Σε {ea:.1}"),
                format!("{:+.2}", (ea - ep) / ep * 100.0),
            ],
        );
    }
}
