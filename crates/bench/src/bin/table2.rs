//! Regenerates **Table 2**: Paulihedral vs the TK (simultaneous
//! diagonalization) baseline, each followed by the two generic second
//! stages, on all 31 benchmarks. SC benchmarks are mapped onto the
//! 65-qubit Manhattan model; FT benchmarks stay logical.
//!
//! ```text
//! cargo run -p ph-bench --release --bin table2 [-- --quick] [--filter NAME]
//! ```
//!
//! `--quick` runs a representative subset (the full suite takes a while —
//! the paper used a 28-core Xeon server).

use paulihedral::Scheduler;
use ph_bench::{
    arg_flag, arg_value, fmt_secs, ph_flow, print_row, quick_subset, tk_flow, SecondStage,
};
use qdevice::devices;
use workloads::suite;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = arg_flag(&args, "--quick");
    let filter = arg_value(&args, "--filter");
    let device = devices::manhattan_65();

    let names: Vec<&str> = match &filter {
        Some(f) => suite::all_names()
            .into_iter()
            .filter(|n| n.contains(f.as_str()))
            .collect(),
        None if quick => quick_subset(),
        None => suite::all_names(),
    };

    println!("Table 2: compilation time and results, PH vs TK x {{Qiskit_L3, tket_O2}}");
    println!(
        "(PH scheduling: depth-oriented on SC; pattern-adaptive on FT. SC = Manhattan-65 model)"
    );
    let widths = [12usize, 14, 8, 8, 9, 9, 9, 8];
    print_row(
        &widths,
        &[
            "Bench", "Config", "T1(s)", "T2(s)", "CNOT", "Single", "Total", "Depth",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>(),
    );

    for name in names {
        let b = suite::generate(name);
        let scheduler = match b.class {
            suite::BackendClass::Superconducting => Scheduler::Depth,
            suite::BackendClass::FaultTolerant => paulihedral::choose_scheduler(&b.ir),
        };
        for second in [SecondStage::QiskitL3, SecondStage::TketO2] {
            let ph = ph_flow(&b.ir, b.class, scheduler, &device, second);
            print_row(
                &widths,
                &[
                    b.name.clone(),
                    format!("PH+{}", second.label()),
                    fmt_secs(ph.stage1),
                    fmt_secs(ph.stage2),
                    ph.stats.cnot.to_string(),
                    ph.stats.single.to_string(),
                    ph.stats.total.to_string(),
                    ph.stats.depth.to_string(),
                ],
            );
        }
        for second in [SecondStage::QiskitL3, SecondStage::TketO2] {
            let tkr = tk_flow(&b.ir, b.class, &device, second);
            print_row(
                &widths,
                &[
                    b.name.clone(),
                    format!("TK+{}", second.label()),
                    fmt_secs(tkr.stage1),
                    fmt_secs(tkr.stage2),
                    tkr.stats.cnot.to_string(),
                    tkr.stats.single.to_string(),
                    tkr.stats.total.to_string(),
                    tkr.stats.depth.to_string(),
                ],
            );
        }
    }
}
