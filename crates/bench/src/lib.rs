//! Shared experiment harness for regenerating the paper's tables/figures.
//!
//! Each `table*`/`fig11` binary composes the pieces here: the two-stage
//! compilation flows (Paulihedral or a baseline first stage, then a generic
//! second stage), timing, and tabular output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use baselines::generic::{self, Mapping};
use baselines::tk;
use paulihedral::ir::PauliIR;
use paulihedral::Scheduler;
use ph_engine::{
    BatchEngine, CacheConfig, CacheStats, Collector, CompileJob, CompileReport, Engine,
    MetricsSnapshot, Pipeline, Target, Telemetry,
};
use qcircuit::{Circuit, CircuitStats};
use qdevice::CouplingMap;
use workloads::suite::{self, BackendClass};

/// Which generic second-stage pipeline to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SecondStage {
    /// The Qiskit-level-3-like pipeline.
    QiskitL3,
    /// The tket-O2-like pipeline.
    TketO2,
}

impl SecondStage {
    /// Human-readable label matching the paper's column headers.
    pub fn label(self) -> &'static str {
        match self {
            SecondStage::QiskitL3 => "Qiskit_L3",
            SecondStage::TketO2 => "tket_O2",
        }
    }

    fn run(self, circuit: &Circuit, mapping: Mapping<'_>) -> Circuit {
        match self {
            SecondStage::QiskitL3 => generic::qiskit_l3_like(circuit, mapping).circuit,
            SecondStage::TketO2 => generic::tket_o2_like(circuit, mapping).circuit,
        }
    }
}

/// The outcome of one two-stage flow.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// Metrics of the final circuit (SWAPs decomposed).
    pub stats: CircuitStats,
    /// First-stage (PH or baseline) wall time.
    pub stage1: Duration,
    /// Second-stage (generic pipeline) wall time.
    pub stage2: Duration,
    /// Per-pass instrumentation of the first stage (PH flows only; empty
    /// for baseline flows).
    pub report: CompileReport,
}

/// The engine target for a benchmark's backend class.
fn class_target(class: BackendClass, device: &CouplingMap) -> Target {
    match class {
        BackendClass::Superconducting => Target::superconducting(device.clone()),
        BackendClass::FaultTolerant => Target::FaultTolerant,
    }
}

/// Runs the Paulihedral flow: schedule + block-wise synthesis through the
/// `ph_engine` pass manager, then a generic clean-up stage (the paper's
/// `PH+Qiskit_L3` / `PH+tket_O2`). The cache is disabled so `stage1` is a
/// real compile-time measurement on every call.
pub fn ph_flow(
    ir: &PauliIR,
    class: BackendClass,
    scheduler: Scheduler,
    device: &CouplingMap,
    second: SecondStage,
) -> FlowResult {
    // Engine and target setup (including the device clone) stays outside
    // the stage-1 timer: it is driver overhead, not compile time, and the
    // pre-engine flow never measured it.
    let engine =
        Engine::new(Pipeline::standard(scheduler), class_target(class, device)).without_cache();
    let t0 = Instant::now();
    let out = engine
        .compile(ir)
        .expect("benchmark programs are valid compile requests");
    let stage1 = t0.elapsed();
    let t1 = Instant::now();
    let mapping = match class {
        BackendClass::Superconducting => Mapping::AlreadyMapped,
        BackendClass::FaultTolerant => Mapping::None,
    };
    let final_circuit = second.run(&out.compiled.circuit, mapping);
    let stage2 = t1.elapsed();
    FlowResult {
        stats: final_circuit.stats(),
        stage1,
        stage2,
        report: out.report,
    }
}

/// Runs the TK baseline flow: simultaneous diagonalization, then a generic
/// stage that also routes on the SC backend (`TK+Qiskit_L3` / `TK+tket_O2`).
pub fn tk_flow(
    ir: &PauliIR,
    class: BackendClass,
    device: &CouplingMap,
    second: SecondStage,
) -> FlowResult {
    let t0 = Instant::now();
    let r = tk::compile_tk(ir);
    let stage1 = t0.elapsed();
    let t1 = Instant::now();
    let mapping = match class {
        BackendClass::Superconducting => Mapping::Route(device),
        BackendClass::FaultTolerant => Mapping::None,
    };
    let final_circuit = second.run(&r.circuit, mapping);
    let stage2 = t1.elapsed();
    FlowResult {
        stats: final_circuit.stats(),
        stage1,
        stage2,
        report: CompileReport::default(),
    }
}

/// Naive-synthesis flow with Paulihedral *scheduling* but naive chains
/// (isolates the block-wise-compilation effect for Table 4's BC column).
pub fn scheduled_naive_flow(
    ir: &PauliIR,
    class: BackendClass,
    scheduler: Scheduler,
    device: &CouplingMap,
    second: SecondStage,
) -> FlowResult {
    use paulihedral::synth::chain::emit_gadget;
    let t0 = Instant::now();
    let layers = paulihedral::run_scheduler(ir, scheduler);
    let mut logical = Circuit::new(ir.num_qubits());
    for layer in &layers {
        for block in &layer.blocks {
            for (i, term) in block.terms.iter().enumerate() {
                if term.string.is_identity() {
                    continue;
                }
                let order = term.string.support();
                emit_gadget(&mut logical, &term.string, block.theta(i), &order);
            }
        }
    }
    let stage1 = t0.elapsed();
    let t1 = Instant::now();
    let mapping = match class {
        BackendClass::Superconducting => Mapping::Route(device),
        BackendClass::FaultTolerant => Mapping::None,
    };
    let final_circuit = second.run(&logical, mapping);
    let stage2 = t1.elapsed();
    FlowResult {
        stats: final_circuit.stats(),
        stage1,
        stage2,
        report: CompileReport::default(),
    }
}

/// One benchmark's outcome from [`run_suite`].
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Table 1 benchmark name.
    pub name: String,
    /// Backend class the benchmark targets.
    pub class: BackendClass,
    /// Metrics of the Paulihedral stage-1 circuit (SWAPs decomposed).
    pub stats: CircuitStats,
    /// Per-pass instrumentation (cache-hit flag, timings, deltas).
    pub report: CompileReport,
}

/// A full suite run: per-benchmark results plus the final counters of the
/// engine's compilation cache.
#[derive(Clone, Debug)]
pub struct SuiteRun {
    /// Per-benchmark outcomes, in input order.
    pub results: Vec<SuiteResult>,
    /// Cache counters after the batch (hits, disk hits, coalesced waits,
    /// evictions, resident bytes).
    pub cache: CacheStats,
    /// The run's telemetry metrics: cache event counters plus latency
    /// histograms (`compile.total_ns`, `pass.<name>_ns`,
    /// `batch.job_wall_ns`, `batch.queue_wait_ns`) with
    /// p50/p90/p99 summaries.
    pub metrics: MetricsSnapshot,
}

/// Compiles named Table 1 benchmarks through the [`BatchEngine`]: SC
/// benchmarks map onto `device` with depth-oriented scheduling (the
/// paper's SC configuration), FT benchmarks stay logical with adaptive
/// scheduling. `threads = None` sizes the worker pool to the machine.
///
/// Results come back in input order; duplicate names in one call are
/// compiled once and served from the engine's cache thereafter.
///
/// # Panics
///
/// Panics on unknown benchmark names (see [`suite::generate`]) and when
/// `device` cannot host an SC benchmark (disconnected, or smaller than
/// the benchmark — e.g. UCCSD-12 on a 16-qubit device).
pub fn run_suite(names: &[&str], device: &CouplingMap, threads: Option<usize>) -> Vec<SuiteResult> {
    run_suite_with(names, device, threads, CacheConfig::default()).results
}

/// [`run_suite`] with an explicit cache configuration — point
/// [`CacheConfig::disk_dir`] at a directory to make a suite run warm-start
/// from a previous one — returning the cache counters alongside the
/// results.
///
/// # Panics
///
/// See [`run_suite`].
pub fn run_suite_with(
    names: &[&str],
    device: &CouplingMap,
    threads: Option<usize>,
    cache: CacheConfig,
) -> SuiteRun {
    let sc_target = Target::superconducting(device.clone());
    let mut classes = Vec::with_capacity(names.len());
    let jobs: Vec<CompileJob> = names
        .iter()
        .map(|&name| {
            let b = suite::generate(name);
            classes.push(b.class);
            let job = CompileJob::named(name, b.ir);
            match b.class {
                BackendClass::Superconducting => job
                    .on_target(sc_target.clone())
                    .with_scheduler(Scheduler::Depth),
                BackendClass::FaultTolerant => job.with_scheduler(Scheduler::Auto),
            }
        })
        .collect();
    let collector = Arc::new(Collector::new());
    let mut engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant)
        .with_cache_config(cache)
        .with_telemetry(Telemetry::attached(Arc::clone(&collector)));
    if let Some(t) = threads {
        engine = engine.with_threads(t);
    }
    let results = engine
        .compile_all(jobs)
        .into_iter()
        .zip(classes)
        .map(|(r, class)| {
            let out = r.outcome.unwrap_or_else(|e| panic!("{}: {e}", r.name));
            SuiteResult {
                name: r.name,
                class,
                stats: out.compiled.circuit.mapped_stats(),
                report: out.report,
            }
        })
        .collect();
    SuiteRun {
        results,
        cache: engine.engine().cache_stats(),
        metrics: collector.metrics(),
    }
}

/// Formats a duration as seconds with sensible precision.
pub fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s < 0.095 {
        format!("{s:.3}")
    } else if s < 10.0 {
        format!("{s:.2}")
    } else {
        format!("{s:.1}")
    }
}

/// Signed percentage change from `base` to `new` (negative = reduction).
pub fn pct_change(base: usize, new: usize) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (new as f64 - base as f64) / base as f64 * 100.0
}

/// Prints a row of fixed-width columns.
pub fn print_row(widths: &[usize], cells: &[String]) {
    let mut line = String::new();
    for (w, c) in widths.iter().zip(cells) {
        line.push_str(&format!("{c:>w$} ", w = w));
    }
    println!("{}", line.trim_end());
}

/// The benchmark subset used by `--quick` runs (one representative per
/// family; random Hamiltonians capped at 40 qubits).
pub fn quick_subset() -> Vec<&'static str> {
    vec![
        "UCCSD-8",
        "UCCSD-12",
        "REG-20-4",
        "Rand-20-0.3",
        "TSP-4",
        "Ising-1D",
        "Ising-2D",
        "Heisen-1D",
        "Heisen-2D",
        "N2",
        "Rand-30",
    ]
}

/// Parses `--flag value`-style options from `args`.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Whether a bare `--flag` is present.
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdevice::devices;
    use workloads::suite;

    #[test]
    fn ph_flow_runs_on_both_classes() {
        let device = devices::manhattan_65();
        let sc = suite::generate("REG-20-4");
        let r = ph_flow(
            &sc.ir,
            sc.class,
            Scheduler::Depth,
            &device,
            SecondStage::QiskitL3,
        );
        assert!(r.stats.cnot > 0);
        assert_eq!(r.stats.swap, 0, "final stats must be swap-free");
        let ft = suite::generate("Ising-1D");
        let r = ph_flow(
            &ft.ir,
            ft.class,
            Scheduler::Depth,
            &device,
            SecondStage::TketO2,
        );
        assert_eq!(r.stats.cnot, 58);
    }

    #[test]
    fn tk_flow_routes_sc_benchmarks() {
        let device = devices::manhattan_65();
        let b = suite::generate("Rand-20-0.1");
        let r = tk_flow(&b.ir, b.class, &device, SecondStage::QiskitL3);
        assert!(r.stats.cnot > 0);
    }

    #[test]
    fn ph_beats_scheduled_naive_on_uccsd() {
        let device = devices::manhattan_65();
        let b = suite::generate("UCCSD-8");
        let ph = ph_flow(
            &b.ir,
            b.class,
            Scheduler::Depth,
            &device,
            SecondStage::QiskitL3,
        );
        let naive = scheduled_naive_flow(
            &b.ir,
            b.class,
            Scheduler::Depth,
            &device,
            SecondStage::QiskitL3,
        );
        assert!(
            ph.stats.cnot < naive.stats.cnot,
            "PH {} vs naive {}",
            ph.stats.cnot,
            naive.stats.cnot
        );
    }

    #[test]
    fn run_suite_serves_repeats_from_cache() {
        let device = devices::manhattan_65();
        // One worker makes the second (identical) job a deterministic hit.
        let results = run_suite(&["Ising-1D", "Ising-1D"], &device, Some(1));
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].stats.cnot, results[1].stats.cnot);
        assert!(!results[0].report.cache_hit);
        assert!(results[1].report.cache_hit);
        // The report carries the standard pipeline's three passes.
        let names: Vec<&str> = results[0]
            .report
            .passes
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(names, ["schedule", "synthesis", "peephole"]);
    }

    #[test]
    fn run_suite_warm_starts_from_a_disk_cache() {
        let dir = std::env::temp_dir().join(format!("ph-bench-disk-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let device = devices::manhattan_65();
        let names = ["Ising-1D", "Heisen-1D"];
        let config = CacheConfig {
            disk_dir: Some(dir.clone()),
            ..CacheConfig::default()
        };
        let cold = run_suite_with(&names, &device, Some(2), config.clone());
        assert_eq!((cold.cache.misses, cold.cache.disk_hits), (2, 0));
        // The telemetry snapshot mirrors the cache counters and carries
        // the per-pass latency histograms.
        assert_eq!(cold.metrics.counter("cache.miss"), 2);
        assert_eq!(cold.metrics.counter("cache.disk_write"), 2);
        let h = cold
            .metrics
            .histogram("compile.total_ns")
            .expect("compile latency histogram present");
        assert_eq!(h.count, 2);
        assert!(h.p50 <= h.p90 && h.p90 <= h.p99);
        // A fresh engine (empty memory tier) against the same directory is
        // served entirely from disk, bit-identically.
        let warm = run_suite_with(&names, &device, Some(2), config);
        assert_eq!((warm.cache.misses, warm.cache.disk_hits), (0, 2));
        assert_eq!(warm.metrics.counter("cache.disk_read"), 2);
        assert_eq!(warm.metrics.counter("cache.miss"), 0);
        for (c, w) in cold.results.iter().zip(&warm.results) {
            assert_eq!(c.stats, w.stats, "{}: warm stats differ", c.name);
            assert!(
                w.report.cache_hit,
                "{}: warm run must be a cache hit",
                c.name
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_suite_matches_ph_flow_stage1() {
        let device = devices::manhattan_65();
        let results = run_suite(&["REG-20-4"], &device, None);
        // Same stage-1 circuit metrics as the single-shot flow's engine
        // compile (before the generic second stage).
        let flow = ph_flow(
            &suite::generate("REG-20-4").ir,
            BackendClass::Superconducting,
            Scheduler::Depth,
            &device,
            SecondStage::QiskitL3,
        );
        assert_eq!(
            results[0].report.final_stats().cnot,
            flow.report.final_stats().cnot
        );
    }

    #[test]
    fn helpers_behave() {
        assert_eq!(pct_change(100, 50), -50.0);
        assert_eq!(pct_change(0, 10), 0.0);
        let args: Vec<String> = ["x", "--shots", "512", "--quick"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--shots").as_deref(), Some("512"));
        assert!(arg_flag(&args, "--quick"));
        assert!(!arg_flag(&args, "--full"));
    }
}
