//! Baseline compilers must also be semantics-preserving: their circuits
//! must equal `Π exp(iθP)` in their own emission order. This pins the sign
//! tracking of the TK diagonalization (tableau phases flip rotation
//! angles) and the routing bookkeeping of the QAOA compiler.

use baselines::generic::{self, Mapping};
use baselines::{naive, qaoa_compiler, tk};
use pauli::{Pauli, PauliString, PauliTerm};
use paulihedral::ir::{Parameter, PauliBlock, PauliIR};
use qdevice::devices;
use qsim::trotter::exp_product;
use qsim::unitary::{circuit_unitary, equal_up_to_phase, routed_circuit_implements};

fn random_program(seed: u64, n: usize, k: usize) -> PauliIR {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut ir = PauliIR::new(n);
    for _ in 0..k {
        let mut s = PauliString::identity(n);
        let mut any = false;
        for q in 0..n {
            match next() % 4 {
                0 => {}
                1 => {
                    s.set(q, Pauli::X);
                    any = true;
                }
                2 => {
                    s.set(q, Pauli::Y);
                    any = true;
                }
                _ => {
                    s.set(q, Pauli::Z);
                    any = true;
                }
            }
        }
        if !any {
            s.set((next() as usize) % n, Pauli::X);
        }
        let w = ((next() % 160) as f64 - 80.0) / 100.0;
        ir.push_block(PauliBlock::new(
            vec![PauliTerm::new(s, if w == 0.0 { 0.3 } else { w })],
            Parameter::time(0.4),
        ));
    }
    ir
}

#[test]
fn naive_synthesis_matches_exponential_product() {
    for seed in 0..8 {
        let ir = random_program(seed, 4, 5);
        let r = naive::synthesize(&ir);
        let expected = exp_product(4, r.emitted.iter().map(|(s, t)| (s, *t)));
        assert!(
            equal_up_to_phase(&circuit_unitary(&r.circuit), &expected, 1e-8),
            "seed {seed}: naive synthesis deviates"
        );
    }
}

#[test]
fn tk_diagonalization_matches_exponential_product() {
    for seed in 50..62 {
        let ir = random_program(seed, 4, 6);
        let r = tk::compile_tk(&ir);
        assert_eq!(r.emitted.len(), 6);
        let expected = exp_product(4, r.emitted.iter().map(|(s, t)| (s, *t)));
        assert!(
            equal_up_to_phase(&circuit_unitary(&r.circuit), &expected, 1e-8),
            "seed {seed}: TK output deviates (sign tracking?)"
        );
    }
}

#[test]
fn tk_followed_by_generic_cleanup_stays_correct() {
    for seed in 80..86 {
        let ir = random_program(seed, 4, 5);
        let r = tk::compile_tk(&ir);
        let expected = exp_product(4, r.emitted.iter().map(|(s, t)| (s, *t)));
        for result in [
            generic::qiskit_l3_like(&r.circuit, Mapping::None),
            generic::tket_o2_like(&r.circuit, Mapping::None),
        ] {
            assert!(
                equal_up_to_phase(&circuit_unitary(&result.circuit), &expected, 1e-8),
                "seed {seed}: generic cleanup broke the TK circuit"
            );
        }
    }
}

#[test]
fn routed_tk_circuit_implements_logical_operator() {
    let device = devices::linear(5);
    for seed in 120..126 {
        let ir = random_program(seed, 4, 4);
        let r = tk::compile_tk(&ir);
        let expected = exp_product(4, r.emitted.iter().map(|(s, t)| (s, *t)));
        let routed = generic::qiskit_l3_like(&r.circuit, Mapping::Route(&device));
        assert!(
            routed_circuit_implements(
                &routed.circuit,
                &expected,
                routed.initial_l2p.as_ref().unwrap(),
                routed.final_l2p.as_ref().unwrap(),
                1e-8,
            ),
            "seed {seed}: routed TK circuit deviates"
        );
    }
}

#[test]
fn qaoa_compiler_implements_cost_kernel() {
    let device = devices::grid(2, 3);
    // A 5-node ring with distinct weights.
    let n = 5;
    let mut terms = Vec::new();
    for i in 0..n {
        let mut s = PauliString::identity(n);
        s.set(i, Pauli::Z);
        s.set((i + 1) % n, Pauli::Z);
        terms.push(PauliTerm::new(s, 0.2 + 0.1 * i as f64));
    }
    let ir = PauliIR::single_block(n, terms, Parameter::named("gamma", 0.7));
    let r = qaoa_compiler::compile_qaoa(&ir, &device);
    let expected = exp_product(n, r.emitted.iter().map(|(s, t)| (s, *t)));
    assert!(routed_circuit_implements(
        &r.circuit,
        &expected,
        &r.initial_l2p,
        &r.final_l2p,
        1e-8,
    ));
}
