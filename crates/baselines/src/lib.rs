//! Baseline compilers the Paulihedral paper evaluates against.
//!
//! * [`naive`] — term-by-term gadget synthesis with no optimization; the
//!   "naively converting these benchmarks into gates" column of Table 1 and
//!   the reference point of the BC study (Table 4, right).
//! * [`tk`] — the simultaneous-diagonalization strategy of t|ket⟩
//!   (Cowtan et al. / van den Berg–Temme): mutually commuting clusters are
//!   Clifford-diagonalized, their rotations become Z-ladders, and the
//!   Clifford is undone ("TK" in Table 2).
//! * [`qaoa_compiler`] — the algorithm-specific QAOA mapper of Alam et al.:
//!   rounds of executable-gadget emission plus greedy SWAP selection
//!   (Table 3).
//! * [`generic`] — emulations of the generic second-stage compilers
//!   (`Qiskit_L3`, `tket_O2`): single-qubit fusion, commutative
//!   cancellation, SWAP decomposition, and routing (SABRE-style or
//!   path-based) for circuits that are not yet hardware-conformant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generic;
pub mod naive;
pub mod qaoa_compiler;
pub mod tk;
