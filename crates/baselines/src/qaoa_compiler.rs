//! The algorithm-specific QAOA compiler baseline (Alam et al. [20, 28, 29]).
//!
//! QAOA MaxCut cost Hamiltonians contain only commuting `ZZ` gadgets, so
//! the compiler may emit them in any order. The published strategy
//! alternates two steps: (1) emit every gadget whose endpoints are
//! currently adjacent ("instruction parallelization"), (2) greedily pick
//! the SWAP that makes the most pending gadgets adjacent, tie-broken by
//! total remaining distance. Paulihedral's Table 3 shows its block-wise
//! tree search beats this edge-local greedy.

use pauli::PauliString;
use paulihedral::ir::PauliIR;
use qcircuit::{Circuit, Gate};
use qdevice::{CouplingMap, Layout};

use crate::generic::sabre;

/// Result of the QAOA-compiler baseline.
#[derive(Clone, Debug)]
pub struct QaoaCompiled {
    /// The hardware-conformant physical circuit.
    pub circuit: Circuit,
    /// Initial physical position of each logical qubit.
    pub initial_l2p: Vec<usize>,
    /// Final physical position of each logical qubit.
    pub final_l2p: Vec<usize>,
    /// Emission order of the gadgets.
    pub emitted: Vec<(PauliString, f64)>,
}

/// Compiles a QAOA cost kernel (weight ≤ 2, Z-only strings) onto a device.
///
/// # Panics
///
/// Panics if any string has weight > 2 or a non-Z operator — this baseline
/// is algorithm-specific by design (the paper's point).
pub fn compile_qaoa(ir: &PauliIR, device: &CouplingMap) -> QaoaCompiled {
    // Collect gadgets and validate the QAOA shape.
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new(); // ZZ gadgets
    let mut singles: Vec<(usize, f64)> = Vec::new(); // Z gadgets
    for block in ir.blocks() {
        for (i, term) in block.terms.iter().enumerate() {
            let sup = term.string.support();
            assert!(
                sup.iter().all(|&q| term.string.get(q) == pauli::Pauli::Z),
                "QAOA compiler only accepts Z-type strings"
            );
            match sup.as_slice() {
                [] => {}
                [q] => singles.push((*q, block.theta(i))),
                [a, b] => pairs.push((*a, *b, block.theta(i))),
                _ => panic!("QAOA compiler only accepts 1- and 2-local strings"),
            }
        }
    }
    // Interaction-aware initial placement (the published flows use a
    // connectivity-strength placement; we reuse the shared greedy).
    let mut interaction = Circuit::new(ir.num_qubits());
    for &(a, b, _) in &pairs {
        interaction.push(Gate::Cx(a, b));
    }
    let initial = if pairs.is_empty() {
        (0..ir.num_qubits()).collect()
    } else {
        sabre::initial_placement(&interaction, device)
    };
    let mut layout = Layout::from_l2p(device.num_qubits(), initial.clone());
    let mut circuit = Circuit::new(device.num_qubits());
    let mut emitted = Vec::new();

    let zz = |n: usize, a: usize, b: usize| -> PauliString {
        let mut s = PauliString::identity(n);
        s.set(a, pauli::Pauli::Z);
        s.set(b, pauli::Pauli::Z);
        s
    };

    // Single-qubit phases first: always executable.
    for &(q, theta) in &singles {
        circuit.push(Gate::Rz(layout.phys(q), -2.0 * theta));
        let mut s = PauliString::identity(ir.num_qubits());
        s.set(q, pauli::Pauli::Z);
        emitted.push((s, theta));
    }

    let mut pending = pairs;
    while !pending.is_empty() {
        // Step 1: emit all currently adjacent gadgets.
        let mut progress = true;
        while progress {
            progress = false;
            let mut rest = Vec::with_capacity(pending.len());
            for &(a, b, theta) in &pending {
                let (pa, pb) = (layout.phys(a), layout.phys(b));
                if device.has_edge(pa, pb) {
                    circuit.push(Gate::Cx(pa, pb));
                    circuit.push(Gate::Rz(pb, -2.0 * theta));
                    circuit.push(Gate::Cx(pa, pb));
                    emitted.push((zz(ir.num_qubits(), a, b), theta));
                    progress = true;
                } else {
                    rest.push((a, b, theta));
                }
            }
            pending = rest;
        }
        if pending.is_empty() {
            break;
        }
        // Step 2: greedy SWAP — most newly-adjacent gadgets, then largest
        // total-distance reduction.
        let total_dist = |l: &Layout, pending: &[(usize, usize, f64)]| -> u64 {
            pending
                .iter()
                .map(|&(a, b, _)| u64::from(device.distance(l.phys(a), l.phys(b))))
                .sum()
        };
        let base_dist = total_dist(&layout, &pending);
        let mut best: Option<((usize, usize), usize, u64)> = None;
        for &(pa, pb) in device.edges() {
            if layout.logical(pa).is_none() && layout.logical(pb).is_none() {
                continue;
            }
            let mut l = layout.clone();
            l.swap_physical(pa, pb);
            let newly = pending
                .iter()
                .filter(|&&(a, b, _)| device.has_edge(l.phys(a), l.phys(b)))
                .count();
            let d = total_dist(&l, &pending);
            let better = match &best {
                None => true,
                Some((_, bn, bd)) => newly > *bn || (newly == *bn && d < *bd),
            };
            if better {
                best = Some(((pa, pb), newly, d));
            }
        }
        let ((pa, pb), newly, d) = best.expect("device has edges");
        if newly == 0 && d >= base_dist {
            // No greedy progress: walk the closest pending pair together.
            let &(a, b, _) = pending
                .iter()
                .min_by_key(|&&(a, b, _)| device.distance(layout.phys(a), layout.phys(b)))
                .expect("pending non-empty");
            let path = device.shortest_path(layout.phys(a), layout.phys(b), |_, _| 1.0);
            circuit.push(Gate::Swap(path[0], path[1]));
            layout.swap_physical(path[0], path[1]);
        } else {
            circuit.push(Gate::Swap(pa, pb));
            layout.swap_physical(pa, pb);
        }
    }

    QaoaCompiled {
        circuit,
        initial_l2p: initial,
        final_l2p: layout.l2p().to_vec(),
        emitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::PauliTerm;
    use paulihedral::ir::{Parameter, PauliBlock, PauliIR};
    use qdevice::devices;

    fn ring_ir(n: usize) -> PauliIR {
        let mut terms = Vec::new();
        for i in 0..n {
            let mut s = PauliString::identity(n);
            s.set(i, pauli::Pauli::Z);
            s.set((i + 1) % n, pauli::Pauli::Z);
            terms.push(PauliTerm::new(s, 1.0));
        }
        PauliIR::single_block(n, terms, Parameter::named("gamma", 0.4))
    }

    #[test]
    fn compiles_ring_onto_line() {
        let device = devices::linear(6);
        let r = compile_qaoa(&ring_ir(6), &device);
        assert!(r
            .circuit
            .respects_connectivity(|a, b| device.has_edge(a, b)));
        assert_eq!(r.emitted.len(), 6);
        // A 6-ring on a line needs routing.
        assert!(r.circuit.stats().swap >= 1);
    }

    #[test]
    fn adjacent_pairs_need_no_swaps() {
        let device = devices::linear(4);
        let mut ir = PauliIR::new(3);
        for (a, b) in [(0usize, 1usize), (1, 2)] {
            let mut s = PauliString::identity(3);
            s.set(a, pauli::Pauli::Z);
            s.set(b, pauli::Pauli::Z);
            ir.push_block(PauliBlock::new(
                vec![PauliTerm::new(s, 1.0)],
                Parameter::named("gamma", 0.4),
            ));
        }
        let r = compile_qaoa(&ir, &device);
        assert_eq!(r.circuit.stats().swap, 0);
        assert_eq!(r.circuit.stats().cnot, 4);
    }

    #[test]
    fn handles_single_qubit_terms() {
        let device = devices::linear(3);
        let mut ir = PauliIR::new(2);
        let mut s = PauliString::identity(2);
        s.set(1, pauli::Pauli::Z);
        ir.push_block(PauliBlock::new(
            vec![PauliTerm::new(s, 0.5)],
            Parameter::named("gamma", 1.0),
        ));
        let r = compile_qaoa(&ir, &device);
        assert_eq!(r.circuit.stats().single, 1);
        assert_eq!(r.circuit.stats().cnot, 0);
    }

    #[test]
    #[should_panic(expected = "Z-type")]
    fn rejects_non_z_strings() {
        let device = devices::linear(3);
        let mut ir = PauliIR::new(2);
        ir.push_block(PauliBlock::new(
            vec![PauliTerm::new("XX".parse().unwrap(), 1.0)],
            Parameter::named("gamma", 1.0),
        ));
        compile_qaoa(&ir, &device);
    }

    #[test]
    #[should_panic(expected = "2-local")]
    fn rejects_high_weight_strings() {
        let device = devices::linear(4);
        let mut ir = PauliIR::new(3);
        ir.push_block(PauliBlock::new(
            vec![PauliTerm::new("ZZZ".parse().unwrap(), 1.0)],
            Parameter::named("gamma", 1.0),
        ));
        compile_qaoa(&ir, &device);
    }
}
