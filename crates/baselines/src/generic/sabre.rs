//! SABRE-style qubit routing.
//!
//! The generic second-stage compilers must map logical circuits (e.g. the
//! TK baseline's output) onto coupling-constrained devices. This is a
//! compact SABRE (Li et al., ASPLOS 2019): a front layer of pending two-qubit gates, a
//! lookahead window, and greedy SWAP selection by distance heuristic with
//! a decay term that discourages ping-ponging the same qubit.

use qcircuit::{Circuit, Gate};
use qdevice::{CouplingMap, Layout};

/// A routed circuit plus the layout bookkeeping.
#[derive(Clone, Debug)]
pub struct Routed {
    /// Physical circuit using only coupled pairs.
    pub circuit: Circuit,
    /// Initial physical position of each logical qubit.
    pub initial_l2p: Vec<usize>,
    /// Final physical position of each logical qubit.
    pub final_l2p: Vec<usize>,
}

/// Greedy interaction-aware initial placement (shared by the routers).
pub(crate) fn initial_placement(circuit: &Circuit, device: &CouplingMap) -> Vec<usize> {
    let n = circuit.num_qubits();
    let subgraph = device.most_connected_subgraph(n);
    let mut weight = vec![vec![0u64; n]; n];
    let mut total = vec![0u64; n];
    for g in circuit.gates() {
        if let (a, Some(b)) = g.qubits() {
            weight[a][b] += 1;
            weight[b][a] += 1;
            total[a] += 1;
            total[b] += 1;
        }
    }
    let mut l2p = vec![usize::MAX; n];
    let mut free = subgraph;
    let mut placed: Vec<usize> = Vec::new();
    let seed = (0..n).max_by_key(|&l| total[l]).unwrap_or(0);
    l2p[seed] = free.remove(0);
    placed.push(seed);
    while placed.len() < n {
        let next = (0..n)
            .filter(|&l| l2p[l] == usize::MAX)
            .max_by_key(|&l| (placed.iter().map(|&p| weight[l][p]).sum::<u64>(), total[l]))
            .expect("unplaced logical exists");
        let (fi, _) = free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &cand)| {
                placed
                    .iter()
                    .map(|&p| weight[next][p] * u64::from(device.distance(cand, l2p[p])))
                    .sum::<u64>()
            })
            .expect("free seat exists");
        l2p[next] = free.remove(fi);
        placed.push(next);
    }
    l2p
}

/// Routes a logical circuit onto `device` with SABRE-style SWAP insertion.
///
/// # Panics
///
/// Panics if the device has fewer qubits than the circuit or is
/// disconnected.
pub fn route(circuit: &Circuit, device: &CouplingMap) -> Routed {
    let n = circuit.num_qubits();
    assert!(n <= device.num_qubits(), "device too small");
    assert!(device.is_connected(), "device must be connected");
    let initial = initial_placement(circuit, device);
    let mut layout = Layout::from_l2p(device.num_qubits(), initial.clone());
    let mut out = Circuit::new(device.num_qubits());

    // Wire-ordered pending gates: for each gate, the number of unexecuted
    // predecessors on its wires.
    let gates = circuit.gates();
    let mut last_on_wire: Vec<Option<usize>> = vec![None; n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    for (i, g) in gates.iter().enumerate() {
        let (a, b) = g.qubits();
        for q in [Some(a), b].into_iter().flatten() {
            if let Some(p) = last_on_wire[q] {
                preds[i].push(p);
                succs[p].push(i);
            }
            last_on_wire[q] = Some(i);
        }
    }
    let mut missing: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut front: Vec<usize> = (0..gates.len()).filter(|&i| missing[i] == 0).collect();
    let mut done = vec![false; gates.len()];
    let mut in_front = vec![false; gates.len()];
    for &i in &front {
        in_front[i] = true;
    }
    let mut decay: Vec<f64> = vec![1.0; device.num_qubits()];
    let mut last_swap: Option<(usize, usize)> = None;
    // Persistent pointer past the fully-executed prefix, so the lookahead
    // window is O(window) per swap instead of O(circuit).
    let mut scan_ptr = 0usize;

    while !front.is_empty() {
        // Execute everything executable.
        let mut executed_any = false;
        let mut next_front = Vec::new();
        for &i in &front {
            let g = gates[i];
            let executable = match g.qubits() {
                (_, None) => true,
                (a, Some(b)) => device.has_edge(layout.phys(a), layout.phys(b)),
            };
            if executable {
                out.push(g.map_qubits(|q| layout.phys(q)));
                done[i] = true;
                in_front[i] = false;
                executed_any = true;
                for &s in &succs[i] {
                    missing[s] -= 1;
                    if missing[s] == 0 {
                        next_front.push(s);
                        in_front[s] = true;
                    }
                }
            } else {
                next_front.push(i);
            }
        }
        front = next_front;
        if executed_any {
            decay.iter_mut().for_each(|d| *d = 1.0);
            last_swap = None;
            continue;
        }
        if front.is_empty() {
            break;
        }
        // Blocked: pick the SWAP minimizing the heuristic.
        let blocked: Vec<(usize, usize)> = front
            .iter()
            .filter_map(|&i| match gates[i].qubits() {
                (a, Some(b)) => Some((a, b)),
                _ => None,
            })
            .collect();
        // Lookahead window: the next few two-qubit gates beyond the front.
        while scan_ptr < gates.len() && done[scan_ptr] {
            scan_ptr += 1;
        }
        let mut lookahead: Vec<(usize, usize)> = Vec::with_capacity(20);
        let mut i = scan_ptr;
        while i < gates.len() && lookahead.len() < 20 {
            if !done[i] && !in_front[i] {
                if let (a, Some(b)) = gates[i].qubits() {
                    lookahead.push((a, b));
                }
            }
            i += 1;
        }
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in &blocked {
            for &l in &[a, b] {
                let p = layout.phys(l);
                for &q in device.neighbors(p) {
                    let e = (p.min(q), p.max(q));
                    if !candidates.contains(&e) && Some(e) != last_swap {
                        candidates.push(e);
                    }
                }
            }
        }
        let score = |sw: (usize, usize)| -> f64 {
            // Distance after the candidate swap, without cloning layouts.
            let remap = |p: usize| {
                if p == sw.0 {
                    sw.1
                } else if p == sw.1 {
                    sw.0
                } else {
                    p
                }
            };
            let front_cost: u32 = blocked
                .iter()
                .map(|&(a, b)| device.distance(remap(layout.phys(a)), remap(layout.phys(b))))
                .sum();
            let look_cost: u32 = lookahead
                .iter()
                .map(|&(a, b)| device.distance(remap(layout.phys(a)), remap(layout.phys(b))))
                .sum();
            decay[sw.0].max(decay[sw.1])
                * (front_cost as f64 + 0.5 * look_cost as f64 / (lookahead.len().max(1) as f64))
        };
        let best = candidates
            .iter()
            .copied()
            .min_by(|&x, &y| score(x).partial_cmp(&score(y)).expect("finite scores"))
            .expect("blocked gates have swap candidates");
        out.push(Gate::Swap(best.0, best.1));
        layout.swap_physical(best.0, best.1);
        decay[best.0] += 0.1;
        decay[best.1] += 0.1;
        last_swap = Some(best);
    }
    Routed {
        circuit: out,
        initial_l2p: initial,
        final_l2p: layout.l2p().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdevice::devices;

    #[test]
    fn already_conformant_circuits_gain_no_swaps() {
        let device = devices::linear(3);
        let mut c = Circuit::new(3);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(1, 2));
        let r = route(&c, &device);
        assert_eq!(r.circuit.stats().swap, 0);
        assert_eq!(r.circuit.stats().cnot, 2);
    }

    #[test]
    fn distant_gate_forces_swaps() {
        let device = devices::linear(5);
        let mut c = Circuit::new(5);
        // Interactions that cannot all be adjacent: a star around qubit 0.
        for q in 1..5 {
            c.push(Gate::Cx(0, q));
        }
        let r = route(&c, &device);
        assert!(r
            .circuit
            .respects_connectivity(|a, b| device.has_edge(a, b)));
        assert!(r.circuit.stats().swap >= 1);
        assert_eq!(r.circuit.stats().cnot, 4);
    }

    #[test]
    fn single_qubit_gates_pass_through() {
        let device = devices::linear(2);
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Rz(1, 0.5));
        let r = route(&c, &device);
        assert_eq!(r.circuit.stats().single, 2);
    }

    #[test]
    fn routed_gate_order_respects_wire_dependencies() {
        let device = devices::linear(4);
        let mut c = Circuit::new(4);
        c.push(Gate::Cx(0, 3)); // needs routing
        c.push(Gate::H(3)); // must come after
        let r = route(&c, &device);
        let pos_cx = r
            .circuit
            .gates()
            .iter()
            .position(|g| matches!(g, Gate::Cx(..)))
            .unwrap();
        let pos_h = r
            .circuit
            .gates()
            .iter()
            .position(|g| matches!(g, Gate::H(_)))
            .unwrap();
        assert!(pos_cx < pos_h);
    }

    #[test]
    fn layouts_are_tracked() {
        let device = devices::linear(4);
        let mut c = Circuit::new(4);
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(2, 3));
        c.push(Gate::Cx(0, 3));
        c.push(Gate::Cx(1, 2));
        let r = route(&c, &device);
        let mut seen = [false; 4];
        for &p in &r.final_l2p {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }
}
