//! Emulations of the generic second-stage compilers.
//!
//! The paper runs every first-stage output (Paulihedral or TK) through an
//! industry generic compiler: Qiskit at optimization level 3 or t|ket⟩ at
//! level 2. Those are closed Python stacks; what the paper uses them for is
//! (a) routing circuits that are not hardware-conformant and (b) gate-level
//! clean-up (single-qubit fusion, CX cancellation, commutative
//! cancellation). The two pipelines here implement exactly that role with
//! different pass mixes, mirroring how the two products differ:
//!
//! * [`qiskit_l3_like`] — SABRE routing + iterated {fusion, commutative
//!   cancellation} to a fixpoint,
//! * [`tket_o2_like`] — path-based token routing + one fusion pass +
//!   cancellation.

pub mod sabre;

use qcircuit::{fusion, peephole, Circuit, Gate};
use qdevice::{CouplingMap, Layout};

/// Output of a generic pipeline.
#[derive(Clone, Debug)]
pub struct GenericResult {
    /// The optimized (and, if requested, routed) circuit with SWAPs
    /// decomposed into CNOTs.
    pub circuit: Circuit,
    /// Layouts when the pipeline performed routing.
    pub initial_l2p: Option<Vec<usize>>,
    /// Final layout when the pipeline performed routing.
    pub final_l2p: Option<Vec<usize>>,
}

/// What the pipeline should do about qubit mapping.
#[derive(Clone, Copy, Debug)]
pub enum Mapping<'a> {
    /// Logical target (FT backend): no routing.
    None,
    /// The circuit must be routed onto the device.
    Route(&'a CouplingMap),
    /// The circuit is already hardware-conformant (e.g. Paulihedral SC
    /// output); only clean-up runs.
    AlreadyMapped,
}

fn cleanup_fixpoint(circuit: &mut Circuit, max_rounds: usize) {
    for _ in 0..max_rounds {
        let removed = fusion::fuse_single_qubit_runs(circuit);
        let report = peephole::optimize(circuit);
        if removed == 0 && report.cancelled + report.merged + report.zero_rotations == 0 {
            break;
        }
    }
}

/// The Qiskit-level-3-like pipeline: SABRE routing (if needed), SWAP
/// decomposition, then {single-qubit fusion + commutative cancellation} to
/// a fixpoint.
pub fn qiskit_l3_like(circuit: &Circuit, mapping: Mapping<'_>) -> GenericResult {
    let (mut c, initial, final_) = match mapping {
        Mapping::Route(device) => {
            let r = sabre::route(circuit, device);
            (r.circuit, Some(r.initial_l2p), Some(r.final_l2p))
        }
        Mapping::None | Mapping::AlreadyMapped => (circuit.clone(), None, None),
    };
    c = c.decompose_swaps();
    cleanup_fixpoint(&mut c, 8);
    GenericResult {
        circuit: c,
        initial_l2p: initial,
        final_l2p: final_,
    }
}

/// Path-based "token" router: each blocked two-qubit gate walks its
/// control toward its target along a shortest path. Simpler and greedier
/// than SABRE — the t|ket⟩-flavored alternative.
fn route_token(circuit: &Circuit, device: &CouplingMap) -> sabre::Routed {
    let n = circuit.num_qubits();
    let initial = sabre::initial_placement(circuit, device);
    let mut layout = Layout::from_l2p(device.num_qubits(), initial.clone());
    let mut out = Circuit::new(device.num_qubits());
    for g in circuit.gates() {
        match g.qubits() {
            (_, None) => out.push(g.map_qubits(|q| layout.phys(q))),
            (a, b) => {
                let b = b.expect("two-qubit gate");
                while !device.has_edge(layout.phys(a), layout.phys(b)) {
                    let path = device.shortest_path(layout.phys(a), layout.phys(b), |_, _| 1.0);
                    out.push(Gate::Swap(path[0], path[1]));
                    layout.swap_physical(path[0], path[1]);
                }
                out.push(g.map_qubits(|q| layout.phys(q)));
            }
        }
    }
    let _ = n;
    sabre::Routed {
        circuit: out,
        initial_l2p: initial,
        final_l2p: layout.l2p().to_vec(),
    }
}

/// The tket-O2-like pipeline: path-based routing (if needed), SWAP
/// decomposition, one fusion pass, then commutative cancellation.
pub fn tket_o2_like(circuit: &Circuit, mapping: Mapping<'_>) -> GenericResult {
    let (mut c, initial, final_) = match mapping {
        Mapping::Route(device) => {
            let r = route_token(circuit, device);
            (r.circuit, Some(r.initial_l2p), Some(r.final_l2p))
        }
        Mapping::None | Mapping::AlreadyMapped => (circuit.clone(), None, None),
    };
    c = c.decompose_swaps();
    fusion::fuse_single_qubit_runs(&mut c);
    peephole::optimize(&mut c);
    GenericResult {
        circuit: c,
        initial_l2p: initial,
        final_l2p: final_,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qdevice::devices;

    #[test]
    fn l3_cancels_redundant_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(0));
        c.push(Gate::Cx(0, 1));
        c.push(Gate::Cx(0, 1));
        let r = qiskit_l3_like(&c, Mapping::None);
        assert!(r.circuit.is_empty());
    }

    #[test]
    fn l3_routes_nonconformant_circuits() {
        let device = devices::linear(4);
        let mut c = Circuit::new(4);
        for q in 1..4 {
            c.push(Gate::Cx(0, q));
        }
        let r = qiskit_l3_like(&c, Mapping::Route(&device));
        assert!(r
            .circuit
            .respects_connectivity(|a, b| device.has_edge(a, b)));
        assert_eq!(r.circuit.stats().swap, 0, "swaps must be decomposed");
        assert!(r.initial_l2p.is_some());
    }

    #[test]
    fn o2_routes_and_cleans() {
        let device = devices::linear(4);
        let mut c = Circuit::new(4);
        for q in 1..4 {
            c.push(Gate::Cx(0, q));
        }
        c.push(Gate::H(2));
        c.push(Gate::H(2));
        let r = tket_o2_like(&c, Mapping::Route(&device));
        assert!(r
            .circuit
            .respects_connectivity(|a, b| device.has_edge(a, b)));
    }

    #[test]
    fn already_mapped_skips_routing() {
        let mut c = Circuit::new(3);
        c.push(Gate::Swap(0, 1));
        c.push(Gate::Cx(1, 2));
        let r = qiskit_l3_like(&c, Mapping::AlreadyMapped);
        assert!(r.initial_l2p.is_none());
        assert_eq!(r.circuit.stats().swap, 0);
    }

    #[test]
    fn pipelines_differ_on_the_same_input() {
        // Not a strict requirement, but the two emulations should not be
        // the same function: build a circuit where lookahead matters.
        let device = devices::linear(5);
        let mut c = Circuit::new(5);
        c.push(Gate::Cx(0, 4));
        c.push(Gate::Cx(1, 3));
        c.push(Gate::Cx(0, 2));
        let a = qiskit_l3_like(&c, Mapping::Route(&device));
        let b = tket_o2_like(&c, Mapping::Route(&device));
        assert!(a
            .circuit
            .respects_connectivity(|x, y| device.has_edge(x, y)));
        assert!(b
            .circuit
            .respects_connectivity(|x, y| device.has_edge(x, y)));
    }
}
