//! Naive term-by-term synthesis.
//!
//! Every Pauli string becomes its own gadget with an ascending-index CNOT
//! chain, in program order, with no cancellation or mapping awareness.
//! Table 1's "CNOT #/Single #" columns are exactly these counts.

use pauli::PauliString;
use paulihedral::ir::PauliIR;
use paulihedral::synth::chain::emit_gadget;
use qcircuit::Circuit;

/// Result of naive synthesis.
#[derive(Clone, Debug)]
pub struct NaiveResult {
    /// The unoptimized logical circuit.
    pub circuit: Circuit,
    /// Emission order (program order, identity strings skipped).
    pub emitted: Vec<(PauliString, f64)>,
}

/// Synthesizes the program in order with naive ascending chains.
pub fn synthesize(ir: &PauliIR) -> NaiveResult {
    let mut circuit = Circuit::new(ir.num_qubits());
    let mut emitted = Vec::new();
    for block in ir.blocks() {
        for (i, term) in block.terms.iter().enumerate() {
            if term.string.is_identity() {
                continue;
            }
            let theta = block.theta(i);
            let order = term.string.support();
            emit_gadget(&mut circuit, &term.string, theta, &order);
            emitted.push((term.string.clone(), theta));
        }
    }
    NaiveResult { circuit, emitted }
}

/// The closed-form naive gate counts of a program: `(cnot, single)`.
///
/// A string with `k` non-identity operators costs `2(k−1)` CNOTs and
/// `1 + 2·(#X + #Y)` single-qubit gates (one `Rz` plus paired basis
/// changes) — the formula behind Table 1.
pub fn naive_counts(ir: &PauliIR) -> (usize, usize) {
    let mut cnot = 0;
    let mut single = 0;
    for block in ir.blocks() {
        for term in &block.terms {
            let k = term.string.weight();
            if k == 0 {
                continue;
            }
            cnot += 2 * (k - 1);
            let basis: usize = term
                .string
                .support()
                .iter()
                .filter(|&&q| matches!(term.string.get(q), pauli::Pauli::X | pauli::Pauli::Y))
                .count();
            single += 1 + 2 * basis;
        }
    }
    (cnot, single)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::PauliTerm;
    use paulihedral::ir::{Parameter, PauliBlock};

    fn ir_of(strings: &[&str]) -> PauliIR {
        let n = strings[0].len();
        let mut ir = PauliIR::new(n);
        for s in strings {
            ir.push_block(PauliBlock::new(
                vec![PauliTerm::new(s.parse().unwrap(), 1.0)],
                Parameter::time(0.5),
            ));
        }
        ir
    }

    #[test]
    fn counts_match_emitted_circuit() {
        let ir = ir_of(&["ZZY", "XIZ", "IIZ"]);
        let r = synthesize(&ir);
        let (cnot, single) = naive_counts(&ir);
        let s = r.circuit.stats();
        assert_eq!(s.cnot, cnot);
        assert_eq!(s.single, single);
    }

    #[test]
    fn qaoa_edge_costs_two_cnots_one_rz() {
        // The Table 1 QAOA pattern: each ZZ string is 2 CNOTs + 1 single.
        let ir = ir_of(&["IZZ", "ZZI", "ZIZ"]);
        let (cnot, single) = naive_counts(&ir);
        assert_eq!(cnot, 6);
        assert_eq!(single, 3);
    }

    #[test]
    fn heisenberg_pattern_costs() {
        // XX: 2 CNOT + 1 Rz + 4 H = 5 singles; YY likewise; ZZ: 1 single.
        let ir = ir_of(&["XX", "YY", "ZZ"]);
        let (cnot, single) = naive_counts(&ir);
        assert_eq!(cnot, 6);
        assert_eq!(single, 11);
    }

    #[test]
    fn emission_keeps_program_order() {
        let ir = ir_of(&["ZZI", "XXI"]);
        let r = synthesize(&ir);
        assert_eq!(r.emitted[0].0.to_string(), "ZZI");
        assert_eq!(r.emitted[1].0.to_string(), "XXI");
        assert_eq!(r.emitted[0].1, 0.5);
    }

    #[test]
    fn identity_strings_are_skipped() {
        let mut ir = PauliIR::new(2);
        ir.push_block(PauliBlock::new(
            vec![
                PauliTerm::new(PauliString::identity(2), 3.0),
                PauliTerm::new("ZZ".parse().unwrap(), 1.0),
            ],
            Parameter::time(1.0),
        ));
        let r = synthesize(&ir);
        assert_eq!(r.emitted.len(), 1);
    }
}
