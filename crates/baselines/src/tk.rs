//! The simultaneous-diagonalization baseline ("TK").
//!
//! Emulates the quantum-simulation optimization strategy of t|ket⟩
//! [11, 15–17] from the cited literature: Pauli strings are greedily
//! partitioned into mutually commuting clusters; each cluster is conjugated
//! by a Clifford circuit that diagonalizes every string simultaneously
//! (symplectic Gaussian elimination, see [`pauli::Tableau`]); the
//! diagonalized strings become plain Z-ladder rotations; and the Clifford
//! is undone. The diagonalization Cliffords are pure overhead for clusters
//! that were already diagonal-friendly — the effect behind the paper's
//! Ising-1D observation ("even more gates after TK").
//!
//! Block constraints are relaxed (strings are clustered individually),
//! exactly as the paper does for its TK configuration ("this relaxation
//! allows a larger optimization space").

use pauli::{CliffordGate, PauliString, Tableau};
use paulihedral::ir::PauliIR;
use paulihedral::synth::chain::synthesize_sequence;
use qcircuit::{Circuit, Gate};

/// Upper bound on cluster size: keeps tableau elimination quadratic-in-k
/// work bounded on the 30k+-string benchmarks (commercial implementations
/// cap partition sizes similarly).
const MAX_CLUSTER: usize = 1000;

/// Result of the TK baseline.
#[derive(Clone, Debug)]
pub struct TkResult {
    /// The synthesized logical circuit (unoptimized; feed it to a
    /// [`crate::generic`] pipeline, as the paper's "TK+Qiskit_L3/tket_O2").
    pub circuit: Circuit,
    /// The `(string, θ)` sequence in the (cluster-reordered) emission
    /// order; the circuit implements `Π exp(iθP)` in this order.
    pub emitted: Vec<(PauliString, f64)>,
    /// Number of commuting clusters formed.
    pub num_clusters: usize,
}

fn clifford_to_gate(g: CliffordGate) -> Gate {
    match g {
        CliffordGate::H(q) => Gate::H(q),
        CliffordGate::S(q) => Gate::S(q),
        CliffordGate::Sdg(q) => Gate::Sdg(q),
        CliffordGate::Cx(c, t) => Gate::Cx(c, t),
    }
}

/// Greedy first-fit partition into mutually commuting clusters.
fn cluster(terms: &[(PauliString, f64)]) -> Vec<Vec<usize>> {
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for (i, (s, _)) in terms.iter().enumerate() {
        let mut placed = false;
        for c in clusters.iter_mut() {
            if c.len() >= MAX_CLUSTER {
                continue;
            }
            if c.iter().all(|&j| terms[j].0.commutes_with(s)) {
                c.push(i);
                placed = true;
                break;
            }
        }
        if !placed {
            clusters.push(vec![i]);
        }
    }
    clusters
}

/// Compiles a program with the simultaneous-diagonalization strategy.
///
/// # Panics
///
/// Panics if tableau diagonalization fails, which cannot happen for the
/// mutually commuting clusters produced here.
pub fn compile_tk(ir: &PauliIR) -> TkResult {
    let n = ir.num_qubits();
    let terms: Vec<(PauliString, f64)> = ir
        .blocks()
        .iter()
        .flat_map(|b| {
            b.terms
                .iter()
                .enumerate()
                .map(move |(i, t)| (t.string.clone(), b.theta(i)))
        })
        .filter(|(s, _)| !s.is_identity())
        .collect();
    let clusters = cluster(&terms);
    let mut circuit = Circuit::new(n);
    let mut emitted = Vec::new();
    for cluster in &clusters {
        let strings: Vec<PauliString> = cluster.iter().map(|&i| terms[i].0.clone()).collect();
        let all_diagonal = strings.iter().all(|s| s.x_words().iter().all(|&w| w == 0));
        let (diag_seq, clifford): (Vec<(PauliString, f64)>, Vec<CliffordGate>) = if all_diagonal {
            // Already Z-only: no Clifford overhead.
            (
                cluster.iter().map(|&i| terms[i].clone()).collect(),
                Vec::new(),
            )
        } else {
            let mut tableau = Tableau::from_strings(&strings);
            tableau
                .diagonalize()
                .expect("clusters are mutually commuting by construction");
            let seq = cluster
                .iter()
                .enumerate()
                .map(|(r, &i)| {
                    let theta = if tableau.sign(r) {
                        -terms[i].1
                    } else {
                        terms[i].1
                    };
                    (tableau.row(r).clone(), theta)
                })
                .collect();
            (seq, tableau.gates().to_vec())
        };
        // exp(iθP) = G† exp(±iθ Z_S) G  ⇒  circuit: G, ladders, G†.
        for &g in &clifford {
            circuit.push(clifford_to_gate(g));
        }
        let ladders = synthesize_sequence(n, &diag_seq);
        circuit.append_circuit(&ladders);
        for &g in clifford.iter().rev() {
            circuit.push(clifford_to_gate(g.inverse()));
        }
        emitted.extend(cluster.iter().map(|&i| terms[i].clone()));
    }
    TkResult {
        circuit,
        emitted,
        num_clusters: clusters.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pauli::PauliTerm;
    use paulihedral::ir::{Parameter, PauliBlock};

    fn ir_of(strings: &[(&str, f64)]) -> PauliIR {
        let n = strings[0].0.len();
        let mut ir = PauliIR::new(n);
        for (s, w) in strings {
            ir.push_block(PauliBlock::new(
                vec![PauliTerm::new(s.parse().unwrap(), *w)],
                Parameter::time(1.0),
            ));
        }
        ir
    }

    #[test]
    fn commuting_strings_share_a_cluster() {
        let ir = ir_of(&[("ZZI", 0.5), ("IZZ", 0.5), ("XXX", 0.5)]);
        let r = compile_tk(&ir);
        // ZZI and IZZ commute; XXX commutes with neither? It commutes with
        // both actually (two overlaps each)... verify only the count here.
        assert!(r.num_clusters <= 2);
        assert_eq!(r.emitted.len(), 3);
    }

    #[test]
    fn anticommuting_strings_split_clusters() {
        let ir = ir_of(&[("ZI", 1.0), ("XI", 1.0)]);
        let r = compile_tk(&ir);
        assert_eq!(r.num_clusters, 2);
    }

    #[test]
    fn diagonal_clusters_have_no_clifford_overhead() {
        // An Ising-style all-Z program: TK emits only ladders.
        let ir = ir_of(&[("ZZI", 1.0), ("IZZ", 1.0)]);
        let r = compile_tk(&ir);
        let s = r.circuit.stats();
        assert_eq!(s.cnot, 4);
        assert_eq!(s.single, 2);
    }

    #[test]
    fn non_diagonal_clusters_pay_clifford_overhead() {
        // The same Ising chain plus one X-type string forces a Clifford
        // conjugation for its cluster.
        let ir = ir_of(&[("XXI", 1.0), ("IXX", 1.0)]);
        let r = compile_tk(&ir);
        // Strings diagonalize to Z-ladders but H-layer overhead appears.
        assert!(r.circuit.stats().single > 0);
        assert!(r.circuit.stats().cnot >= 4);
    }

    #[test]
    fn emitted_covers_all_strings_in_cluster_order() {
        let ir = ir_of(&[("ZZ", 0.1), ("XX", 0.2), ("YY", 0.3)]);
        let r = compile_tk(&ir);
        assert_eq!(r.emitted.len(), 3);
        // All three mutually commute → single cluster, program order kept.
        assert_eq!(r.num_clusters, 1);
        assert_eq!(r.emitted[0].0.to_string(), "ZZ");
    }
}
