//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, API-compatible implementation: [`Rng`] (`gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (a
//! xoshiro256++ generator), and [`seq::SliceRandom`] (`shuffle`, `choose`).
//! Swap the workspace `rand` path entry for the real crate when a registry
//! is available; everything here follows the rand 0.8 method names.

#![forbid(unsafe_code)]

/// Low-level source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from all bit patterns (the `rand`
/// `Standard` distribution; floats sample uniformly from `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // Rounding can land exactly on the excluded upper bound
                // (e.g. a tiny span at a large start); keep end-exclusivity.
                if v < self.end {
                    v
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64 (deterministic for a given seed, like `rand`'s `StdRng`
    /// contract modulo the exact stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits.
            let mut x = state;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_covers_inclusive_and_exclusive_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
            let v = rng.gen_range(1..=3u8);
            assert!((1..=3).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&i));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_end_exclusive_under_rounding() {
        let mut rng = StdRng::seed_from_u64(6);
        // A span so small relative to its start that `start + u * span`
        // rounds onto `end` for most u.
        for _ in 0..1000 {
            let v = rng.gen_range(1e16..1e16 + 2.0f64);
            assert!((1e16..1e16 + 2.0).contains(&v), "got {v}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seeded shuffle should move something");
    }

    #[test]
    fn choose_returns_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
