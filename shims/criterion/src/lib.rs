//! Offline stand-in for the subset of the `criterion` crate this workspace
//! uses: `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size` and `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and `black_box`.
//!
//! Timing is a plain median-of-samples report (no warm-up modeling, no
//! statistics, no HTML) — enough to compare runs by eye and to keep
//! `cargo bench` working offline. Swap the workspace `criterion` path entry
//! for the real crate when a registry is available.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to every registered bench function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id.to_string(), self.default_sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with `input`, labeled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f`, labeled by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        if bencher.iters > 0 {
            samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
    println!(
        "{label:<50} median {:>12} /iter ({sample_size} samples)",
        fmt_ns(median)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Times closures for one sample.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated runs of `routine`; its return value is black-boxed so
    /// computing it cannot be optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // A fixed small batch keeps per-sample cost bounded for the heavy
        // compilation benches this workspace runs.
        const BATCH: u64 = 1;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }
}

/// A benchmark label, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A label for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A label from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_owned(),
            parameter: None,
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (func, Some(p)) => write!(f, "{func}/{p}"),
            (func, None) => write!(f, "{func}"),
        }
    }
}

/// Bundles bench functions into one runner, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this
            // shim has no filtering, so they are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", "p").to_string(), "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn groups_run_and_time_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &5usize, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}
