//! `any::<T>()` for types with a canonical full-domain strategy.

use std::marker::PhantomData;

use rand::{Rng, Standard};

use crate::strategy::{BoxedTree, Strategy, TestRng};

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Returns the full-domain strategy for this type.
    fn arbitrary() -> AnyStrategy<Self>;
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Generates any value of `T` (uniform over the type's domain). Full-domain
/// draws carry no range to steer toward, so these values do not shrink.
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Standard + Clone + 'static> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<T> {
        Box::new(crate::strategy::LeafTree(rng.gen::<T>()))
    }
}

/// The strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    T::arbitrary()
}
