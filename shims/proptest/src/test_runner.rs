//! The case runner: regression replay, deterministic case seeds, greedy
//! shrinking, and failure reporting.

use std::any::Any;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use rand::SeedableRng;

use crate::strategy::{BoxedTree, Strategy, TestRng, ValueTree};

/// Cap on body executions spent minimizing one failure. Shrinking is an
/// ergonomics feature; past this budget the current (still failing,
/// partially minimized) case is reported as-is.
const MAX_SHRINK_ATTEMPTS: u32 = 1024;

/// Fixed base seed so runs are reproducible without any environment setup.
const DEFAULT_BASE_SEED: u64 = 0x5EED_CAFE_F00D_D00D;

/// Configuration for one `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

fn base_seed() -> u64 {
    match std::env::var("PROPTEST_RNG_SEED") {
        Ok(v) => v
            .parse()
            .or_else(|_| u64::from_str_radix(v.trim_start_matches("0x"), 16))
            .unwrap_or_else(|_| panic!("PROPTEST_RNG_SEED must be an integer, got {v:?}")),
        Err(_) => DEFAULT_BASE_SEED,
    }
}

fn case_count(config: &ProptestConfig) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_CASES must be an integer, got {v:?}")),
        Err(_) => config.cases,
    }
}

/// FNV-1a, to give every test its own seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// `proptest-regressions/<file-stem>.txt` next to the owning crate's
/// manifest (mirrors real proptest's layout for in-crate test files).
fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_owned());
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

/// Parses `cc <16-hex-digit-seed> [# comment]` lines; everything else
/// (comments, blanks, unrecognized lines) is ignored.
fn regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            u64::from_str_radix(token, 16).ok()
        })
        .collect()
}

/// Runs one case body over a tree's current value, catching its panic.
fn run_case<T, B: Fn(T)>(
    body: &B,
    tree: &dyn ValueTree<Value = T>,
) -> Result<(), Box<dyn Any + Send>> {
    panic::catch_unwind(AssertUnwindSafe(|| body(tree.current())))
}

/// Greedy minimization: repeatedly replace the failing tree with its first
/// still-failing shrink candidate until none fails (or the attempt budget
/// runs out). Returns the minimized tree, the panic it produced, and the
/// number of successful shrink steps.
fn shrink<T, B: Fn(T)>(
    mut tree: BoxedTree<T>,
    body: &B,
    mut cause: Box<dyn Any + Send>,
) -> (BoxedTree<T>, Box<dyn Any + Send>, u32) {
    let mut steps = 0;
    let mut attempts = 0;
    'minimize: loop {
        for cand in tree.shrink_candidates() {
            if attempts >= MAX_SHRINK_ATTEMPTS {
                break 'minimize;
            }
            attempts += 1;
            if let Err(c) = run_case(body, &*cand) {
                tree = cand;
                cause = c;
                steps += 1;
                continue 'minimize;
            }
        }
        break;
    }
    (tree, cause, steps)
}

/// Runs `body` once per seed: first every seed in the regression file, then
/// `config.cases` seeds derived deterministically from the base seed and
/// the test name. On failure, the input is minimized through the
/// strategy's shrink tree, the minimal case and the `cc` line to add are
/// reported, and the minimal case's panic propagates.
pub fn run_property_test<S, B>(
    config: &ProptestConfig,
    test_name: &str,
    manifest_dir: &str,
    source_file: &str,
    strategy: &S,
    body: B,
) where
    S: Strategy,
    S::Value: std::fmt::Debug,
    B: Fn(S::Value),
{
    let reg_path = regression_path(manifest_dir, source_file);
    let stream = base_seed() ^ hash_name(test_name);

    for (label, seed) in regression_seeds(&reg_path)
        .into_iter()
        .map(|s| ("regression", s))
        .chain((0..case_count(config)).map(|i| ("random", stream.wrapping_add(i as u64))))
    {
        let mut rng = TestRng::seed_from_u64(seed);
        let tree = strategy.new_tree(&mut rng);
        if let Err(cause) = run_case(&body, &*tree) {
            let (minimal, minimal_cause, steps) = shrink(tree, &body, cause);
            eprintln!(
                "proptest shim: {test_name} failed on {label} case, seed {seed:#018x}.\n\
                 Minimal failing input after {steps} shrink step(s):\n    {:?}\n\
                 To pin the seed as a regression, add the line\n    cc {seed:016x}\n\
                 to {}",
                minimal.current(),
                reg_path.display()
            );
            panic::resume_unwind(minimal_cause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_lines_parse() {
        let dir = std::env::temp_dir().join("ph-proptest-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("sample.txt");
        std::fs::write(
            &file,
            "# comment\n\ncc 00000000000000ff # shrinks to x = 3\nbogus line\ncc 0010\n",
        )
        .unwrap();
        assert_eq!(regression_seeds(&file), vec![0xff, 0x10]);
        assert!(regression_seeds(&dir.join("missing.txt")).is_empty());
    }

    #[test]
    fn seeds_differ_per_test_name() {
        assert_ne!(hash_name("a::b"), hash_name("a::c"));
    }

    #[test]
    fn failing_case_reports_and_propagates() {
        let config = ProptestConfig::with_cases(3);
        let hit = std::cell::Cell::new(0u32);
        // `Just` has no shrink candidates, so the failing body runs once.
        let strategy = crate::strategy::Just(0u8);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_property_test(&config, "t", "/nonexistent", "x.rs", &strategy, |_v| {
                hit.set(hit.get() + 1);
                if hit.get() == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(hit.get(), 2, "stops at the first failing case");
    }

    #[test]
    fn passing_run_executes_all_cases() {
        let config = ProptestConfig::with_cases(7);
        let hit = std::cell::Cell::new(0u32);
        let strategy = crate::strategy::Just(0u8);
        run_property_test(&config, "t2", "/nonexistent", "x.rs", &strategy, |_v| {
            hit.set(hit.get() + 1);
        });
        assert_eq!(hit.get(), 7);
    }

    /// The panic payload of the minimized case, as a string.
    fn minimized_payload<S, B>(strategy: &S, body: B) -> String
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        B: Fn(S::Value),
    {
        let config = ProptestConfig::with_cases(16);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_property_test(&config, "shrink", "/nonexistent", "x.rs", strategy, body);
        }));
        let payload = result.expect_err("property must fail");
        match payload.downcast::<String>() {
            Ok(s) => *s,
            Err(other) => other.downcast::<&str>().map(|s| s.to_string()).unwrap(),
        }
    }

    #[test]
    fn integers_shrink_to_the_smallest_failing_value() {
        // Fails for v >= 10: halving plus decrement must land exactly on 10.
        let payload = minimized_payload(&(0u64..1000), |v| {
            if v >= 10 {
                panic!("v={v}");
            }
        });
        assert_eq!(payload, "v=10");
    }

    #[test]
    fn vectors_shrink_to_minimal_length_and_zeroed_elements() {
        // Fails whenever the vector has 3+ elements: minimal is [0, 0, 0].
        let strategy = crate::collection::vec(0u32..100, 0..20);
        let payload = minimized_payload(&strategy, |v: Vec<u32>| {
            if v.len() >= 3 {
                panic!("{v:?}");
            }
        });
        assert_eq!(payload, "[0, 0, 0]");
    }

    #[test]
    fn shrinking_respects_dependent_failure_conditions() {
        // Fails only when both coordinates are large; each must settle at
        // its own threshold, not race past the other.
        let payload = minimized_payload(&(0i32..500, 0i32..500), |(a, b)| {
            if a >= 7 && b >= 21 {
                panic!("a={a} b={b}");
            }
        });
        assert_eq!(payload, "a=7 b=21");
    }
}
