//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses: the [`proptest!`] macro, [`Strategy`](strategy::Strategy) with
//! `prop_map`, [`prop_oneof!`], [`Just`](strategy::Just), ranges and tuples
//! as strategies, [`collection::vec`], `any::<T>()`, the `prop_assert*`
//! macros, and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, by design:
//!
//! * **Simple greedy shrinking.** A failing case is minimized by walking
//!   each strategy's shrink candidates (integers halve toward the range's
//!   low end, floats jump toward zero, vectors truncate toward their
//!   minimum length, then elements shrink in place) and the minimal
//!   still-failing input is reported alongside its seed. The search is
//!   greedy and budgeted, not proptest's full binary search.
//! * **Deterministic by default.** Case seeds derive from a fixed base seed
//!   (override with `PROPTEST_RNG_SEED`), so CI runs are reproducible. Set
//!   `PROPTEST_CASES` to change the case count.
//! * **Regression files.** `proptest-regressions/<file-stem>.txt` next to the
//!   owning crate's manifest is honored: lines of the form `cc <16-hex-seed>`
//!   are replayed before the random cases, and the runner prints the `cc`
//!   line to add when a random case fails. Generation consumes the RNG in
//!   the same order whether or not a tree is built, so pinned seeds keep
//!   reproducing the same inputs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test, with an optional message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("[prop_assert] {}", format!($($fmt)*));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "{:?} != {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "{:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (#[test] $($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default())
            #[test] $($rest)*
        );
    };
    (@impl ($config:expr)
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            #[test]
            fn $name() {
                let config = $config;
                let strategy = ($(($strategy),)+);
                $crate::test_runner::run_property_test(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    &strategy,
                    |($($arg,)+)| $body,
                );
            }
        )+
    };
}
