//! Collection strategies (`proptest::collection::vec`).

use rand::Rng;

use crate::strategy::{BoxedTree, Strategy, TestRng, ValueTree};

/// A length specification: a fixed size or a half-open range of sizes.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`. Shrinks by truncating toward the minimum length
/// (halving first, then popping) and by shrinking elements in place.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: 'static,
{
    type Value = Vec<S::Value>;

    fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<Vec<S::Value>> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        let elems = (0..len).map(|_| self.element.new_tree(rng)).collect();
        Box::new(VecTree {
            elems,
            min_len: self.size.lo,
        })
    }
}

struct VecTree<T> {
    elems: Vec<BoxedTree<T>>,
    min_len: usize,
}

impl<T: 'static> VecTree<T> {
    fn truncated(&self, len: usize) -> BoxedTree<Vec<T>> {
        Box::new(VecTree {
            elems: self.elems[..len].iter().map(|e| e.clone_tree()).collect(),
            min_len: self.min_len,
        })
    }
}

impl<T: 'static> ValueTree for VecTree<T> {
    type Value = Vec<T>;

    fn current(&self) -> Vec<T> {
        self.elems.iter().map(|e| e.current()).collect()
    }

    fn shrink_candidates(&self) -> Vec<BoxedTree<Vec<T>>> {
        let mut out: Vec<BoxedTree<Vec<T>>> = Vec::new();
        let len = self.elems.len();
        let mut lengths: Vec<usize> = Vec::new();
        for shorter in [self.min_len.max(len / 2), len.saturating_sub(1)] {
            if shorter >= self.min_len && shorter < len && !lengths.contains(&shorter) {
                lengths.push(shorter);
                out.push(self.truncated(shorter));
            }
        }
        for i in 0..len {
            for cand in self.elems[i].shrink_candidates() {
                let mut elems: Vec<BoxedTree<T>> =
                    self.elems.iter().map(|e| e.clone_tree()).collect();
                elems[i] = cand;
                out.push(Box::new(VecTree {
                    elems,
                    min_len: self.min_len,
                }));
            }
        }
        out
    }

    fn clone_tree(&self) -> BoxedTree<Vec<T>> {
        self.truncated(self.elems.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_shrinks_shorter_then_element_wise() {
        let strategy = vec(0u32..100, 2..9);
        let mut rng = TestRng::seed_from_u64(11);
        // Find a tree long enough to expose both truncation candidates.
        let tree = loop {
            let t = strategy.new_tree(&mut rng);
            if t.current().len() >= 6 {
                break t;
            }
        };
        let original = tree.current();
        let cands = tree.shrink_candidates();
        assert_eq!(cands[0].current().len(), original.len() / 2, "halves first");
        assert_eq!(cands[1].current().len(), original.len() - 1, "then pops");
        // Element-wise candidates keep the length and the other slots.
        let elem = cands[2].current();
        assert_eq!(elem.len(), original.len());
        assert!(elem[0] < original[0]);
        assert_eq!(elem[1..], original[1..]);
    }

    #[test]
    fn vec_never_shrinks_below_its_minimum_length() {
        let strategy = vec(0u32..4, 3);
        let mut rng = TestRng::seed_from_u64(5);
        let tree = strategy.new_tree(&mut rng);
        for cand in tree.shrink_candidates() {
            assert_eq!(cand.current().len(), 3, "fixed-size vec keeps its size");
        }
    }
}
