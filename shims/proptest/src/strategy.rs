//! Value-generation strategies (no shrinking — see the crate docs).

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

/// The generator threaded through every strategy.
pub type TestRng = StdRng;

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value with this strategy, then runs the strategy `f`
    /// builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
