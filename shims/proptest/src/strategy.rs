//! Value-generation strategies and their shrink trees.
//!
//! Every strategy draws a [`ValueTree`]: the generated value plus a recipe
//! for producing strictly simpler variants (halved integers, truncated
//! vectors, zeroed floats). The runner walks those candidates greedily
//! after a failure, so the reported case is minimal-ish rather than raw.
//!
//! RNG discipline: [`Strategy::new_tree`] consumes the generator in
//! exactly the same order the old non-shrinking `generate` did, so pinned
//! `cc` regression seeds keep replaying the same values.

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

/// The generator threaded through every strategy.
pub type TestRng = StdRng;

/// A generated value plus the recipe for producing smaller variants of it
/// (this shim's flattening of proptest's `ValueTree`).
pub trait ValueTree {
    /// The type of value this tree holds.
    type Value;

    /// The value at this node. May be called repeatedly; trees rebuild the
    /// value each time rather than caching it.
    fn current(&self) -> Self::Value;

    /// Strictly simpler variants to try, most aggressive first. An empty
    /// vector means the value is fully minimized.
    fn shrink_candidates(&self) -> Vec<BoxedTree<Self::Value>>;

    /// Clones this tree behind a box (object-safe `Clone`).
    fn clone_tree(&self) -> BoxedTree<Self::Value>;
}

/// A boxed, type-erased shrink tree.
pub type BoxedTree<T> = Box<dyn ValueTree<Value = T>>;

/// A recipe for producing random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value together with its shrink tree.
    fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<Self::Value>;

    /// Draws one value (same RNG consumption as [`Strategy::new_tree`]).
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.new_tree(rng).current()
    }

    /// Maps generated values through `f`. Shrinking happens on the input
    /// side and is replayed through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, O>
    where
        Self: Sized,
        Self::Value: 'static,
        O: 'static,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Generates a value with this strategy, then runs the strategy `f`
    /// builds from it. Shrinking is limited to the output strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<Self::Value> {
        (**self).new_tree(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<Self::Value> {
        (**self).new_tree(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<T> {
        self.0.new_tree(rng)
    }
}

/// A leaf tree with no simpler variants (constants, opaque values).
pub(crate) struct LeafTree<T: Clone>(pub(crate) T);

impl<T: Clone + 'static> ValueTree for LeafTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }

    fn shrink_candidates(&self) -> Vec<BoxedTree<T>> {
        Vec::new()
    }

    fn clone_tree(&self) -> BoxedTree<T> {
        Box::new(LeafTree(self.0.clone()))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn new_tree(&self, _rng: &mut TestRng) -> BoxedTree<T> {
        Box::new(LeafTree(self.0.clone()))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S: Strategy, O> {
    inner: S,
    f: Rc<dyn Fn(S::Value) -> O>,
}

impl<S, O> Strategy for Map<S, O>
where
    S: Strategy,
    S::Value: 'static,
    O: 'static,
{
    type Value = O;

    fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<O> {
        Box::new(MapTree {
            inner: self.inner.new_tree(rng),
            f: Rc::clone(&self.f),
        })
    }
}

struct MapTree<V, O> {
    inner: BoxedTree<V>,
    f: Rc<dyn Fn(V) -> O>,
}

impl<V: 'static, O: 'static> ValueTree for MapTree<V, O> {
    type Value = O;

    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }

    fn shrink_candidates(&self) -> Vec<BoxedTree<O>> {
        self.inner
            .shrink_candidates()
            .into_iter()
            .map(|inner| {
                Box::new(MapTree {
                    inner,
                    f: Rc::clone(&self.f),
                }) as BoxedTree<O>
            })
            .collect()
    }

    fn clone_tree(&self) -> BoxedTree<O> {
        Box::new(MapTree {
            inner: self.inner.clone_tree(),
            f: Rc::clone(&self.f),
        })
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<S2::Value> {
        let base = self.inner.new_tree(rng);
        (self.f)(base.current()).new_tree(rng)
    }
}

/// Uniform choice among type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<T> {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].new_tree(rng)
    }
}

/// An integer drawn from a range: shrinks toward the range's low end via
/// jump-to-lo, halving, and decrement.
struct IntTree<T> {
    lo: T,
    value: T,
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<$t> {
                Box::new(IntTree {
                    lo: self.start,
                    value: self.clone().sample_from(rng),
                })
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<$t> {
                Box::new(IntTree {
                    lo: *self.start(),
                    value: self.clone().sample_from(rng),
                })
            }
        }

        impl ValueTree for IntTree<$t> {
            type Value = $t;

            fn current(&self) -> $t {
                self.value
            }

            fn shrink_candidates(&self) -> Vec<BoxedTree<$t>> {
                // i128 comfortably holds every supported integer type, so
                // the midpoint arithmetic cannot overflow.
                let lo = self.lo as i128;
                let v = self.value as i128;
                let mut seen: Vec<i128> = Vec::new();
                let mut out: Vec<BoxedTree<$t>> = Vec::new();
                for cand in [lo, lo + (v - lo) / 2, v - 1] {
                    if cand < lo || cand >= v || seen.contains(&cand) {
                        continue;
                    }
                    seen.push(cand);
                    out.push(Box::new(IntTree {
                        lo: self.lo,
                        value: cand as $t,
                    }));
                }
                out
            }

            fn clone_tree(&self) -> BoxedTree<$t> {
                Box::new(IntTree {
                    lo: self.lo,
                    value: self.value,
                })
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A float drawn from a half-open range: shrinks toward zero (then the low
/// bound) by jumping and halving.
struct FloatTree<T> {
    lo: T,
    hi: T,
    value: T,
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<$t> {
                Box::new(FloatTree {
                    lo: self.start,
                    hi: self.end,
                    value: self.clone().sample_from(rng),
                })
            }
        }

        impl ValueTree for FloatTree<$t> {
            type Value = $t;

            fn current(&self) -> $t {
                self.value
            }

            fn shrink_candidates(&self) -> Vec<BoxedTree<$t>> {
                let mut seen: Vec<u64> = Vec::new();
                let mut out: Vec<BoxedTree<$t>> = Vec::new();
                for cand in [0.0, self.value / 2.0, self.lo] {
                    let bits = (cand as f64).to_bits();
                    if !(cand >= self.lo && cand < self.hi)
                        || bits == (self.value as f64).to_bits()
                        || seen.contains(&bits)
                    {
                        continue;
                    }
                    seen.push(bits);
                    out.push(Box::new(FloatTree {
                        lo: self.lo,
                        hi: self.hi,
                        value: cand,
                    }));
                }
                out
            }

            fn clone_tree(&self) -> BoxedTree<$t> {
                Box::new(FloatTree {
                    lo: self.lo,
                    hi: self.hi,
                    value: self.value,
                })
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($tree:ident: $($name:ident),+) => {
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+)
        where
            $($name::Value: 'static),+
        {
            type Value = ($($name::Value,)+);

            fn new_tree(&self, rng: &mut TestRng) -> BoxedTree<Self::Value> {
                let ($($name,)+) = self;
                Box::new($tree {
                    $($name: $name.new_tree(rng),)+
                })
            }
        }

        #[allow(non_snake_case)]
        struct $tree<$($name),+> {
            $($name: BoxedTree<$name>,)+
        }

        #[allow(non_snake_case)]
        impl<$($name: 'static),+> $tree<$($name),+> {
            fn clone_concrete(&self) -> Self {
                $tree {
                    $($name: self.$name.clone_tree(),)+
                }
            }
        }

        #[allow(non_snake_case)]
        impl<$($name: 'static),+> ValueTree for $tree<$($name),+> {
            type Value = ($($name,)+);

            fn current(&self) -> Self::Value {
                ($(self.$name.current(),)+)
            }

            fn shrink_candidates(&self) -> Vec<BoxedTree<Self::Value>> {
                let mut out: Vec<BoxedTree<Self::Value>> = Vec::new();
                // One field at a time, others cloned in place.
                $(
                    for cand in self.$name.shrink_candidates() {
                        let mut t = self.clone_concrete();
                        t.$name = cand;
                        out.push(Box::new(t));
                    }
                )+
                out
            }

            fn clone_tree(&self) -> BoxedTree<Self::Value> {
                Box::new(self.clone_concrete())
            }
        }
    };
}
impl_tuple_strategy!(TupleTree1: A);
impl_tuple_strategy!(TupleTree2: A, B);
impl_tuple_strategy!(TupleTree3: A, B, C);
impl_tuple_strategy!(TupleTree4: A, B, C, D);
impl_tuple_strategy!(TupleTree5: A, B, C, D, E);
impl_tuple_strategy!(TupleTree6: A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ints_shrink_toward_the_low_bound() {
        let tree = IntTree {
            lo: 3u32,
            value: 40,
        };
        let values: Vec<u32> = tree
            .shrink_candidates()
            .iter()
            .map(|c| c.current())
            .collect();
        assert_eq!(values, vec![3, 21, 39]);
        let floor = IntTree { lo: 3u32, value: 3 };
        assert!(
            floor.shrink_candidates().is_empty(),
            "lo is fully minimized"
        );
    }

    #[test]
    fn floats_shrink_toward_zero_within_range() {
        let tree = FloatTree {
            lo: -2.0f64,
            hi: 2.0,
            value: 1.5,
        };
        let values: Vec<f64> = tree
            .shrink_candidates()
            .iter()
            .map(|c| c.current())
            .collect();
        assert_eq!(values, vec![0.0, 0.75, -2.0]);
        let zero = FloatTree {
            lo: -2.0f64,
            hi: 2.0,
            value: 0.0,
        };
        let near_zero: Vec<f64> = zero
            .shrink_candidates()
            .iter()
            .map(|c| c.current())
            .collect();
        assert_eq!(near_zero, vec![-2.0], "zero only falls back to lo");
    }

    #[test]
    fn maps_shrink_through_the_closure() {
        let strategy = (1u8..100).prop_map(|v| v as u32 * 10);
        let mut rng = TestRng::seed_from_u64(7);
        let tree = strategy.new_tree(&mut rng);
        for cand in tree.shrink_candidates() {
            assert_eq!(cand.current() % 10, 0, "shrunk values still pass the map");
            assert!(cand.current() < tree.current());
        }
    }

    #[test]
    fn generate_matches_new_tree_rng_consumption() {
        // Identical seeds must produce identical values through both entry
        // points — pinned regression seeds rely on this.
        let strategy = (0u64..1000, -2.0f64..2.0).prop_map(|(a, b)| (a, b));
        let mut a = TestRng::seed_from_u64(42);
        let mut b = TestRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(
                strategy.generate(&mut a),
                strategy.new_tree(&mut b).current()
            );
        }
    }
}
