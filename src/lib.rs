//! Facade crate for the Paulihedral reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests read naturally. Library users should depend on the
//! individual crates:
//!
//! * [`paulihedral`] — the compiler framework (Pauli IR, scheduling,
//!   FT/SC block-wise synthesis),
//! * [`ph_engine`] — the compilation engine (pass manager, compilation
//!   cache, multi-threaded batch driver),
//! * [`ph_telemetry`] — spans, metrics, and JSONL/Chrome-trace export for
//!   the whole compile path,
//! * [`pauli`] — Pauli algebra substrate,
//! * [`qcircuit`] — circuit IR, peephole optimizer, QASM,
//! * [`qdevice`] — coupling maps, layouts, noise models,
//! * [`qsim`] — state-vector simulation and equivalence checking,
//! * [`baselines`] — naive/TK/QAOA-compiler/generic-pipeline baselines,
//! * [`workloads`] — the 31 evaluation benchmarks.
//!
//! # Quickstart
//!
//! ```
//! use paulihedral::parse::parse_program;
//! use paulihedral::{compile, Backend, CompileOptions, Scheduler};
//!
//! let ir = parse_program("{(ZZY, 0.5), 1.0}; {(ZZI, 0.3), 1.0};")?;
//! let out = compile(&ir, &CompileOptions::new(Scheduler::GateCount, Backend::FaultTolerant));
//! println!("{}", qcircuit::qasm::to_qasm(&out.circuit, Default::default()));
//! # Ok::<(), paulihedral::parse::ParseError>(())
//! ```

#![forbid(unsafe_code)]

pub use baselines;
pub use pauli;
pub use paulihedral;
pub use ph_engine;
pub use ph_telemetry;
pub use qcircuit;
pub use qdevice;
pub use qsim;
pub use workloads;
