//! The Fig. 11 pipeline's correctness core: a compiled physical QAOA
//! ansatz (H layer at initial positions, compiled cost kernel, mixer at
//! final positions) must produce *exactly* the same outcome distribution
//! as the logical ansatz, for any compiler. Fidelity differences in the
//! study must come from noise alone.

use baselines::generic::{self, Mapping};
use baselines::qaoa_compiler;
use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use qcircuit::{Circuit, Gate};
use qdevice::devices;
use qsim::State;
use workloads::{graphs, qaoa};

fn physical_success(
    device_n: usize,
    cost: &Circuit,
    initial: &[usize],
    final_: &[usize],
    beta: f64,
    optimal: &[u64],
) -> f64 {
    let mut full = Circuit::new(device_n);
    for &p in initial {
        full.push(Gate::H(p));
    }
    full.append_circuit(cost);
    for &p in final_ {
        full.push(Gate::Rx(p, 2.0 * beta));
    }
    let mut s = State::zero(device_n);
    s.apply_circuit(&full);
    let probs = s.probabilities();
    let mut success = 0.0;
    for (i, pr) in probs.iter().enumerate() {
        let mut logical = 0u64;
        for (l, &p) in final_.iter().enumerate() {
            logical |= (((i >> p) & 1) as u64) << l;
        }
        if optimal.contains(&logical) {
            success += pr;
        }
    }
    success
}

#[test]
fn compiled_ansatz_matches_logical_success_probability() {
    let n = 6;
    let graph = graphs::random_regular(n, 4, 11);
    let device = devices::grid(2, 4);
    let (gamma, beta) = (0.41, 0.77);
    let (_, optimal) = qsim::qaoa::max_cut(n, &graph.edges);

    // Logical reference.
    let mut s = State::zero(n);
    s.apply_circuit(&qsim::qaoa::ansatz_p1(n, &graph.edges, gamma, beta));
    let reference = qsim::qaoa::success_probability(&s, &optimal);

    let ir = qaoa::maxcut_ir(&graph, -gamma);

    // Paulihedral SC flow (+ cleanup).
    let ph = compile(
        &ir,
        &CompileOptions {
            intra_threads: 1,
            scheduler: Scheduler::Depth,
            backend: Backend::Superconducting {
                device: &device,
                noise: None,
            },
        },
    );
    let cleaned = generic::qiskit_l3_like(&ph.circuit, Mapping::AlreadyMapped);
    let got = physical_success(
        device.num_qubits(),
        &cleaned.circuit,
        ph.initial_l2p.as_ref().unwrap(),
        ph.final_l2p.as_ref().unwrap(),
        beta,
        &optimal,
    );
    assert!(
        (got - reference).abs() < 1e-9,
        "PH ansatz success {got} != logical {reference}"
    );

    // QAOA-compiler flow.
    let qc = qaoa_compiler::compile_qaoa(&ir, &device);
    let got = physical_success(
        device.num_qubits(),
        &qc.circuit.decompose_swaps(),
        &qc.initial_l2p,
        &qc.final_l2p,
        beta,
        &optimal,
    );
    assert!(
        (got - reference).abs() < 1e-9,
        "QAOAC ansatz success {got} != logical {reference}"
    );
}

#[test]
fn baseline_naive_route_flow_matches_logical_too() {
    let n = 5;
    let graph = graphs::erdos_renyi(n, 0.6, 21);
    let device = devices::linear(7);
    let (gamma, beta) = (0.3, 0.55);
    let (_, optimal) = qsim::qaoa::max_cut(n, &graph.edges);
    let mut s = State::zero(n);
    s.apply_circuit(&qsim::qaoa::ansatz_p1(n, &graph.edges, gamma, beta));
    let reference = qsim::qaoa::success_probability(&s, &optimal);

    let ir = qaoa::maxcut_ir(&graph, -gamma);
    let nv = baselines::naive::synthesize(&ir);
    let routed = generic::qiskit_l3_like(&nv.circuit, Mapping::Route(&device));
    let got = physical_success(
        device.num_qubits(),
        &routed.circuit,
        routed.initial_l2p.as_ref().unwrap(),
        routed.final_l2p.as_ref().unwrap(),
        beta,
        &optimal,
    );
    assert!(
        (got - reference).abs() < 1e-9,
        "baseline ansatz success {got} != logical {reference}"
    );
}
