//! Workspace smoke test: every named benchmark in `workloads::suite`
//! generates a non-empty, well-formed Pauli IR, so suite regressions
//! (a renamed benchmark, a generator returning an empty program, a
//! zero-width register) fail fast before the expensive evaluation
//! binaries ever run.

use workloads::suite::{self, BackendClass};

#[test]
fn every_suite_benchmark_generates_nonempty_ir() {
    let names = suite::all_names();
    assert_eq!(names.len(), 31, "Table 1 lists 31 benchmarks");
    for name in names {
        let b = suite::generate(name);
        assert_eq!(b.name, name);
        assert!(b.ir.num_qubits() > 0, "{name}: zero-width register");
        assert!(b.ir.num_blocks() > 0, "{name}: empty program");
        assert!(b.ir.total_strings() > 0, "{name}: no Pauli strings");
        for (bi, block) in b.ir.blocks().iter().enumerate() {
            assert!(!block.terms.is_empty(), "{name}: empty block {bi}");
            for t in &block.terms {
                assert_eq!(
                    t.string.num_qubits(),
                    b.ir.num_qubits(),
                    "{name}: term width mismatch in block {bi}"
                );
            }
        }
    }
}

#[test]
fn suite_generation_is_deterministic() {
    // Evaluation binaries assume fixed seeds per name; a drifting
    // generator would silently invalidate cross-run comparisons.
    for name in ["UCCSD-8", "Rand-20-0.3", "Rand-30", "NaCl"] {
        let a = suite::generate(name);
        let b = suite::generate(name);
        assert_eq!(a.ir.num_blocks(), b.ir.num_blocks(), "{name}");
        let dump = |ir: &paulihedral::ir::PauliIR| {
            ir.blocks()
                .iter()
                .flat_map(|bl| &bl.terms)
                .map(|t| (t.string.to_string(), t.weight.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            dump(&a.ir),
            dump(&b.ir),
            "{name}: generation not deterministic"
        );
    }
}

#[test]
fn backend_classes_partition_the_suite() {
    let sc = suite::SC_NAMES.len();
    let ft = suite::FT_NAMES.len();
    assert_eq!(sc + ft, suite::all_names().len());
    for name in suite::SC_NAMES {
        assert_eq!(
            suite::generate(name).class,
            BackendClass::Superconducting,
            "{name}"
        );
    }
}
