//! Cross-crate acceptance tests for the `ph_engine` subsystem: the batch
//! engine must be a *transparent* driver — bit-identical output to the
//! sequential one-shot `paulihedral::compile` on every Table 1 benchmark —
//! and its cache must serve repeated programs without changing results.

use paulihedral::{try_compile, Backend, CompileOptions, Scheduler};
use ph_engine::{BatchEngine, CompileJob, Pipeline, Target};
use qdevice::devices;
use workloads::suite::{self, BackendClass};

/// The paper's evaluation configuration: SC benchmarks use depth-oriented
/// scheduling on the Manhattan-65 model, FT benchmarks use the adaptive
/// (§7) choice.
fn suite_scheduler(class: BackendClass) -> Scheduler {
    match class {
        BackendClass::Superconducting => Scheduler::Depth,
        BackendClass::FaultTolerant => Scheduler::Auto,
    }
}

#[test]
fn batch_engine_is_bit_identical_to_sequential_compile_on_all_31_benchmarks() {
    let device = devices::manhattan_65();
    let sc_target = Target::superconducting(device.clone());

    let names = suite::all_names();
    let mut classes = Vec::new();
    let jobs: Vec<CompileJob> = names
        .iter()
        .map(|&name| {
            let b = suite::generate(name);
            classes.push(b.class);
            let job = CompileJob::named(name, b.ir).with_scheduler(suite_scheduler(b.class));
            match b.class {
                BackendClass::Superconducting => job.on_target(sc_target.clone()),
                BackendClass::FaultTolerant => job,
            }
        })
        .collect();

    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant);
    let results = engine.compile_all(jobs);
    assert_eq!(results.len(), 31);

    for (result, class) in results.into_iter().zip(classes) {
        let name = result.name.clone();
        let batch = result
            .outcome
            .unwrap_or_else(|e| panic!("{name} failed in batch: {e}"));

        // Sequential reference through the original one-shot entry point.
        let b = suite::generate(&name);
        let backend = match class {
            BackendClass::Superconducting => Backend::Superconducting {
                device: &device,
                noise: None,
            },
            BackendClass::FaultTolerant => Backend::FaultTolerant,
        };
        let sequential = try_compile(
            &b.ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: suite_scheduler(class),
                backend,
            },
        )
        .unwrap_or_else(|e| panic!("{name} failed sequentially: {e}"));

        assert_eq!(
            sequential.circuit, batch.compiled.circuit,
            "{name}: batch circuit differs from sequential compile"
        );
        assert_eq!(
            sequential.emitted, batch.compiled.emitted,
            "{name}: emission order differs"
        );
        assert_eq!(
            sequential.initial_l2p, batch.compiled.initial_l2p,
            "{name}: initial layout differs"
        );
        assert_eq!(
            sequential.final_l2p, batch.compiled.final_l2p,
            "{name}: final layout differs"
        );

        // Per-pass instrumentation covers scheduling, synthesis, peephole.
        let pass_names: Vec<&str> = batch
            .report
            .passes
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert_eq!(pass_names, ["schedule", "synthesis", "peephole"], "{name}");
        let synth = &batch.report.passes[1];
        assert!(synth.after.total > 0, "{name}: synthesis recorded no gates");
        let peep = &batch.report.passes[2];
        assert!(
            peep.cnot_delta() <= 0 && peep.single_delta() <= 0,
            "{name}: peephole should never add gates"
        );
        // The recorded deltas must reconstruct the final stats.
        let s = batch.report.final_stats();
        assert_eq!(s.cnot, batch.compiled.circuit.stats().cnot, "{name}");
    }
}

#[test]
fn repeated_programs_hit_the_cache_with_identical_circuits() {
    // Five Trotter steps of the same kernel: one miss, four hits.
    let ir = suite::generate("Heisen-1D").ir;
    let jobs: Vec<CompileJob> = (0..5)
        .map(|i| CompileJob::named(format!("step-{i}"), ir.clone()))
        .collect();
    // Single worker → deterministic hit pattern.
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_threads(1);
    let results = engine.compile_all(jobs);

    let outputs: Vec<_> = results
        .into_iter()
        .map(|r| r.outcome.expect("valid program"))
        .collect();
    assert!(!outputs[0].report.cache_hit);
    for o in &outputs[1..] {
        assert!(o.report.cache_hit, "repeat compile missed the cache");
        assert_eq!(o.compiled.circuit, outputs[0].compiled.circuit);
        // Hits share the original allocation rather than copying it.
        assert!(std::sync::Arc::ptr_eq(&o.compiled, &outputs[0].compiled));
    }
    let stats = engine.engine().cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (4, 1, 1));
}

#[test]
fn cache_distinguishes_pipeline_and_target_configuration() {
    let ir = suite::generate("Ising-2D").ir;
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_threads(1);
    let results = engine.compile_all(vec![
        CompileJob::named("gco", ir.clone()).with_scheduler(Scheduler::GateCount),
        CompileJob::named("do", ir.clone()).with_scheduler(Scheduler::Depth),
        CompileJob::named("sc", ir.clone())
            .on_target(Target::superconducting(devices::manhattan_65()))
            .with_scheduler(Scheduler::Depth),
    ]);
    let keys: Vec<u64> = results
        .iter()
        .map(|r| r.outcome.as_ref().unwrap().report.key)
        .collect();
    assert_ne!(keys[0], keys[1], "scheduler must change the cache key");
    assert_ne!(keys[1], keys[2], "target must change the cache key");
    assert_eq!(engine.engine().cache_stats().hits, 0);
}

#[test]
fn with_threads_zero_clamps_to_one_worker() {
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_threads(0);
    assert_eq!(engine.threads(), 1);
    // And the clamped pool still compiles.
    let results = engine.compile_all(vec![CompileJob::named(
        "job",
        suite::generate("Ising-1D").ir,
    )]);
    assert!(results[0].outcome.is_ok());
}

#[test]
fn worker_count_never_exceeds_the_job_count() {
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_threads(8);
    assert_eq!(engine.threads(), 8);
    assert_eq!(
        engine.worker_count(3),
        3,
        "threads > jobs spawns jobs.len()"
    );
    assert_eq!(engine.worker_count(8), 8);
    assert_eq!(engine.worker_count(100), 8, "jobs > threads keeps the pool");
    assert_eq!(engine.worker_count(0), 0, "empty batch spawns nothing");

    // 8 threads, 2 jobs: both jobs still complete (and in order).
    let ir = suite::generate("Ising-1D").ir;
    let results = engine.compile_all(vec![
        CompileJob::named("a", ir.clone()),
        CompileJob::named("b", ir),
    ]);
    assert_eq!(results.len(), 2);
    assert_eq!(results[0].name, "a");
    assert_eq!(results[1].name, "b");
    assert!(results.iter().all(|r| r.outcome.is_ok()));
}

#[test]
fn queue_wait_is_measured_and_consistent_with_batch_wall_time() {
    let ir = suite::generate("Heisen-1D").ir;
    let jobs: Vec<CompileJob> = (0..6)
        .map(|i| CompileJob::named(format!("job-{i}"), ir.clone()))
        .collect();
    // One worker serializes the jobs, so later jobs must have queued at
    // least as long as all earlier jobs took to run.
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_threads(1);
    let t0 = std::time::Instant::now();
    let results = engine.compile_all(jobs);
    let batch_elapsed = t0.elapsed();

    let mut prev_wait = std::time::Duration::ZERO;
    for r in &results {
        assert!(r.outcome.is_ok());
        // A single worker picks jobs up in order: queue waits are
        // monotonically non-decreasing, and every job finished within the
        // batch wall (wait measured from batch start + in-worker wall).
        assert!(
            r.queue_wait >= prev_wait,
            "{}: queue_wait {:?} < previous {:?}",
            r.name,
            r.queue_wait,
            prev_wait
        );
        assert!(
            r.queue_wait + r.wall <= batch_elapsed,
            "{}: wait {:?} + wall {:?} exceeds batch elapsed {:?}",
            r.name,
            r.queue_wait,
            r.wall,
            batch_elapsed
        );
        prev_wait = r.queue_wait;
    }
    // The last job's wait dominates: it queued behind the other five.
    assert!(results[5].queue_wait >= results[0].wall);
}

#[test]
fn batch_reports_per_job_errors_without_failing_the_batch() {
    let good = suite::generate("Ising-1D").ir;
    let empty = paulihedral::ir::PauliIR::new(4);
    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant);
    let results = engine.compile_all(vec![
        CompileJob::named("good", good),
        CompileJob::named("empty", empty.clone()),
        CompileJob::named("undersized", suite::generate("Ising-1D").ir)
            .on_target(Target::superconducting(devices::linear(5))),
    ]);
    assert!(results[0].outcome.is_ok());
    assert_eq!(
        results[1].outcome.as_ref().unwrap_err(),
        &paulihedral::CompileError::EmptyProgram
    );
    assert!(matches!(
        results[2].outcome.as_ref().unwrap_err(),
        paulihedral::CompileError::DeviceTooSmall {
            device: 5,
            program: 30
        }
    ));
}
