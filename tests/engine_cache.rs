//! Cross-crate acceptance tests for the two-tier compilation cache: the
//! persistent disk tier must warm-start a fresh engine bit-identically on
//! the full Table 1 suite, corrupt cache files must degrade to misses (not
//! errors), concurrent duplicate jobs must compile exactly once, and the
//! bounded memory tier must evict without ever changing results.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::thread;

use ph_engine::cache::{CacheEntry, CompileCache};
use ph_engine::{BatchEngine, CacheConfig, CompileJob, Engine, Pipeline, Target};
use workloads::suite;

/// A unique, self-cleaning cache directory under the system temp dir.
struct CacheDir(PathBuf);

impl CacheDir {
    fn new(tag: &str) -> CacheDir {
        let dir =
            std::env::temp_dir().join(format!("ph-engine-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CacheDir(dir)
    }

    fn config(&self) -> CacheConfig {
        CacheConfig {
            disk_dir: Some(self.0.clone()),
            ..CacheConfig::default()
        }
    }

    fn files(&self) -> Vec<PathBuf> {
        let mut files: Vec<PathBuf> = fs::read_dir(&self.0)
            .expect("cache dir exists after a cold run")
            .map(|e| e.expect("readable dir entry").path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "phc"))
            .collect();
        files.sort();
        files
    }
}

impl Drop for CacheDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn ft_engine(config: CacheConfig) -> BatchEngine {
    BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_cache_config(config)
}

/// Every fault-tolerant Table 1 benchmark as a batch job. (The FT subset
/// keeps the default target, so jobs stay self-contained.)
fn ft_jobs() -> Vec<CompileJob> {
    suite::all_names()
        .iter()
        .filter(|&&name| {
            suite::generate(name).class == workloads::suite::BackendClass::FaultTolerant
        })
        .map(|&name| CompileJob::named(name, suite::generate(name).ir))
        .collect()
}

#[test]
fn disk_tier_warm_starts_a_fresh_engine_bit_identically() {
    let dir = CacheDir::new("roundtrip");

    let cold = ft_engine(dir.config());
    let cold_results = cold.compile_all(ft_jobs());
    let n = cold_results.len() as u64;
    let cs = cold.engine().cache_stats();
    assert_eq!((cs.misses, cs.disk_hits), (n, 0), "cold run compiles all");
    assert_eq!(dir.files().len() as u64, n, "one cache file per program");

    // A fresh engine (empty memory tier) must serve everything from disk.
    let warm = ft_engine(dir.config());
    let warm_results = warm.compile_all(ft_jobs());
    let ws = warm.engine().cache_stats();
    assert_eq!((ws.misses, ws.disk_hits), (0, n), "warm run never compiles");

    for (c, w) in cold_results.iter().zip(&warm_results) {
        let cold_out = c.outcome.as_ref().expect("suite benchmarks compile");
        let warm_out = w.outcome.as_ref().expect("deserialized entry is valid");
        assert!(warm_out.report.cache_hit, "{}: expected a disk hit", w.name);
        assert_eq!(
            cold_out.compiled.circuit, warm_out.compiled.circuit,
            "{}: disk round-trip changed the circuit",
            w.name
        );
        assert_eq!(cold_out.compiled.emitted, warm_out.compiled.emitted);
        assert_eq!(cold_out.compiled.initial_l2p, warm_out.compiled.initial_l2p);
        assert_eq!(cold_out.compiled.final_l2p, warm_out.compiled.final_l2p);
    }
}

#[test]
fn corrupt_cache_files_degrade_to_misses() {
    let dir = CacheDir::new("corrupt");
    let jobs = || {
        vec![
            CompileJob::named("a", suite::generate("Ising-1D").ir),
            CompileJob::named("b", suite::generate("Heisen-1D").ir),
        ]
    };

    let cold = ft_engine(dir.config());
    let reference = cold.compile_all(jobs());
    let files = dir.files();
    assert_eq!(files.len(), 2);

    // Flip bytes in the middle of one entry and truncate the header of the
    // other: both classes of damage must read as "not cached".
    let mut bytes = fs::read(&files[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    fs::write(&files[0], bytes).unwrap();
    fs::write(&files[1], b"PH").unwrap();

    let warm = ft_engine(dir.config());
    let recompiled = warm.compile_all(jobs());
    let ws = warm.engine().cache_stats();
    assert_eq!(
        (ws.misses, ws.disk_hits),
        (2, 0),
        "corrupt files must count as misses, not hits or errors"
    );
    for (r, c) in recompiled.iter().zip(&reference) {
        assert_eq!(
            r.outcome.as_ref().unwrap().compiled.circuit,
            c.outcome.as_ref().unwrap().compiled.circuit,
            "{}: recompile after corruption diverged",
            r.name
        );
    }

    // The recompile rewrote valid entries; a third engine hits both.
    let healed = ft_engine(dir.config());
    healed.compile_all(jobs());
    assert_eq!(healed.engine().cache_stats().disk_hits, 2);
}

#[test]
fn concurrent_duplicate_jobs_compile_exactly_once() {
    let ir = suite::generate("Heisen-2D").ir;
    let jobs: Vec<CompileJob> = (0..8)
        .map(|i| CompileJob::named(format!("step-{i}"), ir.clone()))
        .collect();

    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant).with_threads(4);
    let outputs: Vec<_> = engine
        .compile_all(jobs)
        .into_iter()
        .map(|r| r.outcome.expect("valid program"))
        .collect();

    let stats = engine.engine().cache_stats();
    assert_eq!(stats.misses, 1, "racing workers must compile once");
    assert_eq!(
        stats.hits + stats.coalesced,
        7,
        "every duplicate is either a hit or a coalesced wait"
    );
    assert_eq!(stats.entries, 1);
    for o in &outputs[1..] {
        assert!(
            Arc::ptr_eq(&o.compiled, &outputs[0].compiled),
            "duplicates must share one allocation"
        );
    }
}

#[test]
fn bounded_cache_evicts_without_changing_results() {
    let a = suite::generate("Ising-1D").ir;
    let b = suite::generate("Heisen-1D").ir;
    // Alternating workload against a one-entry cache: every lookup evicts
    // the other program, so nothing is ever served stale.
    let jobs: Vec<CompileJob> = (0..6)
        .map(|i| {
            let ir = if i % 2 == 0 { a.clone() } else { b.clone() };
            CompileJob::named(format!("job-{i}"), ir)
        })
        .collect();

    let engine = ft_engine(CacheConfig {
        max_entries: Some(1),
        ..CacheConfig::default()
    })
    .with_threads(1);
    let results = engine.compile_all(jobs);
    let stats = engine.engine().cache_stats();
    assert_eq!(stats.misses, 6, "thrashing workload recompiles every step");
    assert_eq!(stats.evictions, 5, "each insert after the first evicts");
    assert_eq!(stats.entries, 1, "budget is enforced");

    let ra = results[0].outcome.as_ref().unwrap();
    let rb = results[1].outcome.as_ref().unwrap();
    for (i, r) in results.iter().enumerate() {
        let out = r.outcome.as_ref().unwrap();
        let want = if i % 2 == 0 { ra } else { rb };
        assert_eq!(out.compiled.circuit, want.compiled.circuit, "job-{i}");
    }
}

/// A real cache entry (compiled artifact + report) for direct
/// [`CompileCache`] tests that bypass the engine.
fn real_entry(name: &str) -> CacheEntry {
    let ir = suite::generate(name).ir;
    let out = Engine::new(Pipeline::auto(), Target::FaultTolerant)
        .compile(&ir)
        .expect("suite benchmark compiles");
    CacheEntry {
        compiled: out.compiled,
        report: out.report,
    }
}

#[test]
fn concurrent_opens_sweep_orphaned_tmp_files_exactly_once() {
    let dir = CacheDir::new("tmp-sweep");
    fs::create_dir_all(&dir.0).unwrap();
    const ORPHANS: usize = 5;
    for i in 0..ORPHANS {
        fs::write(dir.0.join(format!("dead-writer-{i}.tmp")), b"partial").unwrap();
    }
    // A non-tmp bystander must survive the sweep.
    fs::write(dir.0.join("0123456789abcdef.phc"), b"PH").unwrap();

    // Two engines open the same cache dir at the same instant: each tmp
    // file is removed by exactly one of them (remove_file is the atomic
    // arbiter), so the counts sum to ORPHANS — no double-count, no race.
    let barrier = Arc::new(Barrier::new(2));
    let counts: Vec<u64> = [dir.config(), dir.config()]
        .into_iter()
        .map(|config| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                CompileCache::with_config(config).stats().tmp_swept
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().expect("sweeping thread must not panic"))
        .collect();

    assert_eq!(
        counts.iter().sum::<u64>(),
        ORPHANS as u64,
        "every orphan swept exactly once (per-open counts: {counts:?})"
    );
    let leftover: Vec<_> = fs::read_dir(&dir.0).unwrap().flatten().collect();
    assert_eq!(leftover.len(), 1, "only the .phc bystander survives");
    assert_eq!(leftover[0].file_name(), "0123456789abcdef.phc");
}

#[test]
fn panicking_leader_does_not_wedge_or_poison_the_cache() {
    let cache = Arc::new(CompileCache::new());
    const KEY: u64 = 0x0dd_ba11;

    // A waiter coalesces onto the in-flight compute while the leader
    // panics mid-closure; the waiter must take over, not hang or die.
    let in_compute = Arc::new(Barrier::new(2));
    let waiter = {
        let cache = Arc::clone(&cache);
        let in_compute = Arc::clone(&in_compute);
        thread::spawn(move || {
            in_compute.wait();
            cache.get_or_compute::<()>(KEY, || Ok(real_entry("Ising-1D")))
        })
    };

    let unwound = catch_unwind(AssertUnwindSafe(|| {
        let _ = cache.get_or_compute::<()>(KEY, || -> Result<CacheEntry, ()> {
            in_compute.wait();
            // Give the waiter a moment to register as a coalescer so the
            // takeover path (not just a fresh lead) is exercised.
            thread::sleep(std::time::Duration::from_millis(20));
            panic!("injected fault: leader panic");
        });
    }));
    assert!(unwound.is_err(), "leader panic propagates to its caller");

    let (entry, _) = waiter
        .join()
        .expect("waiter survives the leader's panic")
        .expect("waiter recomputes successfully");

    // Locks stayed usable: stats, hits on the published entry, and a
    // fresh compute under a different key all work after the panic.
    let stats = cache.stats();
    assert_eq!(stats.entries, 1, "exactly the waiter's entry is resident");
    assert!(stats.misses >= 1);
    let (again, _) = cache
        .get_or_compute::<()>(KEY, || panic!("must be served from cache"))
        .unwrap();
    assert!(
        Arc::ptr_eq(&entry.compiled, &again.compiled),
        "post-panic lookups share the published allocation"
    );
    cache
        .get_or_compute::<()>(KEY + 1, || Ok(real_entry("Heisen-1D")))
        .expect("unrelated keys still compute after a panic");
    assert_eq!(cache.stats().entries, 2);
}

#[test]
fn without_cache_skips_key_derivation_and_never_hits() {
    let ir = suite::generate("Ising-1D").ir;
    let jobs: Vec<CompileJob> = (0..3)
        .map(|i| CompileJob::named(format!("step-{i}"), ir.clone()))
        .collect();

    let engine = BatchEngine::new(Pipeline::auto(), Target::FaultTolerant)
        .without_cache()
        .with_threads(1);
    for r in engine.compile_all(jobs) {
        let out = r.outcome.expect("valid program");
        assert!(!out.report.cache_hit);
        assert_eq!(out.report.key, 0, "uncached compiles skip fingerprinting");
    }
    let stats = engine.engine().cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
}
