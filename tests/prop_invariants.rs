//! Property-based invariants on the substrates: the peephole optimizer and
//! single-qubit fusion never change a circuit's operator; scheduling never
//! drops, duplicates or splits blocks; the IR parser round-trips.

use pauli::{Pauli, PauliString, PauliTerm};
use paulihedral::ir::{Parameter, PauliBlock, PauliIR};
use paulihedral::parse::{parse_program, print_program};
use paulihedral::schedule::{schedule_depth, schedule_gco, Layer};
use proptest::prelude::*;
use qcircuit::{fusion, peephole, Circuit, Gate};
use qsim::unitary::{circuit_unitary, equal_up_to_phase};

fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    (0u8..9, 0..n, 0..n, -2.0f64..2.0).prop_map(move |(kind, a, b, theta)| {
        let b = if a == b { (b + 1) % n } else { b };
        match kind {
            0 => Gate::H(a),
            1 => Gate::X(a),
            2 => Gate::S(a),
            3 => Gate::Sdg(a),
            4 => Gate::Rz(a, theta),
            5 => Gate::Rx(a, theta),
            6 => Gate::Ry(a, theta),
            7 => Gate::Cx(a, b),
            _ => Gate::Swap(a, b),
        }
    })
}

fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 0..max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn peephole_preserves_the_operator(c in arb_circuit(4, 24)) {
        let reference = circuit_unitary(&c);
        let mut optimized = c.clone();
        peephole::optimize(&mut optimized);
        prop_assert!(optimized.len() <= c.len());
        prop_assert!(
            equal_up_to_phase(&circuit_unitary(&optimized), &reference, 1e-8),
            "peephole changed the operator of:\n{c}"
        );
    }

    #[test]
    fn fusion_preserves_the_operator(c in arb_circuit(3, 20)) {
        let reference = circuit_unitary(&c);
        let mut fused = c.clone();
        fusion::fuse_single_qubit_runs(&mut fused);
        prop_assert!(fused.len() <= c.len());
        prop_assert!(
            equal_up_to_phase(&circuit_unitary(&fused), &reference, 1e-8),
            "fusion changed the operator of:\n{c}"
        );
    }

    #[test]
    fn stats_invariants_hold(c in arb_circuit(5, 40)) {
        let s = c.stats();
        prop_assert_eq!(s.total, s.cnot + s.single + s.swap);
        prop_assert!(s.depth <= s.total);
        let d = c.decompose_swaps().stats();
        prop_assert_eq!(d.swap, 0);
        prop_assert_eq!(d.cnot, s.cnot + 3 * s.swap);
    }
}

fn arb_small_program() -> impl Strategy<Value = PauliIR> {
    let string = proptest::collection::vec(0u8..4, 5).prop_map(|ops| {
        let mut s = PauliString::identity(5);
        let mut any = false;
        for (q, &o) in ops.iter().enumerate() {
            if o != 0 {
                any = true;
                s.set(q, [Pauli::X, Pauli::Y, Pauli::Z][(o - 1) as usize]);
            }
        }
        if !any {
            s.set(2, Pauli::X);
        }
        s
    });
    proptest::collection::vec(
        proptest::collection::vec((string, -1.0f64..1.0), 1..4),
        1..6,
    )
    .prop_map(|blocks| {
        let mut ir = PauliIR::new(5);
        for (bi, terms) in blocks.into_iter().enumerate() {
            ir.push_block(PauliBlock::new(
                terms
                    .into_iter()
                    .map(|(s, w)| PauliTerm::new(s, if w == 0.0 { 0.5 } else { w }))
                    .collect(),
                Parameter::named(format!("p{bi}"), 0.1 + bi as f64 * 0.05),
            ));
        }
        ir
    })
}

/// Multiset of (string, weight-bits) over all blocks, for exact comparison.
fn string_multiset(layers: &[Layer]) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = layers
        .iter()
        .flat_map(|l| &l.blocks)
        .flat_map(|b| &b.terms)
        .map(|t| (t.string.to_string(), t.weight.to_bits()))
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scheduling_preserves_blocks_and_strings(ir in arb_small_program()) {
        for layers in [schedule_gco(&ir), schedule_depth(&ir)] {
            // Same number of blocks, same multiset of strings.
            let blocks: usize = layers.iter().map(|l| l.blocks.len()).sum();
            prop_assert_eq!(blocks, ir.num_blocks());
            let mut original: Vec<(String, u64)> = ir
                .blocks()
                .iter()
                .flat_map(|b| &b.terms)
                .map(|t| (t.string.to_string(), t.weight.to_bits()))
                .collect();
            original.sort();
            prop_assert_eq!(string_multiset(&layers), original);
            // Block atomicity: every scheduled block matches an input block
            // as a multiset of strings.
            for b in layers.iter().flat_map(|l| &l.blocks) {
                let mut b_strings: Vec<String> =
                    b.terms.iter().map(|t| t.string.to_string()).collect();
                b_strings.sort();
                let found = ir.blocks().iter().any(|ob| {
                    let mut o: Vec<String> =
                        ob.terms.iter().map(|t| t.string.to_string()).collect();
                    o.sort();
                    o == b_strings && ob.parameter.value == b.parameter.value
                });
                prop_assert!(found, "scheduled block not found in input");
            }
        }
    }

    #[test]
    fn depth_layers_pad_disjointly(ir in arb_small_program()) {
        for layer in schedule_depth(&ir) {
            for (i, a) in layer.blocks.iter().enumerate() {
                for b in &layer.blocks[i + 1..] {
                    prop_assert!(a.disjoint_with(b), "padded blocks overlap");
                }
            }
        }
    }

    #[test]
    fn parser_round_trips(ir in arb_small_program()) {
        let text = print_program(&ir);
        let reparsed = parse_program(&text).unwrap();
        prop_assert_eq!(reparsed.num_blocks(), ir.num_blocks());
        for (a, b) in ir.blocks().iter().zip(reparsed.blocks()) {
            prop_assert_eq!(&a.terms, &b.terms);
        }
    }
}
