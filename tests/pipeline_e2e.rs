//! Cross-crate end-to-end tests: benchmark generators → Paulihedral →
//! generic pipelines → device-conformant circuits, with the invariants
//! every stage must uphold.

use baselines::generic::{self, Mapping};
use baselines::{naive, tk};
use paulihedral::{compile, Backend, CompileOptions, Scheduler};
use qdevice::devices;
use workloads::suite;

#[test]
fn every_sc_benchmark_compiles_conformant_on_manhattan() {
    let device = devices::manhattan_65();
    for name in ["UCCSD-8", "REG-20-4", "Rand-20-0.1", "TSP-4"] {
        let b = suite::generate(name);
        let out = compile(
            &b.ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting {
                    device: &device,
                    noise: None,
                },
            },
        );
        assert!(
            out.circuit
                .respects_connectivity(|a, b| device.has_edge(a, b)),
            "{name} violates coupling constraints"
        );
        assert_eq!(
            out.emitted.len(),
            b.ir.blocks()
                .iter()
                .flat_map(|bl| &bl.terms)
                .filter(|t| !t.string.is_identity())
                .count(),
            "{name} lost strings"
        );
        // The generic stage must keep conformance (it never routes an
        // already-mapped circuit through non-edges).
        let cleaned = generic::qiskit_l3_like(&out.circuit, Mapping::AlreadyMapped);
        assert!(cleaned
            .circuit
            .respects_connectivity(|a, b| device.has_edge(a, b)));
    }
}

#[test]
fn ph_beats_naive_plus_router_on_every_small_sc_benchmark() {
    // The paper's core claim, in miniature: block-wise synthesis beats the
    // generic decompose-then-route flow on CNOT count.
    let device = devices::manhattan_65();
    for name in ["UCCSD-8", "REG-20-4", "Rand-20-0.3", "TSP-4"] {
        let b = suite::generate(name);
        let ph = compile(
            &b.ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::Depth,
                backend: Backend::Superconducting {
                    device: &device,
                    noise: None,
                },
            },
        );
        let ph_final = generic::qiskit_l3_like(&ph.circuit, Mapping::AlreadyMapped);
        let nv = naive::synthesize(&b.ir);
        let routed = generic::qiskit_l3_like(&nv.circuit, Mapping::Route(&device));
        assert!(
            ph_final.circuit.stats().cnot < routed.circuit.stats().cnot,
            "{name}: PH {} vs naive+route {}",
            ph_final.circuit.stats().cnot,
            routed.circuit.stats().cnot
        );
    }
}

#[test]
fn ph_beats_tk_on_uccsd_when_mapped() {
    // Table 2's headline on the SC backend: TK must pay generic routing,
    // Paulihedral co-optimizes synthesis and mapping.
    let device = devices::manhattan_65();
    let b = suite::generate("UCCSD-8");
    let ph = compile(
        &b.ir,
        &CompileOptions {
            intra_threads: 1,
            scheduler: Scheduler::Depth,
            backend: Backend::Superconducting {
                device: &device,
                noise: None,
            },
        },
    );
    let ph_final = generic::qiskit_l3_like(&ph.circuit, Mapping::AlreadyMapped);
    let tkr = tk::compile_tk(&b.ir);
    let tk_final = generic::qiskit_l3_like(&tkr.circuit, Mapping::Route(&device));
    assert!(
        ph_final.circuit.stats().cnot < tk_final.circuit.stats().cnot,
        "PH {} vs TK {}",
        ph_final.circuit.stats().cnot,
        tk_final.circuit.stats().cnot
    );
}

#[test]
fn do_scheduling_crushes_depth_on_spin_chains() {
    // Table 4's Ising-1D row: DO reduces depth by ~10x vs GCO.
    let b = suite::generate("Ising-1D");
    let gco = compile(
        &b.ir,
        &CompileOptions {
            intra_threads: 1,
            scheduler: Scheduler::GateCount,
            backend: Backend::FaultTolerant,
        },
    );
    let do_ = compile(
        &b.ir,
        &CompileOptions {
            intra_threads: 1,
            scheduler: Scheduler::Depth,
            backend: Backend::FaultTolerant,
        },
    );
    assert_eq!(gco.circuit.stats().cnot, do_.circuit.stats().cnot);
    assert!(
        do_.circuit.stats().depth * 4 < gco.circuit.stats().depth,
        "DO {} vs GCO {}",
        do_.circuit.stats().depth,
        gco.circuit.stats().depth
    );
}

#[test]
fn compiled_gate_counts_never_exceed_naive() {
    for name in ["Ising-2D", "Heisen-1D", "Rand-20-0.1"] {
        let b = suite::generate(name);
        let (naive_cnot, naive_single) = naive::naive_counts(&b.ir);
        let out = compile(
            &b.ir,
            &CompileOptions {
                intra_threads: 1,
                scheduler: Scheduler::GateCount,
                backend: Backend::FaultTolerant,
            },
        );
        let s = out.circuit.stats();
        assert!(s.cnot <= naive_cnot, "{name}: {} > {naive_cnot}", s.cnot);
        assert!(
            s.single <= naive_single,
            "{name}: {} > {naive_single}",
            s.single
        );
    }
}

#[test]
fn tk_never_loses_strings_and_clusters_are_sound() {
    for name in ["Heisen-1D", "Rand-20-0.1", "UCCSD-8"] {
        let b = suite::generate(name);
        let r = tk::compile_tk(&b.ir);
        let expected =
            b.ir.blocks()
                .iter()
                .flat_map(|bl| &bl.terms)
                .filter(|t| !t.string.is_identity())
                .count();
        assert_eq!(r.emitted.len(), expected, "{name}");
        assert!(r.num_clusters >= 1);
    }
}
